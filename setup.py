"""Setuptools entry point.

A plain ``setup.py`` (rather than a PEP 517 build-system table) lets
``pip install -e .`` fall back to the legacy editable install, which works
in fully offline environments without the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Two-stage query execution with automated lazy ingestion (ALi) for "
        "scientific file repositories — reproduction of Kargın, SIGMOD'13 "
        "PhD Symposium"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
