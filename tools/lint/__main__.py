"""CLI entry point: ``python -m tools.lint [paths...]``.

Exits 1 when any rule fires — wired into CI next to pytest.

* ``--concurrency`` runs the whole-program lock analyzer
  (:mod:`tools.lint.concurrency`) instead of the per-file rules:
  ``python -m tools.lint --concurrency src``.
* ``--json OUT`` also writes findings in the shared benchmark envelope
  (:mod:`benchmarks.bench_json`) so CI uploads lint results alongside the
  performance artifacts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .framework import Violation, run_lint
from .rules import DEFAULT_RULES

# Repository root on sys.path so `benchmarks.bench_json` (the shared
# envelope emitter) resolves no matter where the module was launched from.
_REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _emit_json(out: str, mode: str, paths: list[str], violations: list[Violation]) -> None:
    if str(_REPO_ROOT) not in sys.path:
        sys.path.insert(0, str(_REPO_ROOT))
    from benchmarks.bench_json import emit_json

    emit_json(
        out,
        benchmark="lint",
        params={"mode": mode, "paths": paths},
        results=violations,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="Project lint: AST-checked engineering discipline.",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--concurrency", action="store_true",
        help="run the whole-program concurrency analyzer (lock-order "
        "inversions, condition waits, guarded-by discipline, blocking "
        "calls reachable under locks) instead of the per-file rules",
    )
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="also write findings to OUT in the shared benchmark "
        "envelope shape",
    )
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])

    paths = list(args.paths) or ["src", "tests"]
    if args.concurrency:
        from .concurrency import analyze

        mode = "concurrency"
        violations = analyze(paths)
    else:
        mode = "rules"
        violations = run_lint(paths, DEFAULT_RULES)

    for violation in violations:
        print(violation.render())
    if args.json is not None:
        _emit_json(args.json, mode, paths, violations)
    if violations:
        print(f"{len(violations)} lint violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
