"""CLI entry point: ``python -m tools.lint [paths...]``.

Exits 1 when any rule fires — wired into CI next to pytest.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from .framework import run_lint
from .rules import DEFAULT_RULES


def main(argv: Optional[Sequence[str]] = None) -> int:
    paths = list(argv if argv is not None else sys.argv[1:]) or ["src", "tests"]
    violations = run_lint(paths, DEFAULT_RULES)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"{len(violations)} lint violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
