"""Project lint rules — each one encodes discipline this repo already paid
to learn.

* ``extraction-error-wrap`` — extraction code paths (``ingest/``, ``mseed/``)
  must not raise raw ``struct.error``/``OSError``/``ValueError``-family
  exceptions; they must wrap into the :class:`FileIngestError` taxonomy so
  the resilient-mounting layer can attribute, retry, and quarantine per file.
* ``bare-except`` — no ``except:`` anywhere; it swallows KeyboardInterrupt
  and hides the taxonomy the previous rule builds.
* ``blocking-call-in-lock`` — no ``time.sleep``/subprocess/system calls
  lexically inside a ``with ...lock...:`` body (the MountService/
  BufferManager critical sections must stay short; backoff sleeps belong
  outside the lock). Superseded by the call-graph-deep
  ``blocking-under-lock`` check in :mod:`tools.lint.concurrency`; kept
  importable but no longer in :data:`DEFAULT_RULES`.
* ``mutable-default-arg`` — no ``def f(x=[])``-style defaults; shared
  mutable state across calls.
* ``missing-annotations`` — public functions in ``repro/core`` and
  ``repro/db/plan`` must annotate every named parameter and the return
  type; these two packages are the plan-correctness core the verifier
  leans on.
* ``uninterruptible-sleep`` — no ``time.sleep`` anywhere in ``repro/core``,
  ``repro/ingest``, or ``repro/serve``: those layers run under a query governor whose
  deadlines and cancellations wake threads through events, and a plain
  sleep is a wait the governor cannot interrupt (the retry-backoff bug:
  a cancelled query used to sleep out its whole ladder). Wait on
  ``CancellationToken.wait``/an ``Event`` instead; genuinely unmanaged
  waits can carry ``# lint: allow-uninterruptible-sleep``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .framework import FileContext, Rule, Violation

# Paths (directory components) considered extraction code paths.
EXTRACTION_DIRS = ("ingest", "mseed")

# Exception constructors extraction code must not raise directly.
RAW_EXTRACTION_EXCEPTIONS = {
    "ValueError",
    "OSError",
    "IOError",
    "EOFError",
    "RuntimeError",
    "struct.error",
}

# Call targets that block (or can block unboundedly) and therefore must not
# run while a lock is held.
BLOCKING_CALLS = {
    "time.sleep",
    "sleep",
    "os.system",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "urllib.request.urlopen",
}

# Packages whose public functions must be fully annotated.
ANNOTATED_PACKAGES = ("repro/core", "repro/db/plan")

# Packages whose waits must be governor-interruptible (no time.sleep).
# repro/serve joined the list when the scheduler's batch-window and aging
# loops landed: every wait there must honor CancellationToken/Condition
# timeouts, or a shed/cancelled tenant blocks the whole scheduler.
# repro/remote joined with the resilient transport: modeled network
# latency, retry backoff, and hedging delays are exactly the waits a
# cancelled query must be able to cut short.
GOVERNED_PACKAGES = ("repro/core", "repro/ingest", "repro/serve", "repro/remote")

# Same-line escape hatch for waits that genuinely run outside any query.
SLEEP_ALLOW_COMMENT = "lint: allow-uninterruptible-sleep"


def _dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` call targets; '' for anything fancier."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _in_extraction_path(ctx: FileContext) -> bool:
    parts = {p.name for p in ctx.path.parents} | {ctx.path.parent.name}
    return any(d in parts for d in EXTRACTION_DIRS)


class BareExceptRule(Rule):
    name = "bare-except"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    ctx, node,
                    "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                    "catch a concrete exception type",
                )


class ExtractionErrorWrapRule(Rule):
    """Extraction paths raise the FileIngestError taxonomy, nothing rawer."""

    name = "extraction-error-wrap"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        if not _in_extraction_path(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = _dotted_name(target)
            if name in RAW_EXTRACTION_EXCEPTIONS:
                yield self.violation(
                    ctx, node,
                    f"extraction code raises raw {name}; wrap it in a "
                    "FileIngestError subclass (CorruptFileError/"
                    "TruncatedFileError/StaleFileError) so the mount layer "
                    "can attribute and quarantine the file",
                )


class BlockingCallInLockRule(Rule):
    """No sleeps/subprocesses while lexically holding a lock."""

    name = "blocking-call-in-lock"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name not in BLOCKING_CALLS:
                continue
            lock_with = self._enclosing_lock_with(ctx, node)
            if lock_with is not None:
                held = ", ".join(
                    ctx.segment(item.context_expr) for item in lock_with.items
                )
                yield self.violation(
                    ctx, node,
                    f"{name}() while holding {held}: blocking inside a "
                    "critical section stalls every other worker; move the "
                    "wait outside the 'with' block",
                )

    @staticmethod
    def _enclosing_lock_with(
        ctx: FileContext, node: ast.AST
    ) -> ast.With | None:
        """The nearest lock-holding ``with`` in the same function, if any."""
        for ancestor in ctx.parent_chain(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                return None  # different execution time; lock not held there
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    source = ctx.segment(item.context_expr).lower()
                    if "lock" in source:
                        return ancestor
        return None


class MutableDefaultArgRule(Rule):
    name = "mutable-default-arg"

    _MUTABLE_CALLS = {"list", "dict", "set"}

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.violation(
                        ctx, default,
                        f"mutable default argument in {node.name}(); the "
                        "object is shared across calls — default to None "
                        "(or use dataclasses.field(default_factory=...))",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            return _dotted_name(node.func) in self._MUTABLE_CALLS
        return False


class MissingAnnotationsRule(Rule):
    """Public core/db.plan functions carry full signatures."""

    name = "missing-annotations"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        posix = ctx.path.as_posix()
        if not any(f"{pkg}/" in posix or posix.endswith(pkg) for pkg in ANNOTATED_PACKAGES):
            return
        yield from self._check_scope(ctx, ctx.tree, in_class=False)

    def _check_scope(
        self, ctx: FileContext, scope: ast.AST, in_class: bool
    ) -> Iterator[Violation]:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                yield from self._check_scope(ctx, node, in_class=True)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                yield from self._check_function(ctx, node, in_class)
                # Nested defs are implementation details — not checked.

    def _check_function(
        self,
        ctx: FileContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        in_class: bool,
    ) -> Iterator[Violation]:
        is_static = any(
            _dotted_name(d) == "staticmethod" for d in node.decorator_list
        )
        named = list(node.args.posonlyargs) + list(node.args.args)
        if in_class and not is_static and named:
            named = named[1:]  # self / cls
        named += list(node.args.kwonlyargs)
        for arg in named:
            if arg.annotation is None:
                yield self.violation(
                    ctx, arg,
                    f"public function {node.name}() leaves parameter "
                    f"{arg.arg!r} unannotated",
                )
        if node.returns is None:
            yield self.violation(
                ctx, node,
                f"public function {node.name}() has no return annotation",
            )


class UninterruptibleSleepRule(Rule):
    """Governed packages wait on events, never ``time.sleep``."""

    name = "uninterruptible-sleep"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        posix = ctx.path.as_posix()
        if not any(f"{pkg}/" in posix for pkg in GOVERNED_PACKAGES):
            return
        lines = ctx.source.splitlines()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _dotted_name(node.func) not in ("time.sleep", "sleep"):
                continue
            line_index = getattr(node, "lineno", 0) - 1
            if 0 <= line_index < len(lines) and (
                SLEEP_ALLOW_COMMENT in lines[line_index]
            ):
                continue
            yield self.violation(
                ctx, node,
                "time.sleep() in a governed package cannot be interrupted "
                "by query cancellation or a deadline; wait on the "
                "cancellation token's event (CancellationToken.wait) "
                f"instead, or annotate '# {SLEEP_ALLOW_COMMENT}'",
            )


# BlockingCallInLockRule is not in the default set anymore: the
# whole-program analyzer (tools/lint/concurrency.py, `--concurrency`)
# supersedes its lexical check with call-graph depth — it sees a blocking
# call N frames below the `with` block, not just inside it. The class stays
# importable for targeted use and its own tests.
DEFAULT_RULES: list[Rule] = [
    BareExceptRule(),
    ExtractionErrorWrapRule(),
    MutableDefaultArgRule(),
    MissingAnnotationsRule(),
    UninterruptibleSleepRule(),
]
