"""A small AST-walking lint framework.

Rules subclass :class:`Rule` and implement ``check(ctx)``, yielding
:class:`Violation` entries. :func:`run_lint` walks the given files/directories,
parses each Python file once into a :class:`FileContext` (AST plus parent
links), and runs every registered rule over it.

This is deliberately not a general-purpose linter: each rule encodes one
piece of project discipline that has already cost a debugging session (see
``tools/lint/rules.py``), and the whole thing runs from a checkout with no
third-party dependencies: ``python -m tools.lint src tests``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence


@dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at a file position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class FileContext:
    """One parsed source file, shared by every rule.

    ``parents`` maps each AST node to its parent so rules can look outward
    (e.g. "is this call lexically inside a ``with self._lock:`` body?").
    """

    def __init__(self, path: Path, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """Yield ancestors from the immediate parent up to the module."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def segment(self, node: ast.AST) -> str:
        """The exact source text of a node ('' when unavailable)."""
        return ast.get_source_segment(self.source, node) or ""

    def relative_to(self, root: Path) -> str:
        try:
            return str(self.path.relative_to(root))
        except ValueError:
            return str(self.path)


class Rule:
    """Base class for lint rules. ``name`` is the tag shown in findings."""

    name = "rule"

    def check(self, ctx: FileContext) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=str(ctx.path),
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.name,
            message=message,
        )


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand the given files/directories into ``.py`` files, sorted.

    Deduplicated by resolved path: a file named both directly and via a
    parent directory (``tools.lint src src/repro/core/cache.py``) is
    yielded — and therefore parsed and reported — exactly once.
    """
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            key = candidate.resolve()
            if key in seen:
                continue
            seen.add(key)
            yield candidate


def parse_file(path: Path) -> Optional[FileContext]:
    """Parse one file; None (not a crash) when it fails to parse — a syntax
    error is the test suite's problem, not the linter's."""
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, UnicodeDecodeError):
        return None
    return FileContext(path, source, tree)


def run_lint(
    paths: Sequence[str], rules: Sequence[Rule]
) -> list[Violation]:
    """Run every rule over every Python file under ``paths``."""
    violations: list[Violation] = []
    for file_path in iter_python_files(paths):
        ctx = parse_file(file_path)
        if ctx is None:
            continue
        for rule in rules:
            violations.extend(rule.check(ctx))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
