"""Whole-program concurrency analysis for ``src/repro``.

Unlike the per-file rules in :mod:`tools.lint.rules`, this analyzer reads
*every* file it is given before reporting anything: it resolves
``threading.Lock``/``RLock``/``Condition`` (and the ``repro._sync``
factory) attributes per class, follows ``self.attr = OtherClass(...)`` and
annotated constructor parameters to build inter-class call edges, and then
checks four properties of the resulting lock web:

``lock-order-inversion``
    The global acquisition graph (lexical ``with`` nesting plus locks a
    callee may transitively acquire while the caller holds one) must be
    acyclic. A cycle is a deadlock waiting for the right interleaving.
    Non-reentrant self-cycles (a plain ``Lock`` re-acquirable via a call
    chain) are reported as self-deadlocks; an ``RLock`` self-edge is legal.

``condition-wait-outside-loop``
    ``Condition.wait()`` must sit inside a ``while`` whose predicate is
    re-checked after wakeup — ``if``-guarded waits miss spurious wakeups
    and notify races. ``wait_for`` loops internally and passes; a wrapper
    that is itself the loop's body can carry
    ``# lint: allow-wait-outside-loop``.

``unguarded-field`` / ``guard-violation``
    Any attribute written while the class's own lock is held is *shared*
    and must carry a declaration-site annotation: ``# guarded-by: <lock>``
    (every access must then hold that lock, or the access line carries
    ``# unguarded-ok: <reason>``) or a declaration-site
    ``# unguarded-ok: <reason>`` (benign race by design: latches,
    monotonic flags, self-synchronizing primitives). Methods whose name
    ends in ``_locked`` are assumed to be called with the class's primary
    lock held — the repo's existing convention.

``blocking-under-lock``
    No call that can block unboundedly (sleeps, subprocesses, file IO via
    ``open``/``open_volume``, ``Future.result``, ``Thread.join``,
    executor shutdown, event/semaphore/token waits) may be *reachable
    through the call graph* while a lock is held — this supersedes the
    lexical-only ``blocking-call-in-lock`` rule. Waiting on a condition
    variable built over the held lock is the designed release-and-park
    pattern and is exempt; a genuinely intended wait can carry
    ``# lint: allow-blocking-under-lock``.

Scope and honesty: attribute analysis is per-class (``self.x`` only —
writes through another object's reference, e.g. ``task.state = ...`` under
the owner's lock, are documented by cross-class
``# guarded-by: Owner._lock`` comments but not machine-checked), calls
resolve one attribute deep (``self.cache.lookup(...)``), and module-level
functions and nested closures (which run on other threads or at other
times) are walked with an empty held set. Those limits are deliberate:
everything reported is derived from code actually present, so a clean run
means something.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from .framework import FileContext, Violation, iter_python_files, parse_file

GUARDED_BY_COMMENT = "guarded-by:"
UNGUARDED_OK_COMMENT = "unguarded-ok:"
BLOCK_ALLOW_COMMENT = "lint: allow-blocking-under-lock"
WAIT_ALLOW_COMMENT = "lint: allow-wait-outside-loop"

# Constructors that make a lock-like attribute, by dotted call name.
LOCK_CTORS = {
    "threading.Lock": "lock",
    "Lock": "lock",
    "create_lock": "lock",
    "_sync.create_lock": "lock",
    "threading.RLock": "rlock",
    "RLock": "rlock",
    "create_rlock": "rlock",
    "_sync.create_rlock": "rlock",
    "threading.Condition": "condition",
    "Condition": "condition",
    "create_condition": "condition",
    "_sync.create_condition": "condition",
}

SEMAPHORE_CTORS = {
    "threading.Semaphore",
    "threading.BoundedSemaphore",
    "Semaphore",
    "BoundedSemaphore",
}

# Method names that mutate their receiver in place — `self.attr.append(x)`
# is a write to `attr` even though the AST sees only a Load.
MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "reverse",
    "setdefault",
    "sort",
    "update",
}

# Leaf calls that block (or may block unboundedly), by dotted call name.
BLOCKING_LEAF_CALLS = {
    "time.sleep",
    "sleep",
    "os.system",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "urllib.request.urlopen",
    "urlopen",
    "open",
    "open_volume",
}

# Attribute-call names that block on some waitable object (futures,
# threads, events, executors, cancellation tokens).
BLOCKING_METHOD_NAMES = {"wait", "wait_for", "result", "join", "shutdown"}


@dataclass
class Access:
    attr: str
    is_write: bool
    under: frozenset[str]  # canonical lock attrs lexically held
    lineno: int
    col: int
    allow: bool  # site-level `# unguarded-ok:` on this line


@dataclass
class CallSite:
    target: tuple[str, ...]  # ("self", meth) | ("attr", a, meth)
    under: frozenset[str]
    lineno: int
    col: int
    allow_blocking: bool
    text: str  # rendered call target for reports
    # Description to report as a blocking leaf if the target does not
    # resolve to a known class method (e.g. `.wait()` on a threading.Event
    # attribute): the precise call edge supersedes the textual guess.
    fallback_blocking: Optional[str] = None


@dataclass
class BlockSite:
    """A lexically blocking call. ``under`` may be empty — the site still
    matters for call-graph propagation (a caller may hold a lock)."""

    description: str
    under: frozenset[str]
    lineno: int
    col: int
    allow: bool


@dataclass
class WaitSite:
    cond_attr: str
    lineno: int
    col: int
    in_while: bool
    allow: bool


@dataclass
class MethodInfo:
    name: str
    lineno: int
    accesses: list[Access] = field(default_factory=list)
    acquires: list[tuple[str, frozenset[str], int]] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    blockers: list[BlockSite] = field(default_factory=list)
    waits: list[WaitSite] = field(default_factory=list)
    holds_on_entry: frozenset[str] = frozenset()


@dataclass
class ClassInfo:
    name: str
    path: Path
    lineno: int
    locks: dict[str, str] = field(default_factory=dict)  # attr -> kind
    condition_alias: dict[str, str] = field(default_factory=dict)
    semaphores: set[str] = field(default_factory=set)
    attr_types: dict[str, str] = field(default_factory=dict)
    guards: dict[str, tuple[str, str]] = field(default_factory=dict)
    # guards: attr -> ("guarded", lock) | ("unguarded", reason)
    #              | ("cross", "Owner.lock")
    methods: dict[str, MethodInfo] = field(default_factory=dict)

    def canonical(self, lock_attr: str) -> str:
        """Condition attrs alias the lock they were built over."""
        return self.condition_alias.get(lock_attr, lock_attr)

    def lock_node(self, lock_attr: str) -> str:
        return f"{self.name}.{self.canonical(lock_attr)}"

    def primary_lock(self) -> Optional[str]:
        """The lock ``*_locked`` methods are assumed to hold: ``_lock`` if
        present, else the class's only non-condition lock."""
        real = [a for a, k in self.locks.items() if k != "condition"]
        if "_lock" in real:
            return "_lock"
        if len(real) == 1:
            return real[0]
        return None


def _dotted(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    return ""


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.x`` -> ``x``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _base_self_attr(node: ast.AST) -> Optional[str]:
    """The root ``self`` attribute of a chain: ``self.a.b[c].d`` -> ``a``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        direct = _self_attr(node)
        if direct is not None:
            return direct
        node = node.value
    return None


def _annotation_class(node: Optional[ast.AST]) -> Optional[str]:
    """A plain class name from an annotation, unwrapping Optional and
    string quotes."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.strip().strip("'\"")
        return name.split("[")[0].split(".")[-1] or None
    if isinstance(node, ast.Subscript):
        outer = _dotted(node.value).split(".")[-1]
        if outer == "Optional":
            return _annotation_class(node.slice)
        return None
    dotted = _dotted(node)
    if dotted:
        return dotted.split(".")[-1]
    return None


def _line_has(lines: list[str], lineno: int, needle: str) -> bool:
    index = lineno - 1
    return 0 <= index < len(lines) and needle in lines[index]


def _comment_value(lines: list[str], lineno: int, marker: str) -> Optional[str]:
    """The text after ``marker`` on the declaration line, or in the
    contiguous pure-comment block directly above it (reasons too long for
    one line live there)."""
    index = lineno - 1
    if not (0 <= index < len(lines)):
        return None
    line = lines[index]
    pos = line.find(marker)
    if pos >= 0:
        return line[pos + len(marker):].strip() or "(no detail)"
    above = index - 1
    while above >= 0 and lines[above].lstrip().startswith("#"):
        pos = lines[above].find(marker)
        if pos >= 0:
            return lines[above][pos + len(marker):].strip() or "(no detail)"
        above -= 1
    return None


def _ctor_kind(value: Optional[ast.AST]) -> Optional[str]:
    """Lock kind if ``value`` constructs a lock (directly, via factory, or
    via ``field(default_factory=...)``)."""
    if not isinstance(value, ast.Call):
        return None
    name = _dotted(value.func)
    if name in LOCK_CTORS:
        return LOCK_CTORS[name]
    if name.split(".")[-1] == "field":
        for kw in value.keywords:
            if kw.arg == "default_factory":
                factory = kw.value
                if isinstance(factory, ast.Lambda):
                    return _ctor_kind(factory.body)
                dotted = _dotted(factory)
                if dotted in LOCK_CTORS:
                    return LOCK_CTORS[dotted]
    return None


def _condition_over(value: Optional[ast.AST]) -> Optional[str]:
    """For ``Condition(self._lock)``-style ctors, the lock attr wrapped."""
    if not isinstance(value, ast.Call):
        return None
    if LOCK_CTORS.get(_dotted(value.func)) != "condition":
        return None
    for arg in list(value.args) + [kw.value for kw in value.keywords]:
        attr = _self_attr(arg)
        if attr is not None:
            return attr
    return None


class _ClassCollector:
    """First pass over one class body: locks, attr types, annotations."""

    def __init__(self, ctx: FileContext, node: ast.ClassDef) -> None:
        self.info = ClassInfo(name=node.name, path=ctx.path, lineno=node.lineno)
        self._lines = ctx.source.splitlines()
        self._class_node = node

    def collect(self) -> ClassInfo:
        for stmt in self._class_node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                self._note_declaration(
                    stmt.target.id, stmt.value, stmt.annotation, stmt.lineno
                )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_method_decls(stmt)
        return self.info

    def _collect_method_decls(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        params: dict[str, Optional[str]] = {}
        for arg in func.args.posonlyargs + func.args.args + func.args.kwonlyargs:
            params[arg.arg] = _annotation_class(arg.annotation)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is None:
                        continue
                    value = node.value
                    if isinstance(value, ast.Name) and value.id in params:
                        self._note_declaration(
                            attr, None, None, node.lineno,
                            inferred=params[value.id],
                        )
                    else:
                        self._note_declaration(attr, value, None, node.lineno)
            elif isinstance(node, ast.AnnAssign):
                attr = _self_attr(node.target)
                if attr is not None:
                    self._note_declaration(
                        attr, node.value, node.annotation, node.lineno
                    )

    def _note_declaration(
        self,
        attr: str,
        value: Optional[ast.AST],
        annotation: Optional[ast.AST],
        lineno: int,
        inferred: Optional[str] = None,
    ) -> None:
        info = self.info
        kind = _ctor_kind(value)
        if kind is None and annotation is not None:
            ann = _dotted(annotation).split(".")[-1]
            if ann in ("Lock", "RLock", "Condition"):
                kind = ann.lower()
        if kind is not None:
            info.locks.setdefault(attr, kind)
            if kind == "condition":
                over = _condition_over(value)
                if over is not None:
                    info.condition_alias[attr] = over
        elif isinstance(value, ast.Call):
            name = _dotted(value.func)
            if name in SEMAPHORE_CTORS:
                info.semaphores.add(attr)
            else:
                cls_name = name.split(".")[-1]
                if cls_name and cls_name[0].isupper():
                    info.attr_types.setdefault(attr, cls_name)
        if inferred is not None:
            info.attr_types.setdefault(attr, inferred)
        guard = _comment_value(self._lines, lineno, GUARDED_BY_COMMENT)
        if guard is not None:
            lock = guard.split()[0]
            if "." in lock:
                owner, _, lock_attr = lock.partition(".")
                if owner == info.name:
                    info.guards.setdefault(attr, ("guarded", lock_attr))
                else:
                    info.guards.setdefault(attr, ("cross", lock))
            else:
                info.guards.setdefault(attr, ("guarded", lock))
            return
        reason = _comment_value(self._lines, lineno, UNGUARDED_OK_COMMENT)
        if reason is not None:
            info.guards.setdefault(attr, ("unguarded", reason))


class _MethodVisitor(ast.NodeVisitor):
    """Second pass over one method body, tracking the lexically-held lock
    set through ``with`` blocks."""

    def __init__(
        self, cls: ClassInfo, method: MethodInfo, lines: list[str]
    ) -> None:
        self.cls = cls
        self.method = method
        self.lines = lines
        self.held: frozenset[str] = frozenset(
            cls.canonical(h) for h in method.holds_on_entry
        )
        self.while_depth = 0

    # -- helpers --------------------------------------------------------

    def _note_access(self, attr: str, is_write: bool, node: ast.AST) -> None:
        if attr in self.cls.locks or attr in self.cls.semaphores:
            return
        lineno = getattr(node, "lineno", 0)
        self.method.accesses.append(
            Access(
                attr=attr,
                is_write=is_write,
                under=self.held,
                lineno=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                allow=_line_has(self.lines, lineno, UNGUARDED_OK_COMMENT),
            )
        )

    def _note_blocker(self, description: str, node: ast.AST) -> None:
        lineno = getattr(node, "lineno", 0)
        self.method.blockers.append(
            BlockSite(
                description=description,
                under=self.held,
                lineno=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                allow=_line_has(self.lines, lineno, BLOCK_ALLOW_COMMENT),
            )
        )

    def _handle_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._handle_target(elt)
            return
        if isinstance(target, ast.Starred):
            self._handle_target(target.value)
            return
        attr = _base_self_attr(target)
        if attr is not None:
            self._note_access(attr, True, target)
        if isinstance(target, ast.Subscript):
            self.visit(target.slice)
        elif attr is None:
            self.visit(target)

    # -- structure ------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs run at another time (worker closures, callbacks):
        # the enclosing lock is NOT held there. Walked with an empty held
        # set so their accesses/blockers still register.
        inner = _MethodVisitor(self.cls, self.method, self.lines)
        inner.held = frozenset()
        for stmt in node.body:
            inner.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        inner = _MethodVisitor(self.cls, self.method, self.lines)
        inner.held = frozenset()
        inner.visit(node.body)

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.cls.locks:
                canonical = self.cls.canonical(attr)
                self.method.acquires.append(
                    (canonical, self.held, item.context_expr.lineno)
                )
                acquired.append(canonical)
            else:
                self.visit(item.context_expr)
        if acquired:
            saved = self.held
            self.held = self.held | frozenset(acquired)
            for stmt in node.body:
                self.visit(stmt)
            self.held = saved
        else:
            for stmt in node.body:
                self.visit(stmt)

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self.while_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        self.while_depth -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    # -- accesses -------------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_target(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_target(node.target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._handle_target(node.target)
        if node.value is not None:
            self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._handle_target(target)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None and isinstance(node.ctx, ast.Load):
            self._note_access(attr, False, node)
            return
        self.visit(node.value)

    # -- calls ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        lineno = node.lineno
        col = node.col_offset + 1
        allow_blocking = _line_has(self.lines, lineno, BLOCK_ALLOW_COMMENT)
        dotted = _dotted(func)
        visited_receiver = False

        self_meth = _self_attr(func)
        if self_meth is not None:
            # self.method(...)
            self.method.calls.append(
                CallSite(
                    target=("self", self_meth),
                    under=self.held,
                    lineno=lineno,
                    col=col,
                    allow_blocking=allow_blocking,
                    text=f"self.{self_meth}",
                )
            )
            visited_receiver = True
        elif isinstance(func, ast.Attribute):
            recv_attr = _self_attr(func.value)
            if recv_attr is not None:
                visited_receiver = True
                if recv_attr in self.cls.locks:
                    self._handle_lock_method_call(
                        recv_attr, func.attr, node, allow_blocking
                    )
                elif recv_attr in self.cls.semaphores:
                    if func.attr == "acquire":
                        self._note_blocker(
                            f"self.{recv_attr}.acquire() (semaphore wait)",
                            node,
                        )
                else:
                    if func.attr in MUTATOR_METHODS:
                        self._note_access(recv_attr, True, func.value)
                    else:
                        self._note_access(recv_attr, False, func.value)
                    fallback = None
                    if func.attr in BLOCKING_METHOD_NAMES:
                        fallback = f"self.{recv_attr}.{func.attr}() (wait)"
                    self.method.calls.append(
                        CallSite(
                            target=("attr", recv_attr, func.attr),
                            under=self.held,
                            lineno=lineno,
                            col=col,
                            allow_blocking=allow_blocking,
                            text=f"self.{recv_attr}.{func.attr}",
                            fallback_blocking=fallback,
                        )
                    )

        if not visited_receiver and self._is_blocking_leaf(dotted, func):
            self._note_blocker(f"{dotted or '<call>'}()", node)

        if not visited_receiver and isinstance(func, ast.Attribute):
            self.visit(func.value)
        elif not visited_receiver and not isinstance(func, ast.Name):
            self.visit(func)
        for arg in node.args:
            self.visit(arg)
        for kw in node.keywords:
            self.visit(kw.value)

    def _handle_lock_method_call(
        self, recv_attr: str, meth: str, node: ast.Call, allow_blocking: bool
    ) -> None:
        """A method call on a known lock/condition attribute."""
        canonical = self.cls.canonical(recv_attr)
        if meth in ("wait", "wait_for"):
            if self.cls.locks[recv_attr] == "condition":
                lineno = node.lineno
                self.method.waits.append(
                    WaitSite(
                        cond_attr=recv_attr,
                        lineno=lineno,
                        col=node.col_offset + 1,
                        in_while=self.while_depth > 0 or meth == "wait_for",
                        allow=_line_has(self.lines, lineno, WAIT_ALLOW_COMMENT),
                    )
                )
            # Parking on a condition releases ITS lock but keeps any other
            # held lock — that residue is the blocking exposure. (A plain
            # `self._done_event.wait()`-style wait lands in the attr branch,
            # not here, because events are not lock attrs.)
            residue = self.held - {canonical}
            self.method.blockers.append(
                BlockSite(
                    description=f"self.{recv_attr}.{meth}() (condition wait)",
                    under=residue,
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                    allow=allow_blocking,
                )
            )
        # acquire()/release()/notify()/locked() on a lock attr: manual
        # acquire-release pairs are invisible to the `with`-based region
        # tracking — kept out of the graph deliberately (the codebase uses
        # `with`; locktrace's own internals are the one exception).

    def _is_blocking_leaf(self, dotted: str, func: ast.AST) -> bool:
        if dotted in BLOCKING_LEAF_CALLS:
            return True
        if isinstance(func, ast.Attribute) and func.attr in BLOCKING_METHOD_NAMES:
            receiver = func.value
            if isinstance(receiver, ast.Constant):
                return False  # "sep".join(...)
            base = _dotted(receiver)
            if func.attr == "join" and (
                base.endswith("path") or base in ("os", "posixpath", "ntpath")
            ):
                return False  # os.path.join and friends
            if _base_self_attr(func) is not None:
                return False  # self-attr chains handled via call edges
            return True
        return False


def _collect_classes(contexts: Sequence[FileContext]) -> dict[str, ClassInfo]:
    classes: dict[str, ClassInfo] = {}
    for ctx in contexts:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                info = _ClassCollector(ctx, node).collect()
                # First definition wins on a name collision (none in-tree).
                if info.name not in classes:
                    classes[info.name] = info
                    _collect_methods(ctx, node, info)
    return classes


def _collect_methods(
    ctx: FileContext, node: ast.ClassDef, info: ClassInfo
) -> None:
    lines = ctx.source.splitlines()
    primary = info.primary_lock()
    for stmt in node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        method = MethodInfo(name=stmt.name, lineno=stmt.lineno)
        if stmt.name.endswith("_locked") and primary is not None:
            method.holds_on_entry = frozenset({primary})
        visitor = _MethodVisitor(info, method, lines)
        for body_stmt in stmt.body:
            visitor.visit(body_stmt)
        info.methods[stmt.name] = method


def _resolve_call(
    classes: dict[str, ClassInfo], cls: ClassInfo, site: CallSite
) -> Optional[tuple[ClassInfo, MethodInfo]]:
    if site.target[0] == "self":
        meth = cls.methods.get(site.target[1])
        return (cls, meth) if meth is not None else None
    attr, meth_name = site.target[1], site.target[2]
    type_name = cls.attr_types.get(attr)
    if type_name is None:
        return None
    other = classes.get(type_name)
    if other is None:
        return None
    meth = other.methods.get(meth_name)
    return (other, meth) if meth is not None else None


def _fixpoint_may_acquire(
    classes: dict[str, ClassInfo],
) -> dict[tuple[str, str], set[str]]:
    """For each (class, method): canonical lock nodes it may transitively
    acquire."""
    may: dict[tuple[str, str], set[str]] = {}
    for cls in classes.values():
        for meth in cls.methods.values():
            may[(cls.name, meth.name)] = {
                f"{cls.name}.{lock}" for lock, _, _ in meth.acquires
            }
    changed = True
    while changed:
        changed = False
        for cls in classes.values():
            for meth in cls.methods.values():
                key = (cls.name, meth.name)
                for site in meth.calls:
                    resolved = _resolve_call(classes, cls, site)
                    if resolved is None:
                        continue
                    callee_cls, callee = resolved
                    extra = may[(callee_cls.name, callee.name)] - may[key]
                    if extra:
                        may[key] |= extra
                        changed = True
    return may


def _fixpoint_may_block(
    classes: dict[str, ClassInfo],
) -> dict[tuple[str, str], Optional[str]]:
    """For each (class, method): a witness description if a blocking call
    is reachable from it (lock context is the caller's concern)."""
    may: dict[tuple[str, str], Optional[str]] = {}
    for cls in classes.values():
        for meth in cls.methods.values():
            witness = None
            for blocker in meth.blockers:
                if not blocker.allow:
                    witness = (
                        f"{blocker.description} at "
                        f"{cls.path.name}:{blocker.lineno}"
                    )
                    break
            may[(cls.name, meth.name)] = witness
    changed = True
    while changed:
        changed = False
        for cls in classes.values():
            for meth in cls.methods.values():
                key = (cls.name, meth.name)
                if may[key] is not None:
                    continue
                for site in meth.calls:
                    if site.allow_blocking:
                        continue
                    resolved = _resolve_call(classes, cls, site)
                    if resolved is None:
                        if site.fallback_blocking is not None:
                            may[key] = (
                                f"{site.fallback_blocking} at "
                                f"{cls.path.name}:{site.lineno}"
                            )
                            changed = True
                            break
                        continue
                    callee_cls, callee = resolved
                    inner = may[(callee_cls.name, callee.name)]
                    if inner is not None:
                        may[key] = f"{site.text}() -> {inner}"
                        changed = True
                        break
    return may


@dataclass
class _Edge:
    src: str
    dst: str
    path: Path
    lineno: int
    reason: str


def _build_edges(
    classes: dict[str, ClassInfo],
    may_acquire: dict[tuple[str, str], set[str]],
) -> list[_Edge]:
    edges: list[_Edge] = []
    for cls in classes.values():
        for meth in cls.methods.values():
            entry = {cls.lock_node(h) for h in meth.holds_on_entry}
            for lock, under, lineno in meth.acquires:
                dst = f"{cls.name}.{lock}"
                held = {f"{cls.name}.{h}" for h in under} | entry
                for src in held:
                    edges.append(
                        _Edge(
                            src, dst, cls.path, lineno,
                            f"{cls.name}.{meth.name} nests 'with' blocks",
                        )
                    )
            for site in meth.calls:
                held = {f"{cls.name}.{h}" for h in site.under} | entry
                if not held:
                    continue
                resolved = _resolve_call(classes, cls, site)
                if resolved is None:
                    continue
                callee_cls, callee = resolved
                for dst in may_acquire[(callee_cls.name, callee.name)]:
                    for src in held:
                        edges.append(
                            _Edge(
                                src, dst, cls.path, site.lineno,
                                f"{cls.name}.{meth.name} calls {site.text}() "
                                f"which may acquire {dst}",
                            )
                        )
    return edges


def _find_cycles(
    classes: dict[str, ClassInfo], edges: list[_Edge]
) -> list[Violation]:
    """Self-loops (non-reentrant) and multi-node cycles in the lock graph."""
    violations: list[Violation] = []
    adjacency: dict[str, dict[str, _Edge]] = {}
    rlock_nodes = {
        f"{cls.name}.{attr}"
        for cls in classes.values()
        for attr, kind in cls.locks.items()
        if kind == "rlock"
    }
    seen_self: set[str] = set()
    for edge in edges:
        if edge.src == edge.dst:
            if edge.src in rlock_nodes or edge.src in seen_self:
                continue
            seen_self.add(edge.src)
            violations.append(
                Violation(
                    path=str(edge.path),
                    line=edge.lineno,
                    col=1,
                    rule="lock-order-inversion",
                    message=(
                        f"self-deadlock: non-reentrant lock '{edge.src}' can "
                        f"be re-acquired while already held ({edge.reason})"
                    ),
                )
            )
            continue
        adjacency.setdefault(edge.src, {}).setdefault(edge.dst, edge)

    WHITE, GREY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    reported: set[frozenset[str]] = set()

    def dfs(node: str, stack: list[str]) -> None:
        color[node] = GREY
        stack.append(node)
        for succ, edge in adjacency.get(node, {}).items():
            state = color.get(succ, WHITE)
            if state == GREY:
                start = stack.index(succ)
                cycle = stack[start:] + [succ]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    violations.append(
                        Violation(
                            path=str(edge.path),
                            line=edge.lineno,
                            col=1,
                            rule="lock-order-inversion",
                            message=(
                                "lock-order inversion cycle: "
                                + " -> ".join(cycle)
                                + f" (closing edge: {edge.reason}); threads "
                                "taking these locks in opposing orders can "
                                "deadlock"
                            ),
                        )
                    )
            elif state == WHITE:
                dfs(succ, stack)
        stack.pop()
        color[node] = BLACK

    for node in list(adjacency):
        if color.get(node, WHITE) == WHITE:
            dfs(node, [])
    return violations


def _check_waits(classes: dict[str, ClassInfo]) -> list[Violation]:
    violations: list[Violation] = []
    for cls in classes.values():
        for meth in cls.methods.values():
            for wait in meth.waits:
                if wait.in_while or wait.allow:
                    continue
                violations.append(
                    Violation(
                        path=str(cls.path),
                        line=wait.lineno,
                        col=wait.col,
                        rule="condition-wait-outside-loop",
                        message=(
                            f"{cls.name}.{meth.name}: Condition.wait() on "
                            f"self.{wait.cond_attr} is not inside a while "
                            "loop re-checking its predicate; spurious "
                            "wakeups and notify races slip through (use "
                            "`while not pred: cond.wait()` or wait_for)"
                        ),
                    )
                )
    return violations


def _check_guards(classes: dict[str, ClassInfo]) -> list[Violation]:
    violations: list[Violation] = []
    for cls in classes.values():
        if not cls.locks:
            continue
        own_locks = {cls.canonical(a) for a in cls.locks}
        # Shared = written at least once with one of the class's own locks
        # held, outside construction.
        shared: dict[str, Access] = {}
        for meth in cls.methods.values():
            if meth.name in ("__init__", "__post_init__"):
                continue
            for access in meth.accesses:
                if access.is_write and access.under & own_locks:
                    shared.setdefault(access.attr, access)
        for attr in sorted(shared):
            first_write = shared[attr]
            guard = cls.guards.get(attr)
            if guard is None:
                violations.append(
                    Violation(
                        path=str(cls.path),
                        line=first_write.lineno,
                        col=first_write.col,
                        rule="unguarded-field",
                        message=(
                            f"{cls.name}.{attr} is written under "
                            f"{'/'.join(sorted(first_write.under))} but its "
                            "declaration carries no '# guarded-by: <lock>' "
                            "or '# unguarded-ok: <reason>' annotation"
                        ),
                    )
                )
                continue
            kind, value = guard
            if kind != "guarded":
                continue  # unguarded-ok / cross-class: declared, exempt
            lock = cls.canonical(value)
            for meth in cls.methods.values():
                if meth.name in ("__init__", "__post_init__"):
                    continue
                entry = {cls.canonical(h) for h in meth.holds_on_entry}
                for access in meth.accesses:
                    if access.attr != attr or access.allow:
                        continue
                    if lock in access.under or lock in entry:
                        continue
                    what = "written" if access.is_write else "read"
                    violations.append(
                        Violation(
                            path=str(cls.path),
                            line=access.lineno,
                            col=access.col,
                            rule="guard-violation",
                            message=(
                                f"{cls.name}.{attr} is declared "
                                f"'# guarded-by: {value}' but is {what} in "
                                f"{meth.name}() without that lock held "
                                "(annotate the site '# unguarded-ok: "
                                "<reason>' if the race is benign)"
                            ),
                        )
                    )
    return violations


def _check_blocking(
    classes: dict[str, ClassInfo],
    may_block: dict[tuple[str, str], Optional[str]],
) -> list[Violation]:
    violations: list[Violation] = []
    for cls in classes.values():
        for meth in cls.methods.values():
            for blocker in meth.blockers:
                if blocker.allow or not blocker.under:
                    continue
                held = ", ".join(
                    sorted(f"{cls.name}.{h}" for h in blocker.under)
                )
                violations.append(
                    Violation(
                        path=str(cls.path),
                        line=blocker.lineno,
                        col=blocker.col,
                        rule="blocking-under-lock",
                        message=(
                            f"{cls.name}.{meth.name}: {blocker.description} "
                            f"while holding {held}; a blocked critical "
                            "section stalls every thread contending for "
                            "that lock"
                        ),
                    )
                )
            entry = meth.holds_on_entry
            for site in meth.calls:
                under = site.under | {cls.canonical(h) for h in entry}
                if not under or site.allow_blocking:
                    continue
                resolved = _resolve_call(classes, cls, site)
                if resolved is None:
                    if site.fallback_blocking is None:
                        continue
                    held = ", ".join(sorted(f"{cls.name}.{h}" for h in under))
                    violations.append(
                        Violation(
                            path=str(cls.path),
                            line=site.lineno,
                            col=site.col,
                            rule="blocking-under-lock",
                            message=(
                                f"{cls.name}.{meth.name}: "
                                f"{site.fallback_blocking} while holding "
                                f"{held}; a blocked critical section stalls "
                                "every thread contending for that lock"
                            ),
                        )
                    )
                    continue
                callee_cls, callee = resolved
                witness = may_block[(callee_cls.name, callee.name)]
                if witness is None:
                    continue
                held = ", ".join(sorted(f"{cls.name}.{h}" for h in under))
                violations.append(
                    Violation(
                        path=str(cls.path),
                        line=site.lineno,
                        col=site.col,
                        rule="blocking-under-lock",
                        message=(
                            f"{cls.name}.{meth.name}: call chain "
                            f"{site.text}() can block ({witness}) while "
                            f"holding {held}"
                        ),
                    )
                )
    return violations


def analyze(paths: Sequence[str]) -> list[Violation]:
    """Run the whole-program concurrency analysis over ``paths``."""
    contexts = [
        ctx
        for ctx in (parse_file(p) for p in iter_python_files(paths))
        if ctx is not None
    ]
    classes = _collect_classes(contexts)
    may_acquire = _fixpoint_may_acquire(classes)
    may_block = _fixpoint_may_block(classes)
    edges = _build_edges(classes, may_acquire)
    violations: list[Violation] = []
    violations.extend(_find_cycles(classes, edges))
    violations.extend(_check_waits(classes))
    violations.extend(_check_guards(classes))
    violations.extend(_check_blocking(classes, may_block))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def lock_graph(paths: Sequence[str]) -> dict[str, set[str]]:
    """The class-level lock acquisition graph (for docs/debugging)."""
    contexts = [
        ctx
        for ctx in (parse_file(p) for p in iter_python_files(paths))
        if ctx is not None
    ]
    classes = _collect_classes(contexts)
    may_acquire = _fixpoint_may_acquire(classes)
    graph: dict[str, set[str]] = {}
    for edge in _build_edges(classes, may_acquire):
        if edge.src != edge.dst:
            graph.setdefault(edge.src, set()).add(edge.dst)
    return graph


__all__ = ["analyze", "lock_graph"]
