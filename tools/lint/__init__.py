"""Project lint: AST-checked engineering discipline.

Run as ``python -m tools.lint src tests`` from the repository root. See
:mod:`tools.lint.rules` for what is enforced and why.
"""

from .framework import FileContext, Rule, Violation, run_lint
from .rules import DEFAULT_RULES

__all__ = ["FileContext", "Rule", "Violation", "run_lint", "DEFAULT_RULES"]

# The whole-program concurrency analyzer (tools.lint.concurrency) is
# imported lazily by __main__ — `from tools.lint.concurrency import
# analyze` for programmatic use.
