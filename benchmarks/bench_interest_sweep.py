"""Experiment X2 — query time versus size of the data of interest.

§4: "query performance of ALi is dependent on the size of data of interest.
Intuitively, the best case is that the first stage yields an empty set of
files of interest … The worst case is that the data of interest is the
entire repository, where then the performance becomes similar to the
loading of Ei."

Run: ``pytest benchmarks/bench_interest_sweep.py --benchmark-only -s``
"""

import pytest

from repro.explore.workload import sweep_queries
from repro.harness.experiments import interest_sweep
from repro.harness.reporting import render_sweep

FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]


def _queries(env, fractions):
    return sweep_queries(
        list(env.spec.stations),
        list(env.spec.channels),
        env.spec.start_day,
        f"{env.spec.start_day}T10:00:00",
        f"{env.spec.start_day}T11:00:00",
        fractions=fractions,
        days=env.spec.days,  # fraction 1.0 = the entire repository
    )


def test_sweep_report(env, benchmark):
    entries = benchmark.pedantic(
        interest_sweep, args=(env, _queries(env, FRACTIONS)), rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(entries))
    # Monotone growth in files touched, and the best case is the cheapest.
    files = [e.files_of_interest for e in entries]
    assert files == sorted(files)
    assert entries[0].files_of_interest == 0
    assert entries[-1].seconds > entries[0].seconds
    if len(env.repository) >= 100:
        # At the headline scale the worst case costs a large multiple of
        # the best case (it converges toward Ei's full load, §4).
        assert entries[-1].seconds > 5 * entries[0].seconds


@pytest.mark.parametrize("fraction", FRACTIONS)
def test_query_at_fraction(env, benchmark, fraction):
    ((_, sql),) = _queries(env, [fraction])
    executor = env.fresh_executor()

    def setup():
        env.ali.make_cold()
        return (), {}

    benchmark.pedantic(
        lambda: executor.execute(sql), setup=setup, rounds=2, iterations=1
    )


def test_best_case_empty_interest(env, benchmark):
    """The empty-files-of-interest best case: no ingestion ever happens."""
    ((_, sql),) = _queries(env, [0.0])
    executor = env.fresh_executor()
    outcome = executor.execute(sql)
    assert outcome.breakpoint.n_files == 0
    benchmark(lambda: executor.execute(sql))
