"""Experiment A7 — record-granular selective mounting.

Rule (1) fuses the query's time predicate into every stage-2 mount branch.
Selective mounting pushes that interval *into extraction*: the xSEED
extractor seeks straight to the records whose header interval overlaps the
request (using the R table's byte map), reads only those byte ranges, and
Steim-decodes only those frames. On a narrow time window — the paper's
"five minutes around the earthquake" exploration pattern — this should cut
both bytes read and records decoded by well over 5x, with byte-identical
answers.

Method: the same narrow-window query runs cold in four configurations
(selective on/off x mount_workers 1/4), each on a fresh metadata-only
database with cold buffers and an empty ingestion cache. File-level time
pruning cannot help here — every file's records span the whole day, so
every file of interest overlaps the window — which isolates the
record-granular effect.

Run as a script (CI smoke-checks ``--smoke --json``)::

    PYTHONPATH=src python benchmarks/bench_selective_mount.py --smoke
    PYTHONPATH=src python benchmarks/bench_selective_mount.py --json out.json

or through pytest (``pytest benchmarks/bench_selective_mount.py -s``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional, Sequence

from bench_json import add_json_argument, maybe_emit_json
from repro.core import TwoStageExecutor
from repro.db import Database
from repro.harness.setup import materialize_repository
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec

# A 30-minute window out of each file's full day: ~2% of the records in
# every file of interest, so record pruning (not file pruning) is the only
# available lever.
NARROW_SQL = (
    "SELECT COUNT(*) AS n, AVG(D.sample_value) AS a "
    "FROM F JOIN D ON F.uri = D.uri "
    "WHERE D.sample_time >= '2010-01-10T10:00:00.000' "
    "AND D.sample_time < '2010-01-10T10:30:00.000'"
)

MIN_REDUCTION = 5.0


def dense_spec() -> RepositorySpec:
    """4 day-long files of 240 records each — the headline scale."""
    return RepositorySpec(
        stations=("ISK", "ANK"),
        channels=("BHE", "BHZ"),
        days=1,
        sample_rate=1.0,
        samples_per_record=360,
    )


def smoke_spec() -> RepositorySpec:
    """2 files of 96 records — CI smoke scale (seconds, not minutes)."""
    return RepositorySpec(
        stations=("ISK",),
        channels=("BHE", "BHZ"),
        days=1,
        sample_rate=0.2,
        samples_per_record=180,
    )


@dataclass
class SelectiveRun:
    """One cold execution's read/decode accounting."""

    selective: bool
    workers: int
    rows: list[tuple]
    files_mounted: int
    bytes_read: int
    records_decoded: int
    records_skipped: int
    selective_mounts: int
    stage2_seconds: float


def run_cold(
    repository: FileRepository, selective: bool, workers: int
) -> SelectiveRun:
    """Cold-run the narrow query: fresh database, cache, and buffers."""
    db = Database()
    lazy_ingest_metadata(db, repository)
    executor = TwoStageExecutor(
        db,
        RepositoryBinding(repository),
        mount_workers=workers,
        selective_mounts=selective,
    )
    db.make_cold()
    outcome = executor.execute(NARROW_SQL)
    stats = executor.mounts.stats
    return SelectiveRun(
        selective=selective,
        workers=workers,
        rows=outcome.rows,
        files_mounted=stats.mounts,
        bytes_read=stats.bytes_read,
        records_decoded=stats.records_decoded,
        records_skipped=stats.records_skipped,
        selective_mounts=stats.selective_mounts,
        stage2_seconds=outcome.timings.stage2_seconds,
    )


def compare(repository: FileRepository) -> list[SelectiveRun]:
    """All four configurations; verifies byte-identical answers."""
    runs = [
        run_cold(repository, selective, workers)
        for selective in (False, True)
        for workers in (1, 4)
    ]
    baseline = runs[0]
    for run in runs[1:]:
        if run.rows != baseline.rows:
            raise AssertionError(
                "selective mounting changed the answer: "
                f"(selective={baseline.selective}, workers={baseline.workers})"
                f" -> {baseline.rows!r}, (selective={run.selective}, "
                f"workers={run.workers}) -> {run.rows!r}"
            )
    return runs


def reductions(runs: Sequence[SelectiveRun]) -> tuple[float, float]:
    """(bytes, decode) reduction of the best selective run vs full mounts."""
    full = next(r for r in runs if not r.selective)
    sel = next(r for r in runs if r.selective)
    bytes_x = full.bytes_read / sel.bytes_read if sel.bytes_read else float("inf")
    decode_x = (
        full.records_decoded / sel.records_decoded
        if sel.records_decoded
        else float("inf")
    )
    return bytes_x, decode_x


def render(runs: Sequence[SelectiveRun]) -> str:
    lines = [
        f"{'selective':>10} {'workers':>8} {'files':>6} {'bytes read':>12} "
        f"{'decoded':>8} {'skipped':>8} {'stage 2':>10}",
    ]
    for run in runs:
        lines.append(
            f"{('on' if run.selective else 'off'):>10} {run.workers:>8} "
            f"{run.files_mounted:>6} {run.bytes_read:>12,} "
            f"{run.records_decoded:>8} {run.records_skipped:>8} "
            f"{run.stage2_seconds * 1000:>8.1f}ms"
        )
    bytes_x, decode_x = reductions(runs)
    lines.append(
        f"selective mounting reads {bytes_x:.1f}x fewer payload bytes and "
        f"decodes {decode_x:.1f}x fewer records; answers byte-identical "
        f"across all configurations"
    )
    return "\n".join(lines)


def check(runs: Sequence[SelectiveRun]) -> None:
    bytes_x, decode_x = reductions(runs)
    assert bytes_x >= MIN_REDUCTION, (
        f"expected >={MIN_REDUCTION}x fewer bytes read, got {bytes_x:.2f}x"
    )
    assert decode_x >= MIN_REDUCTION, (
        f"expected >={MIN_REDUCTION}x fewer records decoded, "
        f"got {decode_x:.2f}x"
    )
    for run in runs:
        if run.selective:
            assert run.selective_mounts == run.files_mounted
            assert run.records_skipped > 0


# -- pytest entry points -------------------------------------------------------


def test_selective_mount_smoke():
    """Smoke: identical answers, >=5x reductions (2 files)."""
    repository = materialize_repository(smoke_spec())
    runs = compare(repository)
    print()
    print(render(runs))
    check(runs)


def test_selective_mount_headline():
    """Headline: >=5x fewer bytes and decodes on 4 day-long files."""
    repository = materialize_repository(dense_spec())
    runs = compare(repository)
    print()
    print(render(runs))
    check(runs)


# -- script entry point --------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Selective mounting: record-granular vs whole-file reads"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="2-file smoke run (seconds); CI uses this",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)

    spec = smoke_spec() if args.smoke else dense_spec()
    repository = materialize_repository(spec)
    print(
        f"repository: {len(repository.uris())} files, "
        f"{repository.total_bytes():,} bytes"
    )
    runs = compare(repository)
    print(render(runs))
    bytes_x, decode_x = reductions(runs)
    maybe_emit_json(
        args.json,
        "selective_mount",
        params={
            "smoke": args.smoke,
            "files": len(repository.uris()),
            "repository_bytes": repository.total_bytes(),
            "sql": NARROW_SQL,
            "min_reduction": MIN_REDUCTION,
        },
        results={
            "runs": list(runs),
            "bytes_reduction": bytes_x,
            "decode_reduction": decode_x,
        },
    )
    try:
        check(runs)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
