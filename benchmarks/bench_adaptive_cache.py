"""Experiment A10 — workload-adaptive caching and the persistent metastore.

Three quantitative claims, each asserted:

1. **Warm start**: a session that loads the persisted metastore reaches its
   first answer reading at least ``MIN_WARM_REDUCTION``x fewer repository
   bytes than a cold session that must header-walk every file — the DiNoDB
   move of treating positional maps as metadata worth keeping.
2. **Adaptive beats LRU**: on a sliding-hot-window trace (the exploration
   loop of §1: repeated overlapping looks at one station amid one-off
   sweeps) the adaptive policy's granularity promotion converts the hot
   files into whole-file cache entries, so its cache-scan rate exceeds
   plain LRU's by at least ``MIN_RATE_GAP``. Plain LRU at tuple
   granularity never covers a *sliding* window, so it re-mounts every time.
3. **Identity**: answers are byte-identical across {adaptive on/off} x
   {mount_workers 1/4} x {selective on/off} — adaptivity is a performance
   lever, never a semantics lever.

Run as a script (CI smoke-checks ``--smoke --json``)::

    PYTHONPATH=src python benchmarks/bench_adaptive_cache.py --smoke
    PYTHONPATH=src python benchmarks/bench_adaptive_cache.py --json out.json

or through pytest (``pytest benchmarks/bench_adaptive_cache.py -s``).
"""

from __future__ import annotations

import argparse
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator, Optional, Sequence

from bench_json import add_json_argument, maybe_emit_json
from repro.core import (
    CacheGranularity,
    CachePolicy,
    IngestionCache,
    MetadataStore,
    TwoStageExecutor,
)
from repro.db import Database
from repro.db.types import format_timestamp, parse_timestamp
from repro.harness.setup import materialize_repository
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec
from repro.mseed.iohooks import set_volume_io_hook

MIN_WARM_REDUCTION = 5.0  # cold/warm repository-bytes ratio floor
MIN_RATE_GAP = 0.15  # adaptive cache-scan rate must beat LRU's by this
HOT_STATION = "ISK"
CACHE_BYTES = 64_000_000

_MINUTE_US = 60 * 1_000_000


def dense_spec() -> RepositorySpec:
    """27 files x 96 records: header-walk bytes dominate a narrow query."""
    return RepositorySpec(
        stations=("ISK", "ANK", "IZM"),
        channels=("BHE", "BHN", "BHZ"),
        days=3,
        sample_rate=0.5,
        samples_per_record=450,
    )


def smoke_spec() -> RepositorySpec:
    """4 files x 160 records — CI smoke scale (seconds, not minutes)."""
    return RepositorySpec(
        stations=("ISK", "ANK"),
        channels=("BHE", "BHN"),
        days=1,
        sample_rate=0.5,
        samples_per_record=270,
    )


def _window_sql(station: str, lo_us: int, hi_us: int) -> str:
    return (
        "SELECT COUNT(*) AS n, AVG(D.sample_value) AS a "
        "FROM F JOIN D ON F.uri = D.uri "
        f"WHERE F.station = '{station}' "
        f"AND D.sample_time >= '{format_timestamp(lo_us)}' "
        f"AND D.sample_time < '{format_timestamp(hi_us)}'"
    )


def exploration_trace(spec: RepositorySpec, hot_steps: int = 8) -> list[str]:
    """Sliding 30-minute windows on the hot station (50% overlap — never
    covered by an earlier tuple-granular entry) interleaved with one-off
    sweep queries on every other station: the flood plain LRU drowns in."""
    day_us = parse_timestamp(spec.start_day)
    base = day_us + 8 * 60 * _MINUTE_US
    width = 30 * _MINUTE_US
    step = width // 2
    others = [s for s in spec.stations if s != HOT_STATION]
    trace: list[str] = []
    for i in range(hot_steps):
        lo = base + i * step
        trace.append(_window_sql(HOT_STATION, lo, lo + width))
        if others:
            sweep = others[i % len(others)]
            sweep_lo = day_us + (2 + i) * 60 * _MINUTE_US
            trace.append(_window_sql(sweep, sweep_lo, sweep_lo + width))
    return trace


# -- repository byte accounting ------------------------------------------------


class _ByteCounter:
    """Volume I/O hook that sums bytes handed out by repository reads.

    Metastore sidecar traffic (``metastore:`` URIs) is excluded: the claim
    under test is about *repository* bytes, and the sidecar is the thing
    that replaces them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.bytes_read = 0  # guarded-by: _lock

    def wrap(self, path: Path, uri: str, handle: BinaryIO) -> BinaryIO:
        if uri.startswith("metastore:"):
            return handle
        return _CountingHandle(self, handle)

    def add(self, n: int) -> None:
        with self._lock:
            self.bytes_read += n

    @contextmanager
    def install(self) -> Iterator["_ByteCounter"]:
        previous = set_volume_io_hook(self)
        try:
            yield self
        finally:
            set_volume_io_hook(previous)


class _CountingHandle:
    def __init__(self, counter: _ByteCounter, handle: BinaryIO) -> None:
        self._counter = counter
        self._handle = handle

    def read(self, n: int = -1) -> bytes:
        data = self._handle.read(n)
        self._counter.add(len(data))
        return data

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._handle.seek(offset, whence)

    def tell(self) -> int:
        return self._handle.tell()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "_CountingHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- claim 1: cold vs warm metastore start -------------------------------------


@dataclass
class SessionRun:
    """One session's path to its first answer."""

    mode: str  # "cold" | "warm"
    rows: list[tuple]
    repository_bytes: int
    files_reused: int
    mounts: int
    load_seconds: float


def _first_answer(
    repository: FileRepository,
    metastore: MetadataStore,
    mode: str,
    sql: str,
) -> SessionRun:
    counter = _ByteCounter()
    with counter.install():
        db = Database()
        report = lazy_ingest_metadata(db, repository, metastore=metastore)
        executor = TwoStageExecutor(
            db, RepositoryBinding(repository), selective_mounts=True
        )
        db.make_cold()
        outcome = executor.execute(sql)
    return SessionRun(
        mode=mode,
        rows=outcome.rows,
        repository_bytes=counter.bytes_read,
        files_reused=report.files_reused,
        mounts=executor.mounts.stats.mounts,
        load_seconds=report.load_seconds,
    )


def run_cold_vs_warm(
    repository: FileRepository, spec: RepositorySpec
) -> tuple[SessionRun, SessionRun]:
    """Cold session (header walk, records + saves the sidecar), then a fresh
    warm session that loads the sidecar and stat-validates every file."""
    sidecar = repository.root / MetadataStore.for_repository(
        repository.root
    ).path.name
    sidecar.unlink(missing_ok=True)

    day_us = parse_timestamp(spec.start_day)
    sql = _window_sql(
        HOT_STATION, day_us + 600 * _MINUTE_US, day_us + 630 * _MINUTE_US
    )

    cold_store = MetadataStore.for_repository(repository.root)
    cold = _first_answer(repository, cold_store, "cold", sql)

    warm_store = MetadataStore.for_repository(repository.root)
    warm_store.load()
    warm = _first_answer(repository, warm_store, "warm", sql)
    return cold, warm


def warm_reduction(cold: SessionRun, warm: SessionRun) -> float:
    if warm.repository_bytes == 0:
        return float("inf")
    return cold.repository_bytes / warm.repository_bytes


def check_cold_vs_warm(
    cold: SessionRun, warm: SessionRun, file_count: int
) -> None:
    assert warm.rows == cold.rows, (
        f"warm start changed the answer: {cold.rows!r} -> {warm.rows!r}"
    )
    assert cold.files_reused == 0
    assert warm.files_reused == file_count, (
        f"expected all {file_count} files served from the metastore, "
        f"got {warm.files_reused}"
    )
    ratio = warm_reduction(cold, warm)
    assert ratio >= MIN_WARM_REDUCTION, (
        f"expected >={MIN_WARM_REDUCTION}x fewer repository bytes on warm "
        f"start, got {ratio:.2f}x ({cold.repository_bytes:,} cold vs "
        f"{warm.repository_bytes:,} warm)"
    )


# -- claims 2 and 3: adaptive vs LRU, and the identity grid --------------------


@dataclass
class TraceRun:
    """One policy/worker/selective configuration over the whole trace."""

    policy: str
    workers: int
    selective: bool
    rows: list[list[tuple]]
    mounts: int
    cache_scans: int
    adaptive_whole_file: int
    cache_scan_rate: float


def run_trace(
    repository: FileRepository,
    trace: Sequence[str],
    policy: CachePolicy,
    workers: int = 1,
    selective: bool = True,
) -> TraceRun:
    db = Database()
    lazy_ingest_metadata(db, repository)
    cache = IngestionCache(
        policy, CacheGranularity.TUPLE, capacity_bytes=CACHE_BYTES
    )
    executor = TwoStageExecutor(
        db,
        RepositoryBinding(repository),
        cache=cache,
        mount_workers=workers,
        selective_mounts=selective,
    )
    db.make_cold()
    rows = [executor.execute(sql).rows for sql in trace]
    stats = executor.mounts.stats
    touches = stats.mounts + stats.cache_scans
    return TraceRun(
        policy=policy.value,
        workers=workers,
        selective=selective,
        rows=rows,
        mounts=stats.mounts,
        cache_scans=stats.cache_scans,
        adaptive_whole_file=stats.adaptive_whole_file,
        cache_scan_rate=stats.cache_scans / touches if touches else 0.0,
    )


def run_policy_duel(
    repository: FileRepository, trace: Sequence[str]
) -> tuple[TraceRun, TraceRun]:
    adaptive = run_trace(repository, trace, CachePolicy.ADAPTIVE)
    lru = run_trace(repository, trace, CachePolicy.LRU)
    return adaptive, lru


def check_policy_duel(adaptive: TraceRun, lru: TraceRun) -> None:
    assert adaptive.rows == lru.rows, (
        "adaptive caching changed an answer vs plain LRU"
    )
    gap = adaptive.cache_scan_rate - lru.cache_scan_rate
    assert gap >= MIN_RATE_GAP, (
        f"expected adaptive to beat LRU's cache-scan rate by "
        f">={MIN_RATE_GAP:.2f}, got {adaptive.cache_scan_rate:.2f} vs "
        f"{lru.cache_scan_rate:.2f} (gap {gap:.2f})"
    )
    assert adaptive.adaptive_whole_file > 0, (
        "the hot station never triggered granularity promotion"
    )


def run_identity_grid(
    repository: FileRepository, trace: Sequence[str]
) -> list[TraceRun]:
    """All eight configurations; verifies byte-identical answers."""
    runs = [
        run_trace(repository, trace, policy, workers, selective)
        for policy in (CachePolicy.LRU, CachePolicy.ADAPTIVE)
        for workers in (1, 4)
        for selective in (False, True)
    ]
    baseline = runs[0]
    for run in runs[1:]:
        if run.rows != baseline.rows:
            raise AssertionError(
                "answers diverged across the grid: "
                f"({baseline.policy}, workers={baseline.workers}, "
                f"selective={baseline.selective}) vs ({run.policy}, "
                f"workers={run.workers}, selective={run.selective})"
            )
    return runs


# -- reporting -----------------------------------------------------------------


def render(
    cold: SessionRun,
    warm: SessionRun,
    adaptive: TraceRun,
    lru: TraceRun,
    grid: Sequence[TraceRun],
) -> str:
    lines = [
        f"{'session':>8} {'repo bytes':>12} {'reused':>7} {'mounts':>7}",
    ]
    for run in (cold, warm):
        lines.append(
            f"{run.mode:>8} {run.repository_bytes:>12,} "
            f"{run.files_reused:>7} {run.mounts:>7}"
        )
    lines.append(
        f"warm start reads {warm_reduction(cold, warm):.1f}x fewer "
        f"repository bytes to its first answer"
    )
    lines.append("")
    lines.append(
        f"{'policy':>10} {'mounts':>7} {'scans':>6} {'promoted':>9} "
        f"{'scan rate':>10}"
    )
    for run in (lru, adaptive):
        lines.append(
            f"{run.policy:>10} {run.mounts:>7} {run.cache_scans:>6} "
            f"{run.adaptive_whole_file:>9} {run.cache_scan_rate:>9.1%}"
        )
    lines.append(
        f"identity grid: {len(grid)} configurations, answers byte-identical"
    )
    return "\n".join(lines)


# -- pytest entry points -------------------------------------------------------


def _run_all(spec: RepositorySpec) -> dict:
    repository = materialize_repository(spec)
    cold, warm = run_cold_vs_warm(repository, spec)
    trace = exploration_trace(spec)
    adaptive, lru = run_policy_duel(repository, trace)
    grid = run_identity_grid(repository, trace[:4])
    print()
    print(render(cold, warm, adaptive, lru, grid))
    check_cold_vs_warm(cold, warm, spec.file_count)
    check_policy_duel(adaptive, lru)
    return {
        "cold": cold,
        "warm": warm,
        "adaptive": adaptive,
        "lru": lru,
        "grid": grid,
    }


def test_adaptive_cache_smoke():
    """Smoke: all three claims at 4-file scale."""
    _run_all(smoke_spec())


def test_adaptive_cache_headline():
    """Headline: all three claims on 27 day-long files."""
    _run_all(dense_spec())


# -- script entry point --------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Adaptive cache + persistent metastore: cold vs warm, "
        "adaptive vs LRU, identity grid"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="4-file smoke run (seconds); CI uses this",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)

    spec = smoke_spec() if args.smoke else dense_spec()
    repository = materialize_repository(spec)
    print(
        f"repository: {len(repository.uris())} files, "
        f"{repository.total_bytes():,} bytes"
    )
    try:
        runs = _run_all(spec)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    maybe_emit_json(
        args.json,
        "adaptive_cache",
        params={
            "smoke": args.smoke,
            "files": spec.file_count,
            "repository_bytes": repository.total_bytes(),
            "min_warm_reduction": MIN_WARM_REDUCTION,
            "min_rate_gap": MIN_RATE_GAP,
            "cache_bytes": CACHE_BYTES,
        },
        results={
            "cold": runs["cold"],
            "warm": runs["warm"],
            "adaptive": runs["adaptive"],
            "lru": runs["lru"],
            "grid": runs["grid"],
            "warm_reduction": warm_reduction(runs["cold"], runs["warm"]),
            "rate_gap": (
                runs["adaptive"].cache_scan_rate - runs["lru"].cache_scan_rate
            ),
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
