"""Experiment A4 — multi-stage execution (§5).

Batched ingestion with re-estimation between batches: how quickly does the
running estimate converge, and how much time does early stopping save on a
whole-repository aggregate?

Run: ``pytest benchmarks/bench_multistage.py --benchmark-only -s``
"""

import pytest

from repro.core import MultiStageExecutor

WHOLE_REPO_AVG = "SELECT AVG(sample_value) FROM D"


def test_full_multistage(small_env, benchmark):
    executor = small_env.fresh_executor()
    multi = MultiStageExecutor(executor, batch_files=4)
    outcome = benchmark.pedantic(
        lambda: multi.execute(WHOLE_REPO_AVG), rounds=1, iterations=1
    )
    assert outcome.converged


@pytest.mark.parametrize("max_batches", [1, 2, 4])
def test_early_stop(small_env, benchmark, max_batches):
    executor = small_env.fresh_executor()
    multi = MultiStageExecutor(
        executor, batch_files=2, max_batches=max_batches
    )
    benchmark.pedantic(
        lambda: multi.execute(WHOLE_REPO_AVG), rounds=1, iterations=1
    )


def test_convergence_trajectory(small_env, benchmark):
    """Print the running estimate per batch and check it converges to the
    exact answer."""
    executor = small_env.fresh_executor()
    multi = MultiStageExecutor(executor, batch_files=3)
    outcome = benchmark.pedantic(
        lambda: multi.execute(WHOLE_REPO_AVG), rounds=1, iterations=1
    )
    exact = small_env.ei.execute(WHOLE_REPO_AVG).scalar()
    print(f"\nexact answer: {exact:.4f}")
    errors = []
    for snap in outcome.snapshots:
        estimate = snap.running_rows[0][0]
        error = abs(estimate - exact)
        errors.append(error)
        print(
            f"  batch {snap.batch_index}: {snap.files_processed}/"
            f"{snap.total_files} files, estimate {estimate:.4f} "
            f"(|err| {error:.4f})"
        )
    assert errors[-1] == pytest.approx(0.0, abs=1e-9)
    # The approximate answer after the first batch is already finite and in
    # the right order of magnitude (signal is zero-mean noise + events).
    assert errors[0] < max(abs(exact), 50.0) + 50.0
