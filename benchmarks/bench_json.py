"""Shared ``--json OUT`` emitter for the benchmark scripts.

Every benchmark that supports machine-readable output funnels through
:func:`emit_json`, so CI artifacts share one envelope::

    {
      "benchmark": "selective_mount",
      "generated_at": "2026-08-06T12:00:00+00:00",
      "python": "3.11.9",
      "params": {...workload knobs...},
      "results": [...one dict per measured configuration...]
    }

Dataclasses in ``params``/``results`` are serialized field-by-field, so
benchmarks can pass their run records straight through.

Usage in a benchmark script::

    parser = argparse.ArgumentParser(...)
    add_json_argument(parser)
    ...
    maybe_emit_json(args.json, "my_bench", params={...}, results=[...])
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import platform
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Optional


def add_json_argument(parser: argparse.ArgumentParser) -> None:
    """Register the shared ``--json OUT`` option."""
    parser.add_argument(
        "--json", metavar="OUT", default=None,
        help="also write machine-readable results to this JSON file",
    )


def _plain(value: Any) -> Any:
    """Recursively reduce dataclasses/paths/tuples to JSON-native values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _plain(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, Path):
        return str(value)
    return value


def emit_json(
    path: str,
    benchmark: str,
    params: Any,
    results: Any,
) -> Path:
    """Write one benchmark's envelope to ``path`` and return it."""
    envelope = {
        "benchmark": benchmark,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "params": _plain(params),
        "results": _plain(results),
    }
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(envelope, indent=2) + "\n")
    return out


def maybe_emit_json(
    path: Optional[str],
    benchmark: str,
    params: Any,
    results: Any,
) -> Optional[Path]:
    """:func:`emit_json` when ``--json`` was given; silently skip otherwise."""
    if path is None:
        return None
    out = emit_json(path, benchmark, params, results)
    print(f"wrote {benchmark} results to {out}")
    return out
