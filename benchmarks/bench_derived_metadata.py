"""Experiment A3 — derived metadata (§5 "Extending metadata").

"Having some derived metadata already computed and stored in the database
before such a query comes will increase the query performance. It may even
eliminate some of the long running queries."

The bench runs a summary aggregate twice: the first execution mounts files
(and, as a side-effect, collects derived metadata); the second is answered
at the breakpoint from the derived-metadata table without touching a single
file.

Run: ``pytest benchmarks/bench_derived_metadata.py --benchmark-only -s``
"""

import pytest

from repro.core import DerivedMetadataStore
from repro.db import Database
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.core import TwoStageExecutor

SUMMARY_SQL = (
    "SELECT AVG(D.sample_value), MIN(D.sample_value), MAX(D.sample_value) "
    "FROM F JOIN D ON F.uri = D.uri WHERE F.station = 'ISK'"
)


@pytest.fixture(scope="module")
def derived_executor(small_env):
    db = Database()
    lazy_ingest_metadata(db, small_env.repository)
    derived = DerivedMetadataStore(db)
    executor = TwoStageExecutor(
        db, RepositoryBinding(small_env.repository), derived=derived
    )
    return executor


def test_cold_summary_mounts(derived_executor, benchmark):
    """First-contact cost (files must be mounted)."""
    outcome = benchmark.pedantic(
        lambda: derived_executor.execute(SUMMARY_SQL), rounds=1, iterations=1
    )
    assert outcome.result.stats.files_mounted > 0


def test_warm_summary_from_derived(derived_executor, benchmark):
    """Second-contact cost: answered from derived metadata, zero mounts."""
    derived_executor.execute(SUMMARY_SQL)  # ensure coverage
    outcome = benchmark(lambda: derived_executor.execute(SUMMARY_SQL))
    assert outcome.breakpoint.answered_from_derived
    assert outcome.result.stats.files_mounted == 0


def test_speedup_and_correctness(small_env, benchmark):
    # A fresh store so the first execution genuinely mounts.
    db = Database()
    lazy_ingest_metadata(db, small_env.repository)
    executor = TwoStageExecutor(
        db,
        RepositoryBinding(small_env.repository),
        derived=DerivedMetadataStore(db),
    )
    first = executor.execute(SUMMARY_SQL)
    assert not first.breakpoint.answered_from_derived
    second = benchmark.pedantic(
        lambda: executor.execute(SUMMARY_SQL), rounds=1, iterations=1
    )
    assert second.breakpoint.answered_from_derived
    expected = small_env.ei.execute(SUMMARY_SQL).rows()[0]
    for got in (first.rows[0], second.rows[0]):
        for g, e in zip(got, expected):
            assert g == pytest.approx(e)
    speedup = first.timings.total_seconds / max(
        second.timings.total_seconds, 1e-9
    )
    print(f"\nderived-metadata answer {speedup:.1f}x faster than mounting")
    assert second.timings.total_seconds < first.timings.total_seconds
