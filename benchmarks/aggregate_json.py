"""Fold per-benchmark ``--json`` envelopes into one ``bench_summary.json``.

Every benchmark script emits the shared envelope (see :mod:`bench_json`):
``{benchmark, generated_at, python, params, results}``. CI runs each smoke
with its own output file; this script gathers them into a single summary
artifact so a regression dashboard (or a human) reads one file per run
instead of chasing N artifacts::

    PYTHONPATH=src python benchmarks/aggregate_json.py \\
        --out bench_summary.json governor.json serve.json ...

The summary keys benchmarks by name, keeps each envelope verbatim, and
records which inputs were missing or unparsable — a bench that failed to
emit shows up as an entry in ``skipped``, not as a silently absent key.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Optional, Sequence


def aggregate(paths: Sequence[Path]) -> dict:
    benchmarks: dict[str, dict] = {}
    skipped: list[dict] = []
    for path in paths:
        try:
            envelope = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            skipped.append({"path": str(path), "reason": str(exc)})
            continue
        name = envelope.get("benchmark")
        if not isinstance(name, str) or "results" not in envelope:
            skipped.append(
                {"path": str(path), "reason": "not a benchmark envelope"}
            )
            continue
        if name in benchmarks:
            skipped.append(
                {"path": str(path), "reason": f"duplicate benchmark {name!r}"}
            )
            continue
        benchmarks[name] = envelope
    return {
        "benchmarks": {k: benchmarks[k] for k in sorted(benchmarks)},
        "skipped": skipped,
        "count": len(benchmarks),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Merge benchmark --json envelopes into one summary"
    )
    parser.add_argument(
        "inputs", nargs="+", metavar="ENVELOPE.json",
        help="per-benchmark envelope files (missing ones are recorded, "
        "not fatal)",
    )
    parser.add_argument(
        "--out", default="bench_summary.json", metavar="OUT",
        help="summary output path (default: %(default)s)",
    )
    parser.add_argument(
        "--require", type=int, default=None, metavar="N",
        help="exit 1 unless at least N envelopes aggregated cleanly",
    )
    args = parser.parse_args(argv)

    summary = aggregate([Path(p) for p in args.inputs])
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(
        f"aggregated {summary['count']} benchmark(s) into {out}"
        + (
            f" ({len(summary['skipped'])} skipped)"
            if summary["skipped"]
            else ""
        )
    )
    for entry in summary["skipped"]:
        print(f"  skipped {entry['path']}: {entry['reason']}")
    if args.require is not None and summary["count"] < args.require:
        print(
            f"FAIL: expected >={args.require} envelopes, "
            f"got {summary['count']}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
