"""Shared benchmark fixtures.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``tiny``, ``small``, or
``default`` (the default) before running ``pytest benchmarks/
--benchmark-only``. The ``default`` scale is the headline configuration
documented in EXPERIMENTS.md (120 files, ~5.2M samples); ``small`` and
``tiny`` exist for quick iteration.

Repositories are cached on disk between runs (they are deterministic);
databases are rebuilt per session.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import build_environment, default_spec, small_spec, tiny_spec

_SPECS = {
    "tiny": tiny_spec,
    "small": small_spec,
    "default": default_spec,
}


def _selected_spec():
    name = os.environ.get("REPRO_BENCH_SCALE", "default").lower()
    try:
        return _SPECS[name]()
    except KeyError:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be one of {sorted(_SPECS)}, got {name!r}"
        ) from None


@pytest.fixture(scope="session")
def env():
    """The headline benchmark environment (Ei + ALi over one repository)."""
    return build_environment(_selected_spec())


@pytest.fixture(scope="session")
def small_env():
    """A smaller environment for ablation benchmarks."""
    return build_environment(small_spec())
