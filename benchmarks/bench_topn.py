"""Experiment A10 — Top-N pushdown with early-terminating mounts.

The ``fuse-top-n`` pass turns ``ORDER BY sample_time … LIMIT k`` into a
first-class TopN node, and the executor's branch monitor uses the F table's
per-file time hulls to skip every union branch that provably cannot reach
the heap threshold — releasing its pending mount before a byte is read.
On the paper's "latest K readings" exploration pattern over a long archive,
only the newest file or two can contribute, so the exhaustive plan's mount
volume is almost entirely wasted: early termination should cut bytes
mounted (and stage-2 time) by >=10x at the headline scale, with
byte-identical answers.

Method: the same latest-K query runs cold with Top-N pushdown on and off,
each on a fresh metadata-only database with cold buffers and an empty
ingestion cache. Every file overlaps the (unbounded) time window, so file
pruning never fires — the branch monitor's hull threshold is the only
available lever.

Run as a script (CI smoke-checks ``--quick --json``)::

    PYTHONPATH=src python benchmarks/bench_topn.py --quick
    PYTHONPATH=src python benchmarks/bench_topn.py --json out.json

or through pytest (``pytest benchmarks/bench_topn.py -s``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional, Sequence

from bench_json import add_json_argument, maybe_emit_json
from repro.core import TwoStageExecutor
from repro.db import Database
from repro.harness.setup import materialize_repository
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec

# The latest 25 samples of the whole archive, newest first. No WHERE clause:
# every file is of interest, and only the hull threshold can prune.
LATEST_SQL = (
    "SELECT D.sample_time, D.sample_value "
    "FROM F JOIN D ON F.uri = D.uri "
    "ORDER BY D.sample_time DESC LIMIT 25"
)

HEADLINE_MIN_BYTES = 10.0
HEADLINE_MIN_SPEEDUP = 10.0
QUICK_MIN_BYTES = 5.0
QUICK_MIN_SKIPS = 8


def archive_spec() -> RepositorySpec:
    """One channel, 40 day-long files — the headline 'long archive' scale.

    The LIMIT fits inside the newest file, so ~97% of the branches are
    provably skippable.
    """
    return RepositorySpec(
        stations=("ISK",),
        channels=("BHE",),
        days=40,
        sample_rate=0.05,
        samples_per_record=1000,
    )


def quick_spec() -> RepositorySpec:
    """12 files — CI quick scale (seconds, not minutes)."""
    return RepositorySpec(
        stations=("ISK",),
        channels=("BHE",),
        days=12,
        sample_rate=0.05,
        samples_per_record=1000,
    )


@dataclass
class TopNRun:
    """One cold execution's mount/termination accounting."""

    pushdown: bool
    rows: list[tuple]
    files_mounted: int
    bytes_read: int
    early_terminated_branches: int
    early_cancelled_mounts: int
    stage2_seconds: float


def run_cold(repository: FileRepository, pushdown: bool) -> TopNRun:
    """Cold-run the latest-K query: fresh database, cache, and buffers."""
    db = Database()
    lazy_ingest_metadata(db, repository)
    executor = TwoStageExecutor(
        db,
        RepositoryBinding(repository),
        top_n_pushdown=pushdown,
    )
    db.make_cold()
    outcome = executor.execute(LATEST_SQL)
    stats = executor.mounts.stats
    return TopNRun(
        pushdown=pushdown,
        rows=outcome.rows,
        files_mounted=stats.mounts,
        bytes_read=stats.bytes_read,
        early_terminated_branches=stats.early_terminated_branches,
        early_cancelled_mounts=stats.early_cancelled_mounts,
        stage2_seconds=outcome.timings.stage2_seconds,
    )


def compare(repository: FileRepository) -> tuple[TopNRun, TopNRun]:
    """(exhaustive, pushdown) cold runs; verifies byte-identical answers."""
    exhaustive = run_cold(repository, pushdown=False)
    pushed = run_cold(repository, pushdown=True)
    if pushed.rows != exhaustive.rows:
        raise AssertionError(
            "Top-N pushdown changed the answer: exhaustive -> "
            f"{exhaustive.rows!r}, pushdown -> {pushed.rows!r}"
        )
    return exhaustive, pushed


def reductions(exhaustive: TopNRun, pushed: TopNRun) -> tuple[float, float]:
    """(bytes, stage-2 time) reduction of pushdown vs the exhaustive run."""
    bytes_x = (
        exhaustive.bytes_read / pushed.bytes_read
        if pushed.bytes_read
        else float("inf")
    )
    time_x = (
        exhaustive.stage2_seconds / pushed.stage2_seconds
        if pushed.stage2_seconds
        else float("inf")
    )
    return bytes_x, time_x


def render(exhaustive: TopNRun, pushed: TopNRun) -> str:
    lines = [
        f"{'pushdown':>10} {'files':>6} {'bytes read':>12} "
        f"{'terminated':>11} {'cancelled':>10} {'stage 2':>10}",
    ]
    for run in (exhaustive, pushed):
        lines.append(
            f"{('on' if run.pushdown else 'off'):>10} {run.files_mounted:>6} "
            f"{run.bytes_read:>12,} {run.early_terminated_branches:>11} "
            f"{run.early_cancelled_mounts:>10} "
            f"{run.stage2_seconds * 1000:>8.1f}ms"
        )
    bytes_x, time_x = reductions(exhaustive, pushed)
    lines.append(
        f"early termination mounts {bytes_x:.1f}x fewer payload bytes and "
        f"finishes stage 2 {time_x:.1f}x faster; answers byte-identical"
    )
    return "\n".join(lines)


def check(exhaustive: TopNRun, pushed: TopNRun, quick: bool) -> None:
    min_skips = QUICK_MIN_SKIPS if quick else 2 * QUICK_MIN_SKIPS
    assert pushed.early_terminated_branches >= min_skips, (
        f"expected >={min_skips} early-terminated branches, "
        f"got {pushed.early_terminated_branches}"
    )
    assert pushed.early_cancelled_mounts >= min_skips, (
        f"expected >={min_skips} cancelled mounts, "
        f"got {pushed.early_cancelled_mounts}"
    )
    assert exhaustive.early_terminated_branches == 0
    bytes_x, time_x = reductions(exhaustive, pushed)
    min_bytes = QUICK_MIN_BYTES if quick else HEADLINE_MIN_BYTES
    assert bytes_x >= min_bytes, (
        f"expected >={min_bytes}x fewer bytes mounted, got {bytes_x:.2f}x"
    )
    if not quick:
        # Timing is only asserted at the headline scale, where the ~40:1
        # extraction imbalance dwarfs scheduling noise.
        assert time_x >= HEADLINE_MIN_SPEEDUP, (
            f"expected >={HEADLINE_MIN_SPEEDUP}x faster stage 2, "
            f"got {time_x:.2f}x"
        )


# -- pytest entry points -------------------------------------------------------


def test_topn_quick():
    """Quick: identical answers, early-termination floor (12 files)."""
    repository = materialize_repository(quick_spec())
    exhaustive, pushed = compare(repository)
    print()
    print(render(exhaustive, pushed))
    check(exhaustive, pushed, quick=True)


def test_topn_headline():
    """Headline: >=10x fewer bytes and >=10x faster on a 40-file archive."""
    repository = materialize_repository(archive_spec())
    exhaustive, pushed = compare(repository)
    print()
    print(render(exhaustive, pushed))
    check(exhaustive, pushed, quick=False)


# -- script entry point --------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Top-N pushdown: early-terminating vs exhaustive mounts"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="12-file quick run (seconds); CI uses this",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)

    spec = quick_spec() if args.quick else archive_spec()
    repository = materialize_repository(spec)
    print(
        f"repository: {len(repository.uris())} files, "
        f"{repository.total_bytes():,} bytes"
    )
    exhaustive, pushed = compare(repository)
    print(render(exhaustive, pushed))
    bytes_x, time_x = reductions(exhaustive, pushed)
    maybe_emit_json(
        args.json,
        "topn_pushdown",
        params={
            "quick": args.quick,
            "files": len(repository.uris()),
            "repository_bytes": repository.total_bytes(),
            "sql": LATEST_SQL,
            "min_bytes_reduction": (
                QUICK_MIN_BYTES if args.quick else HEADLINE_MIN_BYTES
            ),
        },
        results={
            "runs": [exhaustive, pushed],
            "bytes_reduction": bytes_x,
            "stage2_speedup": time_x,
        },
    )
    try:
        check(exhaustive, pushed, quick=args.quick)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
