"""Experiment A8 — query governor overhead and cancellation latency.

The governor threads a checkpoint between every physical operator, a charge
into every extraction, and an event-based wait under every backoff — so the
question this benchmark answers is whether governance is free when nothing
fires. Method: the A6 parallel-mount workload (cold, whole-repository
aggregate) runs ungoverned (no budget — the executor still creates a
governor, but with nothing to enforce) and governed (a budget with huge
limits, so every checkpoint, ledger charge, and deadline timer is live but
never trips). Best-of-``runs`` wall times are compared; the governed run
must stay within 2% of baseline (asserted in non-quick mode and recorded in
the ``--json`` envelope either way).

The second measurement is cancellation latency: a query against a corpus
whose every read stalls (injected latency, wired to the query's token) is
cancelled from another thread; reported is the wall time from ``cancel()``
to the typed error surfacing — the number the event-based waits exist to
keep in the low milliseconds.

Run as a script (CI smoke-checks ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_governor.py --quick
    PYTHONPATH=src python benchmarks/bench_governor.py --runs 5 --json out.json
"""

from __future__ import annotations

import argparse
import threading
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from bench_json import add_json_argument, maybe_emit_json
from bench_parallel_mount import FULL_SQL, mount_heavy_spec, quick_spec
from repro.core import CancellationToken, QueryBudget, TwoStageExecutor
from repro.db import Database
from repro.db.errors import QueryCancelledError
from repro.harness.setup import materialize_repository
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository
from repro.testing import READ_LATENCY, FaultPlan, FaultSpec

OVERHEAD_CEILING = 0.02  # governed wall time may exceed baseline by <=2%

# A budget that never trips: every limit is live but absurdly high, so the
# measured cost is pure machinery (timer, checkpoints, ledger charges).
HUGE_BUDGET = QueryBudget(
    deadline_seconds=3600.0,
    max_mount_bytes=1 << 50,
    max_decoded_records=1 << 50,
)


@dataclass
class GovernedRun:
    """Best-of-N cold execution under one governance setting."""

    label: str
    wall_seconds: float  # wall CPU + simulated disk (repo convention)
    rows: list[tuple]


@dataclass
class CancellationRun:
    """One cancelled query: how long the cancel took to surface."""

    cancel_latency_seconds: float
    total_seconds: float


def _cold_executor(
    repository: FileRepository, workers: int
) -> TwoStageExecutor:
    db = Database()
    lazy_ingest_metadata(db, repository)
    executor = TwoStageExecutor(
        db, RepositoryBinding(repository), mount_workers=workers
    )
    db.make_cold()
    return executor


def run_workload(
    repository: FileRepository,
    workers: int,
    runs: int,
    budget: Optional[QueryBudget],
    label: str,
) -> GovernedRun:
    best: Optional[GovernedRun] = None
    for _ in range(runs):
        executor = _cold_executor(repository, workers)
        started = time.perf_counter()
        outcome = executor.execute(FULL_SQL, budget=budget)
        wall = (
            time.perf_counter() - started
            + outcome.result.io.simulated_seconds
        )
        run = GovernedRun(label=label, wall_seconds=wall, rows=outcome.rows)
        if best is None or run.wall_seconds < best.wall_seconds:
            best = run
    assert best is not None
    return best


def measure_overhead(
    repository: FileRepository, workers: int, runs: int
) -> tuple[GovernedRun, GovernedRun, float]:
    """(baseline, governed, relative overhead) on the A6 workload."""
    baseline = run_workload(repository, workers, runs, None, "ungoverned")
    governed = run_workload(
        repository, workers, runs, HUGE_BUDGET, "governed"
    )
    if governed.rows != baseline.rows:
        raise AssertionError(
            "governance changed the answer: "
            f"{baseline.rows!r} -> {governed.rows!r}"
        )
    overhead = (
        governed.wall_seconds - baseline.wall_seconds
    ) / baseline.wall_seconds
    return baseline, governed, overhead


def measure_cancellation(
    repository: FileRepository, workers: int, cancel_after: float = 0.05
) -> CancellationRun:
    """Cancel a latency-stalled query; report cancel-to-error latency."""
    executor = _cold_executor(repository, workers)
    token = CancellationToken()
    plan = FaultPlan(
        [
            FaultSpec(
                uri_suffix=uri,
                kind=READ_LATENCY,
                times=-1,
                delay_seconds=5.0,
            )
            for uri in repository.uris()
        ],
        interrupt=token,
    )
    cancelled_at: list[float] = []

    def fire() -> None:
        cancelled_at.append(time.perf_counter())
        token.cancel("benchmark cancellation")

    timer = threading.Timer(cancel_after, fire)
    started = time.perf_counter()
    timer.start()
    with plan.install():
        try:
            executor.execute(FULL_SQL, cancellation=token)
            raise AssertionError("cancelled query returned normally")
        except QueryCancelledError:
            surfaced_at = time.perf_counter()
    return CancellationRun(
        cancel_latency_seconds=surfaced_at - cancelled_at[0],
        total_seconds=surfaced_at - started,
    )


def render(
    baseline: GovernedRun,
    governed: GovernedRun,
    overhead: float,
    cancellation: CancellationRun,
) -> str:
    return "\n".join(
        [
            f"{'setting':>12} {'wall':>10}",
            f"{baseline.label:>12} {baseline.wall_seconds * 1000:>8.1f}ms",
            f"{governed.label:>12} {governed.wall_seconds * 1000:>8.1f}ms",
            f"governor overhead: {overhead * 100:+.2f}% "
            f"(ceiling {OVERHEAD_CEILING * 100:.0f}%)",
            f"cancellation latency: "
            f"{cancellation.cancel_latency_seconds * 1000:.1f}ms "
            f"(cancel() to typed error, mounts stalled 5s/read)",
        ]
    )


# -- pytest entry point --------------------------------------------------------


def test_governor_overhead_quick():
    """Smoke: identical answers, overhead measured, cancellation surfaces."""
    repository = materialize_repository(quick_spec())
    baseline, governed, overhead = measure_overhead(
        repository, workers=4, runs=2
    )
    cancellation = measure_cancellation(repository, workers=4)
    print()
    print(render(baseline, governed, overhead, cancellation))
    assert governed.rows == baseline.rows
    assert cancellation.cancel_latency_seconds < 1.0


# -- script entry point --------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Query governor: overhead when idle, latency when fired"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="8-file smoke run (no overhead assertion); CI uses this",
    )
    parser.add_argument("--workers", type=int, default=4, metavar="N")
    parser.add_argument("--runs", type=int, default=3)
    add_json_argument(parser)
    args = parser.parse_args(argv)

    spec = quick_spec() if args.quick else mount_heavy_spec()
    repository = materialize_repository(spec)
    print(
        f"repository: {len(repository.uris())} files, "
        f"{repository.total_bytes():,} bytes"
    )
    baseline, governed, overhead = measure_overhead(
        repository, args.workers, args.runs
    )
    cancellation = measure_cancellation(repository, args.workers)
    print(render(baseline, governed, overhead, cancellation))
    passed = overhead <= OVERHEAD_CEILING
    maybe_emit_json(
        args.json,
        "governor",
        params={
            "quick": args.quick,
            "workers": args.workers,
            "runs": args.runs,
            "files": len(repository.uris()),
            "sql": FULL_SQL,
            "overhead_ceiling": OVERHEAD_CEILING,
        },
        results={
            "baseline": baseline,
            "governed": governed,
            "overhead": overhead,
            "overhead_within_ceiling": passed,
            "cancellation": cancellation,
        },
    )
    if not args.quick and not passed:
        print(
            f"FAIL: governor overhead {overhead * 100:.2f}% exceeds the "
            f"{OVERHEAD_CEILING * 100:.0f}% ceiling"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
