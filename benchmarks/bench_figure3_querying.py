"""Experiment F3 — the paper's Figure 3: "Querying N files".

Eight bars: {Query 1, Query 2} × {Ei, ALi} × {COLD, HOT}. Cold runs flush
every buffer first (the paper restarts the server); hot runs pre-load
buffers by executing the same query beforehand. Reported seconds are wall
CPU plus simulated disk time (see DESIGN.md's disk-model substitution).

Run: ``pytest benchmarks/bench_figure3_querying.py --benchmark-only -s``
"""

import pytest

from repro.harness import render_figure3, run_figure3
from repro.harness.experiments import _execute_seconds
from repro.harness.reporting import render_figure3_chart


def _cold_setup(engine):
    def setup():
        db = engine.db if hasattr(engine, "db") else engine
        db.make_cold()
        return (), {}

    return setup


def _bench_query(benchmark, engine, sql, state):
    if state == "COLD":
        benchmark.pedantic(
            lambda: _execute_seconds(engine, sql),
            setup=_cold_setup(engine),
            rounds=3,
            iterations=1,
        )
    else:
        _execute_seconds(engine, sql)  # warm-up
        benchmark.pedantic(
            lambda: _execute_seconds(engine, sql), rounds=3, iterations=1
        )


@pytest.mark.parametrize("state", ["COLD", "HOT"])
@pytest.mark.parametrize("query_name", ["query1", "query2"])
def test_ei(env, benchmark, query_name, state):
    sql = getattr(env.queries, query_name)
    _bench_query(benchmark, env.ei, sql, state)


@pytest.mark.parametrize("state", ["COLD", "HOT"])
@pytest.mark.parametrize("query_name", ["query1", "query2"])
def test_ali(env, benchmark, query_name, state):
    sql = getattr(env.queries, query_name)
    _bench_query(benchmark, env.fresh_executor(), sql, state)


@pytest.mark.parametrize("query_name", ["query1", "query2"])
def test_ali_parallel_mounts(env, benchmark, query_name):
    """ALi COLD with stage 2 fanned out to 4 mount workers (experiment A6).

    Prints the per-worker mount accounting next to the Figure 3 bars: the
    serialized mount cost, the critical path the pool achieved, and the
    resulting mount-phase speedup. Query 1 mounts a single file, so its
    pool degrades to serial — the interesting row is Query 2.
    """
    sql = getattr(env.queries, query_name)
    engine = env.fresh_executor(mount_workers=4)
    _bench_query(benchmark, engine, sql, "COLD")
    report = env.fresh_executor(mount_workers=4)
    report.db.make_cold()
    timings = report.execute(sql).timings
    print()
    print(
        f"{query_name}: {timings.mount_files} mount(s) on "
        f"{timings.mount_workers} workers; serialized "
        f"{timings.mount_serial_seconds * 1000:.1f} ms, critical path "
        f"{timings.mount_wall_seconds * 1000:.1f} ms "
        f"({timings.mount_speedup:.2f}x); per-worker busy: "
        + ", ".join(
            f"w{worker}={seconds * 1000:.1f}ms"
            for worker, seconds in sorted(timings.mount_worker_seconds.items())
        )
    )


def test_figure3_report(env, benchmark):
    """Print the full figure and assert the paper's qualitative claims."""
    entries = benchmark.pedantic(run_figure3, args=(env,), kwargs={"runs": 3}, rounds=1, iterations=1)
    print()
    print(render_figure3(entries, len(env.repository)))
    print()
    print(render_figure3_chart(entries, len(env.repository)))
    by_key = {(e.query, e.system, e.state): e.seconds for e in entries}
    # "For cold runs, ALi definitely outperforms Ei for both queries."
    assert by_key[("Query 1", "ALi", "COLD")] < by_key[("Query 1", "Ei", "COLD")]
    assert by_key[("Query 2", "ALi", "COLD")] < by_key[("Query 2", "Ei", "COLD")]
    # The hot-run shape (ALi ahead on Query 1, roughly parity-or-behind on
    # Query 2 because its data of interest is much larger) depends on the
    # Ei scan cost exceeding a single file's mount cost — it only holds at
    # the documented headline scale, not on toy repositories.
    if len(env.repository) >= 100:
        q1_ratio = (
            by_key[("Query 1", "Ei", "HOT")] / by_key[("Query 1", "ALi", "HOT")]
        )
        q2_ratio = (
            by_key[("Query 2", "Ei", "HOT")] / by_key[("Query 2", "ALi", "HOT")]
        )
        assert q1_ratio > 1.0
        assert q2_ratio < 2.0
