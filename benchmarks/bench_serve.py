"""Experiment A9 — the service's shared-work win over independent sessions.

The acceptance question for the service layer is quantitative: when N
clients explore the *same* archive at the same time, how many bytes does the
shared mount scheduler keep off the disk relative to N scientists each
running their own session — without changing a single answer?

Method: :func:`repro.serve.driver.build_workload` builds N clients x Q
queries in the service's target regime (every client's q-th query touches
the same file; every client asks a distinct nested window, so no two
answers are equal). The workload runs twice:

* through one :class:`~repro.serve.QueryService` (one closed-loop thread
  per client, released together off a barrier), and
* as N independent sessions — fresh executor and private cache per client,
  nothing shared (:func:`~repro.serve.driver.run_standalone_baseline`).

Reported per configuration: service p50/p99 latency, standalone p50,
aggregate mounted bytes on both sides, the savings ratio, and the
scheduler's sharing/fairness counters. Non-quick mode asserts the
acceptance floor — every answer byte-identical and aggregate savings of at
least ``SAVINGS_FLOOR``x at N=8 — and exits 1 otherwise.

Run as a script (CI smoke-checks ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick
    PYTHONPATH=src python benchmarks/bench_serve.py --json out.json
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional, Sequence

from bench_json import add_json_argument, maybe_emit_json
from repro.harness.setup import materialize_repository, small_spec, tiny_spec
from repro.serve import ComparisonReport, QueryService, SchedulerPolicy, run_comparison

# Non-quick acceptance floor: the service must mount at most half the bytes
# of N independent sessions on the overlapping workload (the perfect-overlap
# limit at N=8 is 8x; 2x leaves headroom for scheduling accidents).
SAVINGS_FLOOR = 2.0
FULL_CLIENTS = 8
QUICK_CLIENTS = 4


@dataclass
class ServeRun:
    """One N-client configuration, measured both ways."""

    clients: int
    queries_per_client: int
    mount_workers: int
    throughput_bias: float
    identical: bool
    savings_ratio: float
    service_mount_bytes: int
    baseline_mount_bytes: int
    service_p50_ms: float
    service_p99_ms: float
    baseline_p50_ms: float
    service_wall_seconds: float
    baseline_wall_seconds: float
    shared_grants: int
    inline_steals: int
    starved_grants: int
    max_wait_ms: float
    cache_hits: int
    cache_hit_rate: float
    queries_shed: int


def summarize(report: ComparisonReport, mount_workers: int, bias: float) -> ServeRun:
    sched = report.service_stats.scheduler
    return ServeRun(
        clients=report.clients,
        queries_per_client=report.queries_per_client,
        mount_workers=mount_workers,
        throughput_bias=bias,
        identical=report.identical,
        savings_ratio=report.bytes_savings_ratio,
        service_mount_bytes=report.service.mount_bytes,
        baseline_mount_bytes=report.baseline.mount_bytes,
        service_p50_ms=report.service.percentile(50) * 1e3,
        service_p99_ms=report.service.percentile(99) * 1e3,
        baseline_p50_ms=report.baseline.percentile(50) * 1e3,
        service_wall_seconds=report.service.wall_seconds,
        baseline_wall_seconds=report.baseline.wall_seconds,
        shared_grants=sched.shared_grants,
        inline_steals=sched.inline_steals,
        starved_grants=sched.starved_grants,
        max_wait_ms=sched.max_wait_seconds * 1e3,
        cache_hits=report.service_stats.cache.hits,
        cache_hit_rate=report.service_stats.cache.hit_rate(),
        queries_shed=report.service_stats.queries_shed,
    )


def run_configuration(
    repository,
    spec,
    clients: int,
    queries_per_client: int,
    mount_workers: int,
    bias: float,
) -> tuple[ServeRun, ComparisonReport]:
    service = QueryService(
        repository,
        scheduler_policy=SchedulerPolicy(throughput_bias=bias),
        mount_workers=mount_workers,
    )
    try:
        report = run_comparison(
            repository,
            spec,
            clients=clients,
            queries_per_client=queries_per_client,
            service=service,
        )
    finally:
        service.close()
    return summarize(report, mount_workers, bias), report


def render(runs: list[ServeRun]) -> str:
    header = (
        f"{'clients':>7} {'bias':>5} {'p50':>9} {'p99':>9} {'alone p50':>10} "
        f"{'bytes':>12} {'alone':>12} {'saved':>7} {'shared':>7} {'ok':>3}"
    )
    lines = [header]
    for r in runs:
        lines.append(
            f"{r.clients:>7} {r.throughput_bias:>5.2f} "
            f"{r.service_p50_ms:>7.1f}ms {r.service_p99_ms:>7.1f}ms "
            f"{r.baseline_p50_ms:>8.1f}ms "
            f"{r.service_mount_bytes:>12,} {r.baseline_mount_bytes:>12,} "
            f"{r.savings_ratio:>6.2f}x {r.shared_grants:>7} "
            f"{'yes' if r.identical else 'NO':>3}"
        )
    return "\n".join(lines)


# -- pytest entry point --------------------------------------------------------


def test_serve_quick():
    """Smoke: identical answers and strict byte savings at small N."""
    spec = tiny_spec()
    repository = materialize_repository(spec)
    run, report = run_configuration(
        repository,
        spec,
        clients=QUICK_CLIENTS,
        queries_per_client=2,
        mount_workers=2,
        bias=0.7,
    )
    print()
    print(render([run]))
    assert run.identical, f"answers diverged: {report.mismatches[:5]}"
    assert run.service_mount_bytes < run.baseline_mount_bytes
    assert run.queries_shed == 0


# -- script entry point --------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Shared-work service vs N independent sessions"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny repository, 4 clients, no savings-floor assertion; "
        "CI uses this",
    )
    parser.add_argument(
        "--clients", type=int, default=None, metavar="N",
        help=f"override the client count (default: {FULL_CLIENTS}, "
        f"quick: {QUICK_CLIENTS})",
    )
    parser.add_argument("--queries-per-client", type=int, default=3)
    parser.add_argument("--mount-workers", type=int, default=2, metavar="N")
    add_json_argument(parser)
    args = parser.parse_args(argv)

    spec = tiny_spec() if args.quick else small_spec()
    clients = args.clients or (QUICK_CLIENTS if args.quick else FULL_CLIENTS)
    queries = 2 if args.quick else args.queries_per_client
    repository = materialize_repository(spec)
    print(
        f"repository: {len(repository.uris())} files, "
        f"{repository.total_bytes():,} bytes"
    )

    # The fairness knob's two ends plus the shipped default: savings should
    # survive the whole range (sharing comes from the batch window and the
    # cache, not from any particular bias).
    biases = [0.7] if args.quick else [0.0, 0.7, 1.0]
    runs: list[ServeRun] = []
    reports: list[ComparisonReport] = []
    for bias in biases:
        run, report = run_configuration(
            repository,
            spec,
            clients=clients,
            queries_per_client=queries,
            mount_workers=args.mount_workers,
            bias=bias,
        )
        runs.append(run)
        reports.append(report)
    print(render(runs))
    print()
    print(reports[-1].service_stats.describe())

    identical = all(r.identical for r in runs)
    floor_met = all(r.savings_ratio >= SAVINGS_FLOOR for r in runs)
    maybe_emit_json(
        args.json,
        "serve",
        params={
            "quick": args.quick,
            "clients": clients,
            "queries_per_client": queries,
            "mount_workers": args.mount_workers,
            "biases": biases,
            "files": len(repository.uris()),
            "savings_floor": SAVINGS_FLOOR,
        },
        results={
            "runs": runs,
            "identical": identical,
            "floor_met": floor_met,
        },
    )
    if not identical:
        print("FAIL: service answers diverged from independent sessions")
        return 1
    if not args.quick and not floor_met:
        print(
            f"FAIL: byte savings below the {SAVINGS_FLOOR:.1f}x floor: "
            f"{[round(r.savings_ratio, 2) for r in runs]}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
