"""Experiment T1 — the paper's Table 1: "Dataset and sizes".

Regenerates the records-per-table counts and the four storage footprints
(mSEED repository, database without indexes, +keys, ALi metadata), and
benchmarks the two up-front ingestion paths that produce them.

Run: ``pytest benchmarks/bench_table1_sizes.py --benchmark-only -s``
"""

from repro.db import Database
from repro.harness import render_table1, run_table1
from repro.ingest import eager_ingest, lazy_ingest_metadata


def test_table1_report(env, benchmark):
    """Print the Table 1 row; the benchmarked body is the size accounting."""
    row = benchmark(run_table1, env)
    print()
    print(render_table1(row))
    # The paper's shape: decompressed DB storage dwarfs the compressed
    # repository; ALi's metadata is orders of magnitude smaller than both.
    assert row.monetdb_bytes > 2 * row.mseed_bytes
    assert row.ali_bytes * 100 < row.monetdb_bytes + row.keys_bytes


def test_eager_ingest_ei(env, benchmark):
    """Ei's up-front cost: full parse + decompress + index build."""

    def load():
        db = Database()
        return eager_ingest(db, env.repository)

    report = benchmark.pedantic(load, rounds=1, iterations=1)
    print(
        f"\nEi load {report.load_seconds:.3f}s + indexes "
        f"{report.index_seconds:.3f}s over {report.files} files / "
        f"{report.samples:,} samples"
    )


def test_lazy_ingest_ali(env, benchmark):
    """ALi's up-front cost: header-only metadata load."""

    def load():
        db = Database()
        return lazy_ingest_metadata(db, env.repository)

    report = benchmark.pedantic(load, rounds=3, iterations=1)
    print(
        f"\nALi metadata load {report.load_seconds:.3f}s over "
        f"{report.files} files ({report.metadata_bytes:,} bytes loaded)"
    )
