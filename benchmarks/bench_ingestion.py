"""Experiment X1 — §4's up-front ingestion claims.

* "up-front ingestion time is reduced by orders of magnitude" (Ei total vs
  ALi metadata-only),
* index building is a multiple of loading time,
* "ALi provides more space-efficiency".

Run: ``pytest benchmarks/bench_ingestion.py --benchmark-only -s``
"""

from repro.db import Database
from repro.harness import ingestion_report
from repro.harness.reporting import render_ingestion
from repro.ingest import eager_ingest


def test_ingestion_report(env, benchmark):
    report = benchmark.pedantic(ingestion_report, args=(env,), rounds=1, iterations=1)
    print()
    print(render_ingestion(report))
    assert report.speedup > 3, "initialization speedup should be large"
    assert report.space_ratio > 50
    assert report.ei_index_seconds > 0
    if len(env.repository) >= 100:
        # "reduced by orders of magnitude" holds at the headline scale.
        assert report.speedup > 25
        assert report.space_ratio > 1000


def test_index_build_cost(env, benchmark):
    """Index construction alone — the dominant share of Ei's up-front cost."""
    loaded = Database()
    eager_ingest(loaded, env.repository, build_indexes=False)

    def build():
        # Rebuild from scratch each round: drop then recreate.
        loaded.catalog._indexes.clear()
        for table in ("F", "R", "D"):
            loaded.build_key_indexes(table)

    benchmark.pedantic(build, rounds=2, iterations=1)


def test_metadata_scan_scales_with_records_not_samples(env, benchmark):
    """Header-only scans cost O(records); verify by timing one pass."""
    from repro.ingest import default_registry

    registry = default_registry()

    def scan_all():
        total = 0
        for uri in env.repository.uris():
            path = env.repository.path_of(uri)
            extracted = registry.for_path(path).extract_metadata(path, uri)
            total += len(extracted.record_rows)
        return total

    records = benchmark.pedantic(scan_all, rounds=3, iterations=1)
    assert records == env.ali_report.records
