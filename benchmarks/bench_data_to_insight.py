"""Experiment X3 — data-to-insight time over a whole exploration session.

§1's headline problem: "current database technology has a long
data-to-insight time". This bench plays the same exploration sequence
(quick look → zooms → moves) through both worlds and compares:

* data-to-insight = setup (ingestion) + first query answer,
* total session time = setup + whole query sequence.

Run: ``pytest benchmarks/bench_data_to_insight.py --benchmark-only -s``
"""

import time

from repro.db import Database
from repro.explore import ExplorationSession, random_exploration
from repro.ingest import RepositoryBinding, eager_ingest, lazy_ingest_metadata
from repro.core import TwoStageExecutor

STEPS = 12


def _exploration(env):
    return random_exploration(
        list(env.spec.stations),
        list(env.spec.channels),
        env.spec.start_day,
        env.spec.days,
        STEPS,
        seed=42,
    )


def _run_session(engine, setup_seconds, steps):
    session = ExplorationSession(engine, setup_seconds=setup_seconds)
    for step in steps:
        session.run(step.sql, note=step.kind.value)
    return session


def test_session_comparison(env, benchmark):
    steps = _exploration(env)

    def ei_world():
        started = time.perf_counter()
        ei = Database()
        eager_ingest(ei, env.repository)
        ei_setup = time.perf_counter() - started
        return _run_session(ei, ei_setup, steps)

    ei_session = benchmark.pedantic(ei_world, rounds=1, iterations=1)

    started = time.perf_counter()
    ali = Database()
    lazy_ingest_metadata(ali, env.repository)
    ali_setup = time.perf_counter() - started
    executor = TwoStageExecutor(ali, RepositoryBinding(env.repository))
    ali_session = _run_session(executor, ali_setup, steps)

    print()
    print(f"{'':14} {'Ei':>10} {'ALi':>10}")
    print(
        f"{'setup':14} {ei_session.setup_seconds:>10.3f} "
        f"{ali_session.setup_seconds:>10.3f}"
    )
    print(
        f"{'1st insight':14} {ei_session.data_to_insight_seconds:>10.3f} "
        f"{ali_session.data_to_insight_seconds:>10.3f}"
    )
    print(
        f"{'whole session':14} {ei_session.total_seconds:>10.3f} "
        f"{ali_session.total_seconds:>10.3f}"
    )

    # The paper's point: the first insight arrives much earlier with ALi.
    assert (
        ali_session.data_to_insight_seconds
        < ei_session.data_to_insight_seconds
    )


def test_ei_session_queries_only(env, benchmark):
    steps = _exploration(env)
    benchmark.pedantic(
        lambda: _run_session(env.ei, 0.0, steps), rounds=2, iterations=1
    )


def test_ali_session_queries_only(env, benchmark):
    steps = _exploration(env)

    def run():
        executor = env.fresh_executor()
        return _run_session(executor, 0.0, steps)

    benchmark.pedantic(run, rounds=2, iterations=1)
