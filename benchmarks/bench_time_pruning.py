"""Experiment A5 — metadata time-span pruning ("extending metadata", §5).

A query constraining only ``D.sample_time`` has no metadata predicate in
``Qf``; without further exploitation every repository file would be of
interest. Using the file-level time spans already sitting in ``F`` prunes
the set to the files whose span overlaps the query window — pure metadata
work that turns a worst-case query into a targeted one.

Run: ``pytest benchmarks/bench_time_pruning.py --benchmark-only -s``
"""

import pytest

from repro.core import TwoStageExecutor
from repro.db import Database
from repro.ingest import RepositoryBinding, lazy_ingest_metadata


def _window_sql(env, hours=1):
    day = env.queries.day
    return (
        "SELECT COUNT(*) FROM D "
        f"WHERE sample_time > '{day}T10:00:00' "
        f"AND sample_time < '{day}T{10 + hours}:00:00'"
    )


def _executor(env, prune):
    db = Database()
    lazy_ingest_metadata(db, env.repository)
    return TwoStageExecutor(
        db, RepositoryBinding(env.repository, prune_by_time=prune)
    )


@pytest.mark.parametrize("prune", [False, True], ids=["off", "on"])
def test_time_only_query(small_env, benchmark, prune):
    executor = _executor(small_env, prune)
    sql = _window_sql(small_env)
    benchmark.pedantic(lambda: executor.execute(sql), rounds=2, iterations=1)


def test_pruning_report(small_env, benchmark):
    sql = _window_sql(small_env)
    on = _executor(small_env, True)
    off = _executor(small_env, False)
    outcome_on = benchmark.pedantic(
        lambda: on.execute(sql), rounds=1, iterations=1
    )
    outcome_off = off.execute(sql)
    print(
        f"\nwithout pruning: {outcome_off.breakpoint.n_files} files mounted; "
        f"with pruning: {outcome_on.breakpoint.n_files} "
        f"({outcome_on.breakpoint.pruned_by_time} pruned via F time spans)"
    )
    assert outcome_on.rows == outcome_off.rows
    assert outcome_on.breakpoint.n_files < outcome_off.breakpoint.n_files
    # One day's files out of the whole repository.
    per_day = len(small_env.spec.stations) * len(small_env.spec.channels)
    assert outcome_on.breakpoint.n_files == per_day
