"""Experiment A2 — cache policy and granularity trade-offs (§3/§5).

"While caching ingested data might avoid repeated mounting of the same
files, the chosen approach inherently ensures up-to-date data. These
require a detailed study" — this bench is that study: a repeated/overlapping
zoom workload runs under {discard, LRU, unbounded} × {file, tuple}
granularity, reporting hit rates and total time.

Run: ``pytest benchmarks/bench_cache_policies.py --benchmark-only -s``
"""

import pytest

from repro.core import CacheGranularity, CachePolicy, IngestionCache
from repro.db.types import format_timestamp, parse_timestamp
from repro.explore.workload import make_query2


def _zoom_workload(env, repeats=3):
    """Overlapping zooms into one station-day — the cache-friendly pattern
    of real exploration (revisiting the same files with narrowing windows)."""
    day = env.queries.day
    base = parse_timestamp(day) + 20 * 3600 * 1_000_000
    queries = []
    for _ in range(repeats):
        for width_minutes in (120, 60, 30, 15):
            lo = base
            hi = base + width_minutes * 60 * 1_000_000
            queries.append(
                make_query2(
                    "ISK", day, format_timestamp(lo), format_timestamp(hi)
                )
            )
    return queries


CONFIGS = [
    pytest.param(CachePolicy.DISCARD, CacheGranularity.FILE, None,
                 id="discard"),
    pytest.param(CachePolicy.UNBOUNDED, CacheGranularity.FILE, None,
                 id="unbounded-file"),
    pytest.param(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE, None,
                 id="unbounded-tuple"),
    pytest.param(CachePolicy.LRU, CacheGranularity.FILE, 50_000_000,
                 id="lru-file"),
    pytest.param(CachePolicy.LRU, CacheGranularity.TUPLE, 50_000_000,
                 id="lru-tuple"),
]


@pytest.mark.parametrize("policy,granularity,capacity", CONFIGS)
def test_cache_config(small_env, benchmark, policy, granularity, capacity):
    queries = _zoom_workload(small_env)

    def run():
        cache = IngestionCache(policy, granularity, capacity)
        executor = small_env.fresh_executor(cache=cache)
        for sql in queries:
            executor.execute(sql)
        return executor

    executor = benchmark.pedantic(run, rounds=2, iterations=1)
    stats = executor.mounts.stats
    print(
        f"\n{policy.value}/{granularity.value}: "
        f"{stats.mounts} mounts, {stats.cache_scans} cache-scans, "
        f"lookup hit rate {executor.cache.stats.hit_rate():.1%}, "
        f"cache {executor.cache.stats.current_bytes:,} bytes"
    )


def test_caching_reduces_mounts(small_env, benchmark):
    queries = _zoom_workload(small_env)

    def mounts_under(policy, granularity=CacheGranularity.FILE):
        executor = small_env.fresh_executor(
            cache=IngestionCache(policy, granularity)
        )
        for sql in queries:
            executor.execute(sql)
        return executor.mounts.stats.mounts

    discard = benchmark.pedantic(
        mounts_under, args=(CachePolicy.DISCARD,), rounds=1, iterations=1
    )
    unbounded = mounts_under(CachePolicy.UNBOUNDED)
    assert unbounded < discard
    # With a warm unbounded cache, each file mounts exactly once.
    assert unbounded == 3  # ISK has 3 channel-files on that day


def test_tuple_cache_narrowing_zooms_hit(small_env, benchmark):
    """Narrowing zooms are covered by the first (wider) interval, so the
    tuple-granular cache serves every repeat from memory."""
    queries = _zoom_workload(small_env, repeats=1)
    executor = small_env.fresh_executor(
        cache=IngestionCache(CachePolicy.UNBOUNDED, CacheGranularity.TUPLE)
    )

    def run_all():
        for sql in queries:
            executor.execute(sql)

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    stats = executor.mounts.stats
    assert stats.cache_scans > 0
    assert stats.mounts == 3
