"""Engine micro-benchmarks: the substrate costs behind the experiments.

Not a paper artifact, but the knobs EXPERIMENTS.md cites when explaining
where time goes: Steim codec throughput, header-only scan vs full parse,
hash-join and aggregation kernels.

Run: ``pytest benchmarks/bench_engine_microbench.py --benchmark-only -s``
"""

import numpy as np
import pytest

from repro.ingest import default_registry
from repro.mseed import scan_headers, steim_decode, steim_encode
from repro.mseed.volume import read_records


@pytest.fixture(scope="module")
def waveform():
    rng = np.random.default_rng(0)
    return np.cumsum(rng.integers(-8, 8, 500_000)).astype(np.int32)


def test_steim_encode(benchmark, waveform):
    payload = benchmark(steim_encode, waveform)
    ratio = waveform.nbytes / len(payload)
    print(f"\ncompression ratio {ratio:.2f}x on AR noise")


def test_steim_decode(benchmark, waveform):
    payload = steim_encode(waveform)
    decoded = benchmark(steim_decode, payload, len(waveform))
    assert np.array_equal(decoded, waveform)


def test_header_scan_vs_full_parse(env, benchmark):
    """The asymmetry ALi exploits: headers are ~100x cheaper than payloads."""
    uri = env.repository.uris()[0]
    path = env.repository.path_of(uri)
    benchmark(scan_headers, path)


def test_full_parse(env, benchmark):
    uri = env.repository.uris()[0]
    path = env.repository.path_of(uri)
    benchmark(read_records, path)


def test_mount_one_file(env, benchmark):
    uri = env.repository.uris()[0]
    path = env.repository.path_of(uri)
    extractor = default_registry().for_path(path)
    benchmark(extractor.mount, path, uri)


def test_hash_join_kernel(env, benchmark):
    """R ⋈ D style join over the eagerly loaded database (hot)."""
    env.ei.warm_all()
    sql = (
        "SELECT COUNT(*) FROM R JOIN D "
        "ON R.uri = D.uri AND R.record_id = D.record_id "
        "WHERE R.record_id = 0"
    )
    benchmark.pedantic(lambda: env.ei.execute(sql), rounds=3, iterations=1)


def test_aggregation_kernel(env, benchmark):
    env.ei.warm_all()
    sql = "SELECT uri, AVG(sample_value) FROM D GROUP BY uri"
    benchmark.pedantic(lambda: env.ei.execute(sql), rounds=3, iterations=1)
