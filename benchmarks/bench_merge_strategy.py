"""Experiment A1 — §3's run-time optimization choice.

"(a) merge the actual data taken from each file into comprehensive table(s)
and then apply the higher operators in bulk fashion or (b) run higher
operators on sub-tables and then merge the results."

Both strategies are benchmarked on an aggregation whose data of interest
spans many files. Both must return the same answer.

Run: ``pytest benchmarks/bench_merge_strategy.py --benchmark-only -s``
"""

import pytest

from repro.core import BULK, PER_FILE


AGG_SQL = (
    "SELECT F.channel, AVG(D.sample_value) AS a, COUNT(*) AS n "
    "FROM F JOIN D ON F.uri = D.uri GROUP BY F.channel ORDER BY F.channel"
)


@pytest.mark.parametrize("strategy", [BULK, PER_FILE])
def test_strategy(small_env, benchmark, strategy):
    executor = small_env.fresh_executor(strategy=strategy)
    benchmark.pedantic(
        lambda: executor.execute(AGG_SQL), rounds=3, iterations=1
    )


def test_strategies_agree(small_env, benchmark):
    bulk = benchmark.pedantic(
        lambda: small_env.fresh_executor(strategy=BULK).execute(AGG_SQL),
        rounds=1, iterations=1,
    )
    per_file = small_env.fresh_executor(strategy=PER_FILE).execute(AGG_SQL)
    assert bulk.rows == pytest.approx(per_file.rows)
    print(f"\n{len(bulk.breakpoint.files_of_interest)} files aggregated; "
          f"strategies agree on {bulk.rows}")


def test_per_file_peak_memory_is_smaller(small_env, benchmark):
    """Strategy (b)'s advantage: it never materializes the merged table.

    Verified structurally: per-file execution joins at most one file's
    tuples at a time, so the maximum rows flowing through a single join is
    bounded by the largest file, not the union.
    """
    bulk = small_env.fresh_executor(strategy=BULK).execute(AGG_SQL)
    per_file = benchmark.pedantic(
        lambda: small_env.fresh_executor(strategy=PER_FILE).execute(AGG_SQL),
        rounds=1, iterations=1,
    )
    # Same number of tuples mounted either way…
    assert (
        bulk.result.stats.files_mounted == per_file.result.stats.files_mounted
    )
    # …but bulk runs far fewer (larger) operators.
    assert per_file.result.stats.operators_run > bulk.result.stats.operators_run
