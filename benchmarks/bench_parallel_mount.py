"""Experiment A6 — parallel stage-2 mounting with :class:`MountPool`.

Stage 2 mounts every file of interest; rule (1) makes those mounts
independent, so fanning them out to a worker pool shrinks the mount phase
to its critical path. This benchmark measures exactly that, on a
seek-dominated repository (many small files, where the disk model's 8 ms
seek is the bulk of every mount) — the regime the paper's 5,000-file
station archives live in.

Method: one whole-repository aggregate (its files of interest are *all*
files) runs cold at ``mount_workers=1`` and ``mount_workers=N``. Reported
times follow the repo-wide convention (wall CPU + simulated disk seconds,
see DESIGN.md): the serial figure charges the mounts end-to-end, the
parallel figure charges the busiest worker's chain (the critical path),
both straight from :class:`~repro.core.executor.StageTimings`. Results
must be byte-identical across worker counts.

Run as a script (CI smoke-checks ``--quick``)::

    PYTHONPATH=src python benchmarks/bench_parallel_mount.py --quick
    PYTHONPATH=src python benchmarks/bench_parallel_mount.py --workers 4 --runs 3

or through pytest (``pytest benchmarks/bench_parallel_mount.py -s``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional, Sequence

from bench_json import add_json_argument, maybe_emit_json
from repro.core import TwoStageExecutor
from repro.db import Database
from repro.harness.setup import materialize_repository
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import FileRepository, RepositorySpec

# Seek-dominated scales: short windows of sparse samples keep files small,
# so the per-file 8 ms simulated seek dominates extraction and the mount
# phase parallelizes close to ideally.
FULL_SQL = (
    "SELECT F.station, COUNT(*) AS n, AVG(D.sample_value) AS a "
    "FROM F JOIN D ON F.uri = D.uri GROUP BY F.station ORDER BY F.station"
)


def mount_heavy_spec() -> RepositorySpec:
    """60 small files — the headline scale for this experiment."""
    return RepositorySpec(
        stations=("ISK", "ANK", "IZM", "EDC", "KDZ"),
        channels=("BHE", "BHN", "BHZ"),
        days=4,
        sample_rate=0.02,
        samples_per_record=500,
    )


def quick_spec() -> RepositorySpec:
    """8 files — CI smoke scale (seconds, not minutes)."""
    return RepositorySpec(
        stations=("ISK", "ANK"),
        channels=("BHE", "BHN"),
        days=2,
        sample_rate=0.02,
        samples_per_record=500,
    )


@dataclass
class MountRun:
    """One cold execution's mount-phase accounting."""

    workers: int
    rows: list[tuple]
    files: int
    serial_seconds: float  # sum of every mount's (extract + simulated io)
    wall_seconds: float  # critical path: the busiest worker's chain
    workers_used: int

    @property
    def speedup(self) -> float:
        return self.serial_seconds / self.wall_seconds if self.wall_seconds else 1.0


def run_cold_mounts(
    repository: FileRepository, workers: int, runs: int = 1
) -> MountRun:
    """Cold-run the whole-repository aggregate; keep the best-of-``runs``.

    Every run gets a fresh metadata-only database and executor (empty
    ingestion cache, cold buffers), so stage 2 mounts every file.
    """
    best: Optional[MountRun] = None
    for _ in range(runs):
        db = Database()
        lazy_ingest_metadata(db, repository)
        executor = TwoStageExecutor(
            db, RepositoryBinding(repository), mount_workers=workers
        )
        db.make_cold()
        outcome = executor.execute(FULL_SQL)
        timings = outcome.timings
        run = MountRun(
            workers=workers,
            rows=outcome.rows,
            files=timings.mount_files,
            serial_seconds=timings.mount_serial_seconds,
            wall_seconds=timings.mount_wall_seconds,
            workers_used=len(timings.mount_worker_seconds),
        )
        if best is None or run.wall_seconds < best.wall_seconds:
            best = run
    assert best is not None
    return best


def compare(
    repository: FileRepository, workers: int, runs: int
) -> tuple[MountRun, MountRun]:
    serial = run_cold_mounts(repository, workers=1, runs=runs)
    parallel = run_cold_mounts(repository, workers=workers, runs=runs)
    if parallel.rows != serial.rows:
        raise AssertionError(
            "parallel mounting changed the answer: "
            f"workers=1 -> {serial.rows!r}, workers={workers} -> {parallel.rows!r}"
        )
    return serial, parallel


def render(serial: MountRun, parallel: MountRun) -> str:
    lines = [
        f"{'workers':>8} {'files':>6} {'serialized':>12} "
        f"{'critical path':>14} {'speedup':>8}",
    ]
    for run in (serial, parallel):
        lines.append(
            f"{run.workers:>8} {run.files:>6} "
            f"{run.serial_seconds * 1000:>10.1f}ms "
            f"{run.wall_seconds * 1000:>12.1f}ms "
            f"{run.speedup:>7.2f}x"
        )
    lines.append(
        f"results byte-identical across worker counts; parallel run used "
        f"{parallel.workers_used} worker thread(s)"
    )
    return "\n".join(lines)


# -- pytest entry points -------------------------------------------------------


def test_parallel_mount_quick():
    """Smoke: identical answers, timing fields populated (8 files)."""
    repository = materialize_repository(quick_spec())
    serial, parallel = compare(repository, workers=4, runs=1)
    assert serial.files == len(repository.uris())
    assert parallel.files == serial.files
    assert parallel.wall_seconds > 0
    print()
    print(render(serial, parallel))


def test_parallel_mount_speedup():
    """Headline: >=2x mount-phase speedup at 4 workers on 60 small files."""
    repository = materialize_repository(mount_heavy_spec())
    serial, parallel = compare(repository, workers=4, runs=2)
    print()
    print(render(serial, parallel))
    assert parallel.speedup >= 2.0, (
        f"expected >=2x mount speedup at 4 workers, got {parallel.speedup:.2f}x"
    )


# -- script entry point --------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Parallel stage-2 mounting: serial vs worker-pool"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="8-file smoke run (no speedup assertion); CI uses this",
    )
    parser.add_argument("--workers", type=int, default=4, metavar="N")
    parser.add_argument("--runs", type=int, default=2)
    add_json_argument(parser)
    args = parser.parse_args(argv)

    spec = quick_spec() if args.quick else mount_heavy_spec()
    repository = materialize_repository(spec)
    print(
        f"repository: {len(repository.uris())} files, "
        f"{repository.total_bytes():,} bytes"
    )
    serial, parallel = compare(repository, args.workers, args.runs)
    print(render(serial, parallel))
    maybe_emit_json(
        args.json,
        "parallel_mount",
        params={
            "quick": args.quick,
            "workers": args.workers,
            "runs": args.runs,
            "files": len(repository.uris()),
            "repository_bytes": repository.total_bytes(),
            "sql": FULL_SQL,
        },
        results={
            "serial": serial,
            "parallel": parallel,
            "speedup": parallel.speedup,
        },
    )
    if not args.quick and parallel.speedup < 2.0:
        print(f"FAIL: speedup {parallel.speedup:.2f}x below the 2x floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
