"""Experiment A11 — the remote backend's three quantitative claims.

1. **Ranged GETs**: on a narrow time window, the selective mount path
   moves at least ``MIN_RANGED_REDUCTION``x fewer remote bytes than
   whole-object staging — byte maps turn into HTTP-style range requests,
   so a 30-minute look at a day-long file stops downloading the day.
2. **Hedged reads**: under a heavy-tailed latency distribution, hedged
   backup requests cut the p99 GET wall time by at least
   ``MIN_HEDGE_P99_CUT``x — the backup almost never draws the tail twice.
3. **Resilience overhead**: the always-on resilience stack (retry
   ladder, retry budget, circuit breaker) costs at most
   ``MAX_OVERHEAD_FRACTION`` extra wall time on a fault-free run vs the
   bare single-attempt transport — insurance that is free until it pays.

Answers are asserted byte-identical across every configuration: the
transport is a performance/availability lever, never a semantics lever.

Run as a script (CI smoke-checks ``--quick --json``)::

    PYTHONPATH=src python benchmarks/bench_remote.py --quick
    PYTHONPATH=src python benchmarks/bench_remote.py --json out.json

or through pytest (``pytest benchmarks/bench_remote.py -s``).
"""

from __future__ import annotations

import argparse
import statistics
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from bench_json import add_json_argument, maybe_emit_json
from repro.core import TwoStageExecutor
from repro.core.metastore import MetadataStore
from repro.db import Database
from repro.db.types import format_timestamp, parse_timestamp
from repro.harness.setup import materialize_repository
from repro.ingest import RepositoryBinding, lazy_ingest_metadata
from repro.mseed import RepositorySpec
from repro.remote import (
    NetworkProfile,
    RemoteRepository,
    ResilientTransport,
    SimulatedObjectStore,
    TransportPolicy,
)

MIN_RANGED_REDUCTION = 5.0  # whole/ranged remote-bytes ratio floor
MIN_HEDGE_P99_CUT = 2.0  # p99(no hedge) / p99(hedged) floor
MAX_OVERHEAD_FRACTION = 0.02  # fault-free resilience tax ceiling

_MINUTE_US = 60 * 1_000_000

# Heavy-tailed link for the hedging duel: 2 ms baseline, 5% of requests
# take 40 ms. Drawn deterministically from the seed, so both arms of the
# duel face the same weather. The tail probability must sit below the
# hedge percentile's complement (here 10%), or the latency tracker's
# baseline *is* the tail and backups never arm.
HEAVY_TAIL_PROFILE = NetworkProfile(
    latency_seconds=0.002,
    heavy_tail_probability=0.05,
    heavy_tail_multiplier=20.0,
)


def dense_spec() -> RepositorySpec:
    """9 day-long files x 96 records: narrow windows leave most untouched."""
    return RepositorySpec(
        stations=("ISK", "ANK", "IZM"),
        channels=("BHZ",),
        days=3,
        sample_rate=0.5,
        samples_per_record=450,
    )


def quick_spec() -> RepositorySpec:
    """2 day-long files — CI smoke scale (seconds, not minutes)."""
    return RepositorySpec(
        stations=("ISK", "ANK"),
        channels=("BHZ",),
        days=1,
        sample_rate=0.5,
        samples_per_record=450,
    )


def _narrow_sql(spec: RepositorySpec) -> str:
    """A 30-minute look into day-long files: the explorer's query shape."""
    day_us = parse_timestamp(spec.start_day)
    lo = day_us + 600 * _MINUTE_US
    hi = lo + 30 * _MINUTE_US
    return (
        "SELECT F.station, COUNT(*) AS n, SUM(D.sample_value) AS s "
        "FROM F JOIN D ON F.uri = D.uri "
        f"WHERE D.sample_time >= '{format_timestamp(lo)}' "
        f"AND D.sample_time < '{format_timestamp(hi)}' "
        "GROUP BY F.station ORDER BY F.station"
    )


def _harvest_metadata(objects_dir: Path, workdir: Path) -> Path:
    """Session 1: walk the endpoint once, persist the positional metadata.

    Every later session reuses these rows, so its first answer hits the
    endpoint cold — exactly the regime where ranged GETs pay off.
    """
    path = workdir / "metastore.json"
    store = SimulatedObjectStore("seis-eu", objects_dir)
    repo = RemoteRepository(store, workdir / "harvest_staging")
    db = Database()
    lazy_ingest_metadata(db, repo, metastore=MetadataStore(path))
    return path


# -- claim 1: ranged GETs vs whole-object staging ------------------------------


@dataclass
class RemoteRun:
    """One fresh-session query against a cold staging area."""

    mode: str  # "whole" | "ranged"
    rows: list[tuple]
    remote_bytes: int
    ranged_gets: int
    whole_fetches: int
    wall_seconds: float


def _fresh_session(
    objects_dir: Path,
    workdir: Path,
    metastore_path: Path,
    sql: str,
    mode: str,
    selective: bool,
    policy: Optional[TransportPolicy] = None,
    profile: Optional[NetworkProfile] = None,
) -> RemoteRun:
    store = SimulatedObjectStore(
        "seis-eu", objects_dir, profile=profile or NetworkProfile()
    )
    staging = Path(tempfile.mkdtemp(prefix=f"{mode}-", dir=workdir))
    repo = RemoteRepository(store, staging, policy=policy or TransportPolicy())
    metastore = MetadataStore(metastore_path)
    metastore.load()
    db = Database()
    report = lazy_ingest_metadata(db, repo, metastore=metastore)
    assert report.files_reused == report.files, "metastore must serve all rows"
    executor = TwoStageExecutor(
        db, RepositoryBinding(repo), selective_mounts=selective
    )
    started = time.perf_counter()
    outcome = executor.execute(sql)
    wall = time.perf_counter() - started
    repo.close()
    return RemoteRun(
        mode=mode,
        rows=outcome.rows,
        remote_bytes=repo.stats.remote_bytes,
        ranged_gets=repo.stats.ranged_gets,
        whole_fetches=repo.stats.whole_fetches,
        wall_seconds=wall,
    )


def run_ranged_vs_whole(
    objects_dir: Path, workdir: Path, metastore_path: Path, sql: str
) -> tuple[RemoteRun, RemoteRun]:
    whole = _fresh_session(
        objects_dir, workdir, metastore_path, sql, "whole", selective=False
    )
    ranged = _fresh_session(
        objects_dir, workdir, metastore_path, sql, "ranged", selective=True
    )
    return whole, ranged


def ranged_reduction(whole: RemoteRun, ranged: RemoteRun) -> float:
    if ranged.remote_bytes == 0:
        return float("inf")
    return whole.remote_bytes / ranged.remote_bytes


def check_ranged_vs_whole(whole: RemoteRun, ranged: RemoteRun) -> None:
    assert ranged.rows == whole.rows, (
        f"ranged staging changed the answer: {whole.rows!r} -> {ranged.rows!r}"
    )
    assert ranged.ranged_gets > 0, "the selective path never issued a range"
    ratio = ranged_reduction(whole, ranged)
    assert ratio >= MIN_RANGED_REDUCTION, (
        f"expected >={MIN_RANGED_REDUCTION}x fewer remote bytes via ranged "
        f"GETs, got {ratio:.2f}x ({whole.remote_bytes:,} whole vs "
        f"{ranged.remote_bytes:,} ranged)"
    )


# -- claim 2: hedged reads on a heavy-tailed link ------------------------------


@dataclass
class HedgeRun:
    mode: str  # "plain" | "hedged"
    p50_ms: float
    p99_ms: float
    hedges: int
    hedge_wins: int


def _percentile(samples: Sequence[float], p: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(p * len(ordered)))
    return ordered[index]


def run_hedge_duel(
    objects_dir: Path, requests: int
) -> tuple[HedgeRun, HedgeRun]:
    """The same deterministic weather, with and without backup requests."""
    key = SimulatedObjectStore("seis-eu", objects_dir).list_keys()[0]
    runs = []
    for mode in ("plain", "hedged"):
        store = SimulatedObjectStore(
            "seis-eu", objects_dir, profile=HEAVY_TAIL_PROFILE, seed=13
        )
        transport = ResilientTransport(
            store,
            TransportPolicy(
                hedge_enabled=(mode == "hedged"),
                hedge_percentile=0.90,
                hedge_min_samples=8,
                hedge_multiplier=1.5,
                retry_budget_attempts=10 * requests,
            ),
        )
        for _ in range(8):  # warm the latency tracker in both arms:
            transport.get(key, 0, 4096)  # hedging needs a baseline first
        walls = []
        for _ in range(requests):
            started = time.perf_counter()
            transport.get(key, 0, 4096)
            walls.append(time.perf_counter() - started)
        transport.close()
        runs.append(
            HedgeRun(
                mode=mode,
                p50_ms=_percentile(walls, 0.50) * 1e3,
                p99_ms=_percentile(walls, 0.99) * 1e3,
                hedges=transport.stats.hedges,
                hedge_wins=transport.stats.hedge_wins,
            )
        )
    return runs[0], runs[1]


def hedge_p99_cut(plain: HedgeRun, hedged: HedgeRun) -> float:
    if hedged.p99_ms == 0:
        return float("inf")
    return plain.p99_ms / hedged.p99_ms


def check_hedge_duel(plain: HedgeRun, hedged: HedgeRun) -> None:
    assert hedged.hedges > 0, "the tail never armed a backup request"
    assert hedged.hedge_wins > 0, "no backup ever beat a straggler"
    cut = hedge_p99_cut(plain, hedged)
    assert cut >= MIN_HEDGE_P99_CUT, (
        f"expected hedging to cut p99 by >={MIN_HEDGE_P99_CUT}x, got "
        f"{cut:.2f}x ({plain.p99_ms:.1f} ms plain vs "
        f"{hedged.p99_ms:.1f} ms hedged)"
    )


# -- claim 3: fault-free resilience overhead -----------------------------------


@dataclass
class OverheadRun:
    mode: str  # "bare" | "resilient"
    rows: list[tuple]
    wall_seconds: float  # best of N: adjudicates scheduling noise


BARE_POLICY = TransportPolicy(max_attempts=1, retry_budget_attempts=0)
# The always-on stack: retry ladder, per-query budget, circuit breaker.
# Hedging and per-request timeouts are opt-in knobs that buy their thread
# pool only when configured (claim 2 prices hedging separately), so the
# default policy keeps the zero-thread inline path.
RESILIENT_POLICY = TransportPolicy(max_attempts=3, retry_budget_attempts=64)


def run_overhead(
    objects_dir: Path,
    workdir: Path,
    metastore_path: Path,
    sql: str,
    repeats: int,
) -> tuple[OverheadRun, OverheadRun]:
    """Fault-free full-pipeline wall time, bare vs fully armed.

    The modeled 5 ms/request latency is drawn from the same seed in both
    arms, so any wall-clock difference is the resilience machinery itself.
    """
    profile = NetworkProfile(latency_seconds=0.005)
    runs = []
    for mode, policy in (("bare", BARE_POLICY), ("resilient", RESILIENT_POLICY)):
        best = None
        rows = None
        for _ in range(repeats):
            run = _fresh_session(
                objects_dir,
                workdir,
                metastore_path,
                sql,
                mode,
                selective=True,
                policy=policy,
                profile=profile,
            )
            rows = run.rows
            best = run.wall_seconds if best is None else min(best, run.wall_seconds)
        runs.append(OverheadRun(mode=mode, rows=rows, wall_seconds=best))
    return runs[0], runs[1]


def overhead_fraction(bare: OverheadRun, resilient: OverheadRun) -> float:
    return (resilient.wall_seconds - bare.wall_seconds) / bare.wall_seconds


def check_overhead(bare: OverheadRun, resilient: OverheadRun) -> None:
    assert resilient.rows == bare.rows, (
        "the resilience stack changed the answer"
    )
    fraction = overhead_fraction(bare, resilient)
    assert fraction <= MAX_OVERHEAD_FRACTION, (
        f"expected <={MAX_OVERHEAD_FRACTION:.0%} fault-free overhead, got "
        f"{fraction:.1%} ({bare.wall_seconds * 1e3:.1f} ms bare vs "
        f"{resilient.wall_seconds * 1e3:.1f} ms resilient)"
    )


# -- reporting -----------------------------------------------------------------


def render(
    whole: RemoteRun,
    ranged: RemoteRun,
    plain: HedgeRun,
    hedged: HedgeRun,
    bare: OverheadRun,
    resilient: OverheadRun,
) -> str:
    lines = [
        f"{'mode':>10} {'remote bytes':>13} {'ranged':>7} {'whole':>6}",
    ]
    for run in (whole, ranged):
        lines.append(
            f"{run.mode:>10} {run.remote_bytes:>13,} "
            f"{run.ranged_gets:>7} {run.whole_fetches:>6}"
        )
    lines.append(
        f"ranged GETs move {ranged_reduction(whole, ranged):.1f}x fewer "
        f"remote bytes on the narrow window"
    )
    lines.append("")
    lines.append(f"{'mode':>10} {'p50 ms':>8} {'p99 ms':>8} {'hedges':>7}")
    for run in (plain, hedged):
        lines.append(
            f"{run.mode:>10} {run.p50_ms:>8.2f} {run.p99_ms:>8.2f} "
            f"{run.hedges:>7}"
        )
    lines.append(
        f"hedged backups cut p99 {hedge_p99_cut(plain, hedged):.1f}x on the "
        f"heavy-tailed link"
    )
    lines.append("")
    lines.append(
        f"fault-free resilience overhead: "
        f"{overhead_fraction(bare, resilient):+.2%} "
        f"({bare.wall_seconds * 1e3:.1f} ms bare, "
        f"{resilient.wall_seconds * 1e3:.1f} ms armed)"
    )
    return "\n".join(lines)


# -- pytest entry points -------------------------------------------------------


def _run_all(spec: RepositorySpec, requests: int, repeats: int) -> dict:
    repository = materialize_repository(spec)
    objects_dir = Path(repository.root)
    workdir = Path(tempfile.mkdtemp(prefix="bench-remote-"))
    metastore_path = _harvest_metadata(objects_dir, workdir)
    sql = _narrow_sql(spec)

    whole, ranged = run_ranged_vs_whole(
        objects_dir, workdir, metastore_path, sql
    )
    plain, hedged = run_hedge_duel(objects_dir, requests)
    bare, resilient = run_overhead(
        objects_dir, workdir, metastore_path, sql, repeats
    )
    print()
    print(render(whole, ranged, plain, hedged, bare, resilient))
    check_ranged_vs_whole(whole, ranged)
    check_hedge_duel(plain, hedged)
    check_overhead(bare, resilient)
    return {
        "whole": whole,
        "ranged": ranged,
        "plain": plain,
        "hedged": hedged,
        "bare": bare,
        "resilient": resilient,
    }


def test_remote_bench_quick():
    """Smoke: all three claims at 2-file scale."""
    _run_all(quick_spec(), requests=150, repeats=5)


# -- script entry point --------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Remote backend: ranged GETs vs whole staging, hedged "
        "p99, fault-free resilience overhead"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="2-file smoke run (seconds); CI uses this",
    )
    add_json_argument(parser)
    args = parser.parse_args(argv)

    spec = quick_spec() if args.quick else dense_spec()
    requests = 150 if args.quick else 400
    repeats = 5  # best-of: adjudicates scheduler noise on a ~50 ms wall
    repository = materialize_repository(spec)
    print(
        f"repository: {len(repository.uris())} files, "
        f"{repository.total_bytes():,} bytes"
    )
    try:
        runs = _run_all(spec, requests, repeats)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    maybe_emit_json(
        args.json,
        "remote",
        params={
            "quick": args.quick,
            "files": spec.file_count,
            "repository_bytes": repository.total_bytes(),
            "hedge_requests": requests,
            "overhead_repeats": repeats,
            "min_ranged_reduction": MIN_RANGED_REDUCTION,
            "min_hedge_p99_cut": MIN_HEDGE_P99_CUT,
            "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        },
        results={
            "whole": runs["whole"],
            "ranged": runs["ranged"],
            "ranged_reduction": ranged_reduction(
                runs["whole"], runs["ranged"]
            ),
            "plain": runs["plain"],
            "hedged": runs["hedged"],
            "hedge_p99_cut": hedge_p99_cut(runs["plain"], runs["hedged"]),
            "bare": runs["bare"],
            "resilient": runs["resilient"],
            "overhead_fraction": overhead_fraction(
                runs["bare"], runs["resilient"]
            ),
        },
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
