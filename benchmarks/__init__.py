"""Benchmark scripts plus the shared ``--json`` envelope emitter.

A package (not just a directory) so in-repo tooling — ``tools.lint``'s
``--json`` output, tests asserting the envelope shape — can import
:mod:`benchmarks.bench_json` instead of duplicating it. The scripts
themselves are still run directly: ``python benchmarks/bench_topn.py``.
"""
