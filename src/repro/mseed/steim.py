"""Steim1-style delta compression for int32 waveform samples.

SEED waveform payloads are Steim-compressed: samples become first
differences, packed into 64-byte *frames* of sixteen 32-bit words. Word 0 of
each frame is a control word holding fifteen 2-bit codes describing the other
words:

==== ======================================
code meaning
==== ======================================
00   special (integration constants / pad)
01   four 8-bit deltas
10   two 16-bit deltas
11   one 32-bit delta
==== ======================================

The first frame reserves words 1 and 2 for the forward and reverse
integration constants ``x0`` and ``xn`` (the first and last sample), exactly
as Steim1 does; the reverse constant doubles as an integrity check on decode.

One simplification keeps encoding fully vectorizable: deltas are packed in
aligned groups of four, and the group's class is chosen by its largest
magnitude (a true Steim1 encoder re-chunks greedily). This costs a little
compression on mixed content but none of the format's structure, and both
encode and decode run as numpy kernels — important because eager ingestion
decodes every payload in the repository.
"""

from __future__ import annotations

import numpy as np

from ..db.errors import CorruptFileError

_WORDS_PER_FRAME = 16
_SLOTS_PER_FRAME = _WORDS_PER_FRAME - 1  # word 0 is the control word
_FRAME_BYTES = 4 * _WORDS_PER_FRAME

_CODE_SPECIAL = 0
_CODE_BYTE = 1
_CODE_HALF = 2
_CODE_FULL = 3

_INT32_MIN = -(2**31)
_INT32_MAX = 2**31 - 1


class SteimError(CorruptFileError, ValueError):
    """Raised for unencodable input or corrupt payloads.

    Subclasses :class:`~repro.db.errors.CorruptFileError` so payload
    corruption surfaced here is part of the file-ingest taxonomy (the mount
    pool's ``except IngestError`` fail-fast path catches it), and
    :class:`ValueError` for backward compatibility. Callers that know the
    file context re-raise via :meth:`with_uri` / keyword arguments to attach
    the URI and byte offset.
    """


def _to_signed32(unsigned: np.ndarray) -> np.ndarray:
    """Reinterpret uint32 bit patterns as signed int32 (widened to int64)."""
    values = unsigned.astype(np.int64)
    return np.where(values >= 2**31, values - 2**32, values)


def steim_encode(samples: np.ndarray) -> bytes:
    """Compress int32 samples into a Steim1-style frame sequence."""
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise SteimError("samples must be one-dimensional")
    if len(samples) == 0:
        return b""
    samples = samples.astype(np.int64)
    if samples.min() < _INT32_MIN or samples.max() > _INT32_MAX:
        raise SteimError("samples exceed int32 range")

    deltas = np.empty(len(samples), dtype=np.int64)
    deltas[0] = 0  # decoder starts from the forward integration constant
    np.subtract(samples[1:], samples[:-1], out=deltas[1:])
    if deltas.min() < _INT32_MIN or deltas.max() > _INT32_MAX:
        raise SteimError("sample-to-sample jump exceeds int32 range")

    # Pad to a multiple of four and group.
    n = len(deltas)
    padded_len = -(-n // 4) * 4
    padded = np.zeros(padded_len, dtype=np.int64)
    padded[:n] = deltas
    groups = padded.reshape(-1, 4)
    magnitude = np.abs(groups).max(axis=1)
    klass = np.where(
        magnitude <= 127, _CODE_BYTE, np.where(magnitude <= 32767, _CODE_HALF, _CODE_FULL)
    )
    words_per_group = np.select(
        [klass == _CODE_BYTE, klass == _CODE_HALF], [1, 2], default=4
    )
    group_offsets = np.concatenate([[0], np.cumsum(words_per_group)[:-1]])
    total_words = int(words_per_group.sum())

    words = np.zeros(total_words, dtype=np.int64)
    codes = np.zeros(total_words, dtype=np.int8)

    mask_byte = klass == _CODE_BYTE
    if mask_byte.any():
        g = groups[mask_byte] & 0xFF
        packed = (g[:, 0] << 24) | (g[:, 1] << 16) | (g[:, 2] << 8) | g[:, 3]
        idx = group_offsets[mask_byte]
        words[idx] = packed
        codes[idx] = _CODE_BYTE

    mask_half = klass == _CODE_HALF
    if mask_half.any():
        g = groups[mask_half] & 0xFFFF
        idx = group_offsets[mask_half]
        words[idx] = (g[:, 0] << 16) | g[:, 1]
        words[idx + 1] = (g[:, 2] << 16) | g[:, 3]
        codes[idx] = _CODE_HALF
        codes[idx + 1] = _CODE_HALF

    mask_full = klass == _CODE_FULL
    if mask_full.any():
        g = groups[mask_full] & 0xFFFFFFFF
        idx = group_offsets[mask_full]
        for k in range(4):
            words[idx + k] = g[:, k]
            codes[idx + k] = _CODE_FULL

    # Frame assembly: [x0, xn] + data words, 15 slots per frame.
    x0 = int(samples[0]) & 0xFFFFFFFF
    xn = int(samples[-1]) & 0xFFFFFFFF
    slots = np.concatenate([[x0, xn], words])
    slot_codes = np.concatenate([[0, 0], codes]).astype(np.int64)
    nframes = -(-len(slots) // _SLOTS_PER_FRAME)
    padded_slots = np.zeros(nframes * _SLOTS_PER_FRAME, dtype=np.int64)
    padded_slots[: len(slots)] = slots
    padded_codes = np.zeros(nframes * _SLOTS_PER_FRAME, dtype=np.int64)
    padded_codes[: len(slot_codes)] = slot_codes

    frame_codes = padded_codes.reshape(nframes, _SLOTS_PER_FRAME)
    shifts = 2 * (np.arange(_SLOTS_PER_FRAME)[::-1])
    control = (frame_codes << shifts).sum(axis=1)

    frames = np.empty((nframes, _WORDS_PER_FRAME), dtype=np.uint32)
    frames[:, 0] = control.astype(np.uint32)
    frames[:, 1:] = padded_slots.reshape(nframes, _SLOTS_PER_FRAME).astype(np.uint32)
    return frames.astype(">u4").tobytes()


def steim_decode(payload: bytes, nsamples: int) -> np.ndarray:
    """Decompress a Steim1-style payload back into int32 samples.

    Verifies the reverse integration constant and raises
    :class:`SteimError` on any inconsistency.
    """
    if nsamples == 0:
        if payload:
            raise SteimError("non-empty payload for zero samples")
        return np.empty(0, dtype=np.int32)
    if len(payload) % _FRAME_BYTES != 0:
        raise SteimError(
            f"payload length {len(payload)} is not a multiple of {_FRAME_BYTES}"
        )
    frames = np.frombuffer(payload, dtype=">u4").reshape(-1, _WORDS_PER_FRAME)
    control = frames[:, 0].astype(np.int64)
    data = frames[:, 1:].astype(np.int64)

    shifts = 2 * (np.arange(_SLOTS_PER_FRAME)[::-1])
    codes = (control[:, None] >> shifts) & 3

    flat_words = data.reshape(-1)
    flat_codes = codes.reshape(-1)
    if len(flat_words) < 2:
        raise SteimError("payload too short for integration constants")
    x0 = int(_to_signed32(flat_words[:1])[0])
    xn = int(_to_signed32(flat_words[1:2])[0])

    words = flat_words[2:]
    word_codes = flat_codes[2:]
    used = word_codes != _CODE_SPECIAL
    words = words[used]
    word_codes = word_codes[used]

    counts = np.select(
        [word_codes == _CODE_BYTE, word_codes == _CODE_HALF], [4, 2], default=1
    )
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    total = int(counts.sum())
    if total < nsamples:
        raise SteimError(
            f"payload holds {total} deltas but {nsamples} samples expected"
        )
    deltas = np.zeros(total, dtype=np.int64)

    mask = word_codes == _CODE_BYTE
    if mask.any():
        w = words[mask]
        idx = offsets[mask]
        for k, shift in enumerate((24, 16, 8, 0)):
            byte = (w >> shift) & 0xFF
            deltas[idx + k] = np.where(byte >= 128, byte - 256, byte)

    mask = word_codes == _CODE_HALF
    if mask.any():
        w = words[mask]
        idx = offsets[mask]
        for k, shift in enumerate((16, 0)):
            half = (w >> shift) & 0xFFFF
            deltas[idx + k] = np.where(half >= 32768, half - 65536, half)

    mask = word_codes == _CODE_FULL
    if mask.any():
        w = words[mask]
        idx = offsets[mask]
        deltas[idx] = _to_signed32(w)

    samples = x0 + np.cumsum(deltas[:nsamples])
    if int(samples[-1]) != xn:
        raise SteimError(
            f"reverse integration constant mismatch: got {int(samples[-1])}, "
            f"expected {xn}"
        )
    return samples.astype(np.int32)


def compressed_size(samples: np.ndarray) -> int:
    """The payload size ``steim_encode`` would produce, in bytes."""
    return len(steim_encode(samples))
