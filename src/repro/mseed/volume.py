"""xSEED volumes: files made of concatenated records.

The key asymmetry the paper exploits is implemented here:
:func:`scan_headers` reads only the 64-byte headers and *seeks over* every
payload, so metadata extraction costs a tiny fraction of a full parse, while
:func:`read_records` decodes everything (what eager ingestion and mounting
do).

Every parse failure raises a :class:`~repro.db.errors.FileIngestError`
subclass carrying the offending URI (the path, unless the caller passes the
repository URI) and the byte offset of the record that failed, so a corrupt
file surfaces with enough context to quarantine it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from ..db.errors import CorruptFileError, TruncatedFileError
from .record import HEADER_SIZE, RecordHeader, XSeedRecord


def write_volume(path: str | Path, records: Sequence[XSeedRecord]) -> int:
    """Write records to a file; returns bytes written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    total = 0
    with open(path, "wb") as handle:
        for record in records:
            raw = record.pack()
            handle.write(raw)
            total += len(raw)
    return total


def read_records(path: str | Path, uri: str | None = None) -> list[XSeedRecord]:
    """Fully parse a volume: headers *and* decompressed payloads."""
    return list(iter_records(path, uri))


def iter_records(
    path: str | Path, uri: str | None = None
) -> Iterator[XSeedRecord]:
    uri = uri if uri is not None else str(path)
    offset = 0
    with open(path, "rb") as handle:
        while True:
            header_raw = handle.read(HEADER_SIZE)
            if not header_raw:
                return
            header = RecordHeader.unpack(header_raw, uri=uri, offset=offset)
            payload = handle.read(header.payload_len)
            if len(payload) != header.payload_len:
                raise TruncatedFileError(
                    f"record payload truncated: {len(payload)} of "
                    f"{header.payload_len} bytes",
                    uri=uri,
                    offset=offset + HEADER_SIZE,
                )
            yield XSeedRecord.unpack(
                header_raw + payload, uri=uri, offset=offset
            )
            offset += HEADER_SIZE + header.payload_len


def read_volume(path: str | Path) -> list[XSeedRecord]:
    """Alias for :func:`read_records` (kept for symmetry with write)."""
    return read_records(path)


def scan_headers(
    path: str | Path, uri: str | None = None
) -> list[RecordHeader]:
    """Header-only scan: read 64 bytes per record, seek over payloads.

    This is what metadata-only (ALi) ingestion uses; the cost is proportional
    to the number of records, not the number of samples. Truncation inside a
    seeked-over payload is still detected (against the file size), so the
    metadata never promises samples the payload cannot hold.
    """
    uri = uri if uri is not None else str(path)
    path = Path(path)
    size = path.stat().st_size
    headers: list[RecordHeader] = []
    offset = 0
    with open(path, "rb") as handle:
        while True:
            header_raw = handle.read(HEADER_SIZE)
            if not header_raw:
                return headers
            header = RecordHeader.unpack(header_raw, uri=uri, offset=offset)
            record_end = offset + HEADER_SIZE + header.payload_len
            if record_end > size:
                raise TruncatedFileError(
                    f"record payload truncated: file ends at byte {size}, "
                    f"record needs {record_end}",
                    uri=uri,
                    offset=offset + HEADER_SIZE,
                )
            headers.append(header)
            handle.seek(header.payload_len, 1)
            offset = record_end


@dataclass(frozen=True)
class FileMetadata:
    """File-level metadata summarized from record headers (table ``F``)."""

    network: str
    station: str
    location: str
    channel: str
    start_time: int
    end_time: int
    nrecords: int
    nsamples: int
    size_bytes: int


def read_file_metadata(
    path: str | Path, uri: str | None = None
) -> tuple[FileMetadata, list[RecordHeader]]:
    """Header-only extraction of both file-level and record-level metadata."""
    path = Path(path)
    headers = scan_headers(path, uri)
    if not headers:
        raise CorruptFileError(
            "empty volume",
            uri=uri if uri is not None else str(path),
            offset=0,
        )
    first = headers[0]
    meta = FileMetadata(
        network=first.network,
        station=first.station,
        location=first.location,
        channel=first.channel,
        start_time=min(h.start_time for h in headers),
        end_time=max(h.end_time for h in headers),
        nrecords=len(headers),
        nsamples=sum(h.nsamples for h in headers),
        size_bytes=path.stat().st_size,
    )
    return meta, headers
