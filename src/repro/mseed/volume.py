"""xSEED volumes: files made of concatenated records.

The key asymmetry the paper exploits is implemented here:
:func:`scan_headers` reads only the 64-byte headers and *seeks over* every
payload, so metadata extraction costs a tiny fraction of a full parse, while
:func:`read_records` decodes everything (what eager ingestion and mounting
do).

Every parse failure raises a :class:`~repro.db.errors.FileIngestError`
subclass carrying the offending URI (the path, unless the caller passes the
repository URI) and the byte offset of the record that failed, so a corrupt
file surfaces with enough context to quarantine it.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence

from ..db.errors import CorruptFileError, StaleFileError, TruncatedFileError
from ..db.interval import Interval, overlaps
from .iohooks import open_volume
from .record import HEADER_SIZE, RecordHeader, XSeedRecord


def write_volume(path: str | Path, records: Sequence[XSeedRecord]) -> int:
    """Write records to a file; returns bytes written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    total = 0
    with open(path, "wb") as handle:
        for record in records:
            raw = record.pack()
            handle.write(raw)
            total += len(raw)
    return total


def read_records(path: str | Path, uri: str | None = None) -> list[XSeedRecord]:
    """Fully parse a volume: headers *and* decompressed payloads."""
    return list(iter_records(path, uri))


def iter_records(
    path: str | Path, uri: str | None = None
) -> Iterator[XSeedRecord]:
    uri = uri if uri is not None else str(path)
    offset = 0
    with open_volume(path, uri) as handle:
        while True:
            header_raw = handle.read(HEADER_SIZE)
            if not header_raw:
                return
            header = RecordHeader.unpack(header_raw, uri=uri, offset=offset)
            payload = handle.read(header.payload_len)
            if len(payload) != header.payload_len:
                raise TruncatedFileError(
                    f"record payload truncated: {len(payload)} of "
                    f"{header.payload_len} bytes",
                    uri=uri,
                    offset=offset + HEADER_SIZE,
                )
            yield XSeedRecord.unpack(
                header_raw + payload, uri=uri, offset=offset
            )
            offset += HEADER_SIZE + header.payload_len


def read_volume(path: str | Path) -> list[XSeedRecord]:
    """Alias for :func:`read_records` (kept for symmetry with write)."""
    return read_records(path)


@dataclass(frozen=True)
class SelectiveRead:
    """What a record-granular read of one volume produced and cost."""

    records: list[tuple[int, XSeedRecord]]  # (record_id, decoded record)
    bytes_read: int  # headers + payloads actually pulled off disk
    records_decoded: int
    records_skipped: int


def read_selected_records(
    path: str | Path,
    interval: Interval,
    uri: str | None = None,
    spans: Optional[Sequence] = None,
) -> SelectiveRead:
    """Decode only the records whose header time span overlaps ``interval``.

    With a record byte map (``spans`` — objects carrying ``record_id``,
    ``byte_offset``, ``byte_length``, ``start_time``, ``end_time``), the
    read seeks straight to each overlapping record and touches nothing
    else: skipped records cost zero bytes. Every selected record's header
    is re-validated against its span — a map that no longer matches the
    file (rewritten since the metadata pass) raises
    :class:`~repro.db.errors.StaleFileError` instead of yielding torn rows.

    Without a byte map, the read streams the file header-by-header (64
    bytes per record, like :func:`scan_headers`) and seeks over every
    non-overlapping payload, so the payload read + Steim decode — the
    dominant cost — is still skipped.
    """
    uri = uri if uri is not None else str(path)
    path = Path(path)
    if spans is not None:
        return _read_by_byte_map(path, interval, uri, spans)
    return _read_by_header_walk(path, interval, uri)


def _read_by_byte_map(
    path: Path, interval: Interval, uri: str, spans: Sequence
) -> SelectiveRead:
    size = path.stat().st_size
    records: list[tuple[int, XSeedRecord]] = []
    bytes_read = 0
    skipped = 0
    with open_volume(path, uri) as handle:
        for span in spans:
            if not overlaps(interval, span.start_time, span.end_time):
                skipped += 1
                continue
            if span.byte_offset + span.byte_length > size:
                raise TruncatedFileError(
                    f"record ends at byte "
                    f"{span.byte_offset + span.byte_length}, file ends at "
                    f"{size}",
                    uri=uri,
                    offset=span.byte_offset,
                )
            handle.seek(span.byte_offset)
            raw = handle.read(span.byte_length)
            bytes_read += len(raw)
            header = RecordHeader.unpack(raw, uri=uri, offset=span.byte_offset)
            if (
                header.start_time != span.start_time
                or HEADER_SIZE + header.payload_len != span.byte_length
            ):
                raise StaleFileError(
                    "record byte map no longer matches the file on disk "
                    f"(record {span.record_id}: header start_time/length "
                    "drifted since the metadata pass)",
                    uri=uri,
                    offset=span.byte_offset,
                )
            records.append(
                (
                    span.record_id,
                    XSeedRecord.unpack(raw, uri=uri, offset=span.byte_offset),
                )
            )
    return SelectiveRead(records, bytes_read, len(records), skipped)


def _read_by_header_walk(
    path: Path, interval: Interval, uri: str
) -> SelectiveRead:
    size = path.stat().st_size
    records: list[tuple[int, XSeedRecord]] = []
    bytes_read = 0
    skipped = 0
    offset = 0
    record_id = 0
    with open_volume(path, uri) as handle:
        while True:
            header_raw = handle.read(HEADER_SIZE)
            if not header_raw:
                break
            bytes_read += len(header_raw)
            header = RecordHeader.unpack(header_raw, uri=uri, offset=offset)
            record_end = offset + HEADER_SIZE + header.payload_len
            if not overlaps(interval, header.start_time, header.end_time):
                # Truncation inside a skipped payload is still detected
                # against the file size (the scan_headers guarantee), but
                # the payload's *content* is never read — damage inside a
                # record the query does not touch cannot fail the query.
                if record_end > size:
                    raise TruncatedFileError(
                        f"record payload truncated: file ends at byte "
                        f"{size}, record needs {record_end}",
                        uri=uri,
                        offset=offset + HEADER_SIZE,
                    )
                handle.seek(header.payload_len, 1)
                skipped += 1
            else:
                payload = handle.read(header.payload_len)
                bytes_read += len(payload)
                if len(payload) != header.payload_len:
                    raise TruncatedFileError(
                        f"record payload truncated: {len(payload)} of "
                        f"{header.payload_len} bytes",
                        uri=uri,
                        offset=offset + HEADER_SIZE,
                    )
                records.append(
                    (
                        record_id,
                        XSeedRecord.unpack(
                            header_raw + payload, uri=uri, offset=offset
                        ),
                    )
                )
            offset = record_end
            record_id += 1
    return SelectiveRead(records, bytes_read, len(records), skipped)


def scan_headers(
    path: str | Path, uri: str | None = None
) -> list[RecordHeader]:
    """Header-only scan: read 64 bytes per record, seek over payloads.

    This is what metadata-only (ALi) ingestion uses; the cost is proportional
    to the number of records, not the number of samples. Truncation inside a
    seeked-over payload is still detected (against the file size), so the
    metadata never promises samples the payload cannot hold.
    """
    uri = uri if uri is not None else str(path)
    path = Path(path)
    size = path.stat().st_size
    headers: list[RecordHeader] = []
    offset = 0
    with open_volume(path, uri) as handle:
        while True:
            header_raw = handle.read(HEADER_SIZE)
            if not header_raw:
                return headers
            header = RecordHeader.unpack(header_raw, uri=uri, offset=offset)
            record_end = offset + HEADER_SIZE + header.payload_len
            if record_end > size:
                raise TruncatedFileError(
                    f"record payload truncated: file ends at byte {size}, "
                    f"record needs {record_end}",
                    uri=uri,
                    offset=offset + HEADER_SIZE,
                )
            headers.append(header)
            handle.seek(header.payload_len, 1)
            offset = record_end


@dataclass(frozen=True)
class FileMetadata:
    """File-level metadata summarized from record headers (table ``F``)."""

    network: str
    station: str
    location: str
    channel: str
    start_time: int
    end_time: int
    nrecords: int
    nsamples: int
    size_bytes: int


def read_file_metadata(
    path: str | Path, uri: str | None = None
) -> tuple[FileMetadata, list[RecordHeader]]:
    """Header-only extraction of both file-level and record-level metadata."""
    path = Path(path)
    headers = scan_headers(path, uri)
    if not headers:
        raise CorruptFileError(
            "empty volume",
            uri=uri if uri is not None else str(path),
            offset=0,
        )
    first = headers[0]
    meta = FileMetadata(
        network=first.network,
        station=first.station,
        location=first.location,
        channel=first.channel,
        start_time=min(h.start_time for h in headers),
        end_time=max(h.end_time for h in headers),
        nrecords=len(headers),
        nsamples=sum(h.nsamples for h in headers),
        size_bytes=path.stat().st_size,
    )
    return meta, headers
