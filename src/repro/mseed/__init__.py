"""`repro.mseed` — the scientific file repository substrate.

The paper evaluates on mini-SEED seismic waveform files from the ORFEUS
repository. This package provides the synthetic equivalent: "xSEED", an
mSEED-style binary record format with fixed 64-byte headers and Steim1-style
delta-compressed int32 payloads, a deterministic waveform synthesizer, and a
file-repository abstraction. The properties the experiments rely on hold by
construction: headers (metadata) are tiny and readable without touching the
payload; payloads (actual data) are large and compressed.
"""

from .iohooks import VolumeIoHook, open_volume, set_volume_io_hook
from .record import RecordHeader, XSeedRecord, HEADER_SIZE
from .repository import FileRepository
from .steim import steim_decode, steim_encode, SteimError
from .synthesize import RepositorySpec, WaveformSpec, generate_repository, synthesize_waveform
from .volume import (
    SelectiveRead,
    read_file_metadata,
    read_records,
    read_selected_records,
    read_volume,
    scan_headers,
    write_volume,
)

__all__ = [
    "RecordHeader",
    "XSeedRecord",
    "HEADER_SIZE",
    "FileRepository",
    "steim_encode",
    "steim_decode",
    "SteimError",
    "RepositorySpec",
    "WaveformSpec",
    "generate_repository",
    "synthesize_waveform",
    "write_volume",
    "read_volume",
    "read_records",
    "read_selected_records",
    "read_file_metadata",
    "scan_headers",
    "SelectiveRead",
    "VolumeIoHook",
    "open_volume",
    "set_volume_io_hook",
]
