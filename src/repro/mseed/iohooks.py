"""Pluggable I/O hook on the volume file-access path.

Every repository read in :mod:`repro.mseed.volume` opens its file through
:func:`open_volume` instead of calling :func:`open` directly. Normally that
is a plain ``open(path, "rb")``; when a hook is installed (the deterministic
fault-injection harness, :mod:`repro.testing.faults`), the returned handle
is wrapped so the hook can inject transient ``OSError``\\ s, read latency,
short reads, and between-reads file mutations at chosen URIs — the faults
the resilient-mounting machinery (retry, skip-and-report, staleness
re-validation) exists to absorb.

The hook is intentionally a single module-level slot, not a per-service
field: the whole point of chaos testing is to fault the *real* access path
that production code uses, with zero plumbing through the extraction layers
and zero overhead (one ``None`` check) when no hook is installed.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import BinaryIO, Optional, Protocol


class VolumeIoHook(Protocol):
    """Wraps every handle the volume layer opens."""

    def wrap(self, path: Path, uri: str, handle: BinaryIO) -> BinaryIO:
        """Return the handle to hand to the reader (possibly ``handle``)."""
        ...


_lock = threading.Lock()
_active: Optional[VolumeIoHook] = None


def set_volume_io_hook(hook: Optional[VolumeIoHook]) -> Optional[VolumeIoHook]:
    """Install ``hook`` (None to clear); returns the previous hook."""
    global _active
    with _lock:
        previous = _active
        _active = hook
        return previous


def get_volume_io_hook() -> Optional[VolumeIoHook]:
    return _active


def open_volume(path: str | Path, uri: Optional[str] = None) -> BinaryIO:
    """Open one repository file for reading, through the active hook."""
    handle = open(path, "rb")
    hook = _active
    if hook is None:
        return handle
    try:
        return hook.wrap(
            Path(path), uri if uri is not None else str(path), handle
        )
    except BaseException:
        handle.close()
        raise


__all__ = [
    "VolumeIoHook",
    "get_volume_io_hook",
    "open_volume",
    "set_volume_io_hook",
]
