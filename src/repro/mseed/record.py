"""xSEED records: fixed 64-byte headers + compressed payloads.

A record is the unit of a waveform file, mirroring mini-SEED: the header
carries the *metadata* (stream identifiers, start time, rate, sample count,
payload length) and the payload carries the *actual data* (Steim-compressed
samples). Everything two-stage execution needs for stage 1 lives in the
header; the payload is only touched when a file is mounted.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..db.errors import CorruptFileError, TruncatedFileError
from .steim import SteimError, steim_decode, steim_encode

MAGIC = b"XSD1"
ENCODING_STEIM1 = 1

# magic, sequence, network, station, location, channel, start_time (µs),
# sample_rate (Hz), nsamples, encoding, payload_len
_HEADER_STRUCT = struct.Struct(">4sI2s5s2s3sqdIHI")
_PAD = 64 - _HEADER_STRUCT.size
HEADER_SIZE = 64

assert _PAD >= 0, "header layout exceeds 64 bytes"


def sample_time_offsets(nsamples: int, sample_rate: float) -> np.ndarray:
    """µs offsets of each sample from the record's start time.

    The single source of truth for sample timing: both the materialized
    per-sample times and the header's ``end_time`` derive from it, so
    header-based time pruning can never disagree with mounted sample times.
    """
    step = 1_000_000 / sample_rate
    return np.round(np.arange(nsamples) * step).astype(np.int64)


def last_sample_offset(nsamples: int, sample_rate: float) -> int:
    """µs offset of the last sample — ``sample_time_offsets(...)[-1]``.

    Computed scalar-wise so header-only scans stay O(1) per record, with
    the exact float association of :func:`sample_time_offsets`
    (``(n-1) * step``, never ``(n-1) * 1_000_000 / rate``): the two paths
    once disagreed by 1 µs at interval boundaries.
    """
    if nsamples <= 1 or sample_rate <= 0:
        return 0
    step = 1_000_000 / sample_rate
    return int(round((nsamples - 1) * step))


def _fix(text: str, width: int) -> bytes:
    encoded = text.encode("ascii")
    if len(encoded) > width:
        raise SteimError(f"identifier {text!r} longer than {width} bytes")
    return encoded.ljust(width)


@dataclass(frozen=True)
class RecordHeader:
    """The metadata half of a record — what header-only scans return."""

    sequence: int
    network: str
    station: str
    location: str
    channel: str
    start_time: int  # µs since epoch, UTC
    sample_rate: float  # Hz
    nsamples: int
    encoding: int
    payload_len: int

    @property
    def end_time(self) -> int:
        """Time of the last sample (µs). Equals start_time for 1 sample."""
        return self.start_time + last_sample_offset(
            self.nsamples, self.sample_rate
        )

    def pack(self) -> bytes:
        return _HEADER_STRUCT.pack(
            MAGIC,
            self.sequence,
            _fix(self.network, 2),
            _fix(self.station, 5),
            _fix(self.location, 2),
            _fix(self.channel, 3),
            self.start_time,
            self.sample_rate,
            self.nsamples,
            self.encoding,
            self.payload_len,
        ) + b"\x00" * _PAD

    @classmethod
    def unpack(
        cls, raw: bytes, *, uri: str | None = None, offset: int = 0
    ) -> "RecordHeader":
        if len(raw) < HEADER_SIZE:
            raise TruncatedFileError(
                f"truncated header: {len(raw)} of {HEADER_SIZE} bytes",
                uri=uri,
                offset=offset,
            )
        try:
            (
                magic, sequence, network, station, location, channel,
                start_time, sample_rate, nsamples, encoding, payload_len,
            ) = _HEADER_STRUCT.unpack(raw[: _HEADER_STRUCT.size])
        except struct.error as exc:
            raise CorruptFileError(
                f"malformed header: {exc}", uri=uri, offset=offset, cause=exc
            ) from exc
        if magic != MAGIC:
            raise CorruptFileError(
                f"bad magic {magic!r}", uri=uri, offset=offset
            )
        try:
            identifiers = [
                raw_id.decode("ascii").strip()
                for raw_id in (network, station, location, channel)
            ]
        except UnicodeDecodeError as exc:
            raise CorruptFileError(
                f"non-ASCII stream identifier: {exc}",
                uri=uri,
                offset=offset,
                cause=exc,
            ) from exc
        return cls(
            sequence=sequence,
            network=identifiers[0],
            station=identifiers[1],
            location=identifiers[2],
            channel=identifiers[3],
            start_time=start_time,
            sample_rate=sample_rate,
            nsamples=nsamples,
            encoding=encoding,
            payload_len=payload_len,
        )


@dataclass(frozen=True)
class XSeedRecord:
    """A full record: header plus decoded samples.

    ``payload`` caches the compressed bytes so creating and then writing a
    record compresses only once.
    """

    header: RecordHeader
    samples: np.ndarray  # int32
    payload: bytes = b""

    @classmethod
    def create(
        cls,
        sequence: int,
        network: str,
        station: str,
        location: str,
        channel: str,
        start_time: int,
        sample_rate: float,
        samples: np.ndarray,
    ) -> "XSeedRecord":
        samples = np.asarray(samples, dtype=np.int32)
        payload = steim_encode(samples)
        header = RecordHeader(
            sequence=sequence,
            network=network,
            station=station,
            location=location,
            channel=channel,
            start_time=start_time,
            sample_rate=sample_rate,
            nsamples=len(samples),
            encoding=ENCODING_STEIM1,
            payload_len=len(payload),
        )
        return cls(header, samples, payload)

    def pack(self) -> bytes:
        payload = self.payload if self.payload else steim_encode(self.samples)
        header = RecordHeader(
            **{**self.header.__dict__, "payload_len": len(payload)}
        )
        return header.pack() + payload

    @classmethod
    def unpack(
        cls, raw: bytes, *, uri: str | None = None, offset: int = 0
    ) -> "XSeedRecord":
        header = RecordHeader.unpack(raw, uri=uri, offset=offset)
        payload = raw[HEADER_SIZE: HEADER_SIZE + header.payload_len]
        if len(payload) != header.payload_len:
            raise TruncatedFileError(
                f"truncated payload: {len(payload)} of "
                f"{header.payload_len} bytes",
                uri=uri,
                offset=offset + HEADER_SIZE,
            )
        if header.encoding != ENCODING_STEIM1:
            raise CorruptFileError(
                f"unknown encoding {header.encoding}",
                uri=uri,
                offset=offset,
            )
        try:
            samples = steim_decode(payload, header.nsamples)
        except SteimError as exc:
            raise SteimError(
                exc.message,
                uri=uri,
                offset=offset + HEADER_SIZE,
                cause=exc,
            ) from exc
        return cls(header, samples, payload)

    def sample_times(self) -> np.ndarray:
        """Per-sample timestamps (µs), materialized the way Ei does."""
        return self.header.start_time + sample_time_offsets(
            self.header.nsamples, self.header.sample_rate
        )
