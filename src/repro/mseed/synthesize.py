"""Deterministic synthetic seismic waveforms and repository generation.

The ORFEUS substitution: instead of copying mSEED files from a seismograph
network, we synthesize them — AR(1)-colored background noise (small deltas,
compresses well) plus occasional seismic events modeled as exponentially
decaying sinusoid bursts (large deltas). Every file is a deterministic
function of ``(seed, network, station, channel, day)``, so repositories are
reproducible across runs and machines.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .record import XSeedRecord
from .volume import write_volume

_DAY_US = 86_400 * 1_000_000


@dataclass(frozen=True)
class WaveformSpec:
    """Statistical shape of a synthetic waveform."""

    noise_scale: float = 6.0  # std-dev of background noise innovations
    ar_coefficient: float = 0.6  # AR(1) coloring of the noise
    events_per_hour: float = 0.35  # Poisson rate of seismic bursts
    event_amplitude: float = 12_000.0  # typical burst peak (counts)
    event_frequency_hz: float = 1.4  # burst oscillation frequency
    event_decay_s: float = 25.0  # burst amplitude e-folding time


@dataclass(frozen=True)
class RepositorySpec:
    """Shape of a synthetic file repository (stations × channels × days)."""

    stations: tuple[str, ...] = ("ISK", "ANK", "IZM", "EDC", "KDZ")
    network: str = "KO"
    channels: tuple[str, ...] = ("BHE", "BHN", "BHZ")
    start_day: str = "2010-01-10"  # first day, ISO date
    days: int = 8
    sample_rate: float = 1.0  # Hz; scaled down from real 20-50 Hz BH rates
    samples_per_record: int = 3600  # one record per hour at 1 Hz
    seed: int = 2013
    waveform: WaveformSpec = field(default_factory=WaveformSpec)

    @property
    def file_count(self) -> int:
        return len(self.stations) * len(self.channels) * self.days


def _day_start_us(start_day: str, day_index: int) -> int:
    from ..db.types import parse_timestamp

    return parse_timestamp(start_day) + day_index * _DAY_US


def _rng_for(seed: int, *parts: str) -> np.random.Generator:
    digest = hashlib.sha256(
        ("|".join(parts) + f"|{seed}").encode()
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def synthesize_waveform(
    rng: np.random.Generator,
    nsamples: int,
    sample_rate: float,
    spec: WaveformSpec,
) -> np.ndarray:
    """One synthetic waveform as int32 counts."""
    innovations = rng.normal(0.0, spec.noise_scale, size=nsamples)
    noise = _ar1(innovations, spec.ar_coefficient)

    duration_hours = nsamples / sample_rate / 3600.0
    n_events = int(rng.poisson(spec.events_per_hour * duration_hours))
    signal = noise
    for _ in range(n_events):
        start = int(rng.integers(0, max(nsamples - 1, 1)))
        amplitude = spec.event_amplitude * float(rng.lognormal(0.0, 0.6))
        length = min(
            nsamples - start,
            max(int(6 * spec.event_decay_s * sample_rate), 4),
        )
        t = np.arange(length) / sample_rate
        phase = float(rng.uniform(0, 2 * np.pi))
        burst = amplitude * np.exp(-t / spec.event_decay_s) * np.sin(
            2 * np.pi * spec.event_frequency_hz * t + phase
        )
        signal = signal.copy()
        signal[start: start + length] += burst
    return np.clip(np.round(signal), -(2**30), 2**30 - 1).astype(np.int32)


def _ar1(innovations: np.ndarray, coefficient: float) -> np.ndarray:
    """AR(1) filter; scipy's lfilter when available, else a cumulative loop."""
    try:
        from scipy.signal import lfilter

        return lfilter([1.0], [1.0, -coefficient], innovations)
    except ImportError:  # pragma: no cover - scipy is an installed dependency
        out = np.empty_like(innovations)
        acc = 0.0
        for i, x in enumerate(innovations):
            acc = coefficient * acc + x
            out[i] = acc
        return out


def day_of_year(start_day: str, day_index: int) -> tuple[int, int]:
    """(year, ordinal day) of a repository day — used in file names."""
    import datetime as dt

    first = dt.date.fromisoformat(start_day)
    date = first + dt.timedelta(days=day_index)
    return date.year, date.timetuple().tm_yday


def file_relpath(spec: RepositorySpec, station: str, channel: str, day_index: int) -> str:
    year, ordinal = day_of_year(spec.start_day, day_index)
    return (
        f"{year}/{spec.network}.{station}/"
        f"{spec.network}.{station}..{channel}.{year}.{ordinal:03d}.xseed"
    )


def build_records(
    spec: RepositorySpec, station: str, channel: str, day_index: int
) -> list[XSeedRecord]:
    """All records of one (station, channel, day) file, deterministically."""
    rng = _rng_for(spec.seed, spec.network, station, channel, str(day_index))
    nsamples = int(86_400 * spec.sample_rate)
    waveform = synthesize_waveform(rng, nsamples, spec.sample_rate, spec.waveform)
    day_start = _day_start_us(spec.start_day, day_index)
    step_us = 1_000_000 / spec.sample_rate
    records = []
    for sequence, start in enumerate(range(0, nsamples, spec.samples_per_record)):
        chunk = waveform[start: start + spec.samples_per_record]
        records.append(
            XSeedRecord.create(
                sequence=sequence,
                network=spec.network,
                station=station,
                location="",
                channel=channel,
                start_time=day_start + round(start * step_us),
                sample_rate=spec.sample_rate,
                samples=chunk,
            )
        )
    return records


def generate_repository(root: str | Path, spec: RepositorySpec) -> list[str]:
    """Materialize the repository under ``root``; returns relative URIs."""
    root = Path(root)
    uris: list[str] = []
    for day_index in range(spec.days):
        for station in spec.stations:
            for channel in spec.channels:
                relpath = file_relpath(spec, station, channel, day_index)
                records = build_records(spec, station, channel, day_index)
                write_volume(root / relpath, records)
                uris.append(relpath)
    return sorted(uris)
