"""The file-repository abstraction.

A repository is a directory tree of standard-format files addressed by
*URIs* (their repository-relative paths). This is the paper's unit of
ingestion: eager ingestion walks every URI, lazy ingestion walks headers
only, and the mount access path resolves one URI at a time.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from ..db.errors import FileIngestError, IngestError


class FileRepository:
    """A directory of scientific data files, addressed by relative URI.

    ``suffix`` may be a single extension or a tuple of extensions — a real
    scientific archive mixes formats, and the format registry dispatches per
    file, so one repository (and one schema) can span them all.
    """

    def __init__(
        self, root: str | Path, suffix: str | tuple[str, ...] = ".xseed"
    ) -> None:
        self.root = Path(root)
        self.suffixes = (suffix,) if isinstance(suffix, str) else tuple(suffix)
        if not self.root.exists():
            raise IngestError(f"repository root {self.root} does not exist")

    @property
    def suffix(self) -> str:
        """The first suffix (kept for single-format callers)."""
        return self.suffixes[0]

    def uris(self) -> list[str]:
        """All file URIs, sorted for deterministic iteration order."""
        found: set[str] = set()
        for suffix in self.suffixes:
            found.update(
                p.relative_to(self.root).as_posix()
                for p in self.root.rglob(f"*{suffix}")
                if p.is_file()
            )
        return sorted(found)

    def __len__(self) -> int:
        return len(self.uris())

    def __iter__(self) -> Iterator[str]:
        return iter(self.uris())

    def path_of(self, uri: str) -> Path:
        path = (self.root / uri).resolve()
        root = self.root.resolve()
        if not path.is_relative_to(root):
            raise IngestError(f"URI {uri!r} escapes the repository root")
        if not path.exists():
            raise FileIngestError(
                f"no file for URI {uri!r} in {self.root}", uri=uri
            )
        return path

    def size_of(self, uri: str) -> int:
        return self.path_of(uri).stat().st_size

    def total_bytes(self) -> int:
        """Size of the repository — the "mSEED" column of Table 1."""
        return sum(self.size_of(uri) for uri in self.uris())
