"""The file-repository abstraction.

A repository is a directory tree of standard-format files addressed by
*URIs* (their repository-relative paths). This is the paper's unit of
ingestion: eager ingestion walks every URI, lazy ingestion walks headers
only, and the mount access path resolves one URI at a time.

:class:`FileRepository` is also the *repository protocol* other backends
implement by duck type: ingestion and mounting resolve everything source-
specific through four overridable hooks — :meth:`~FileRepository.path_of`
(URI → readable local path), :meth:`~FileRepository.signature_of` (URI →
staleness signature), :meth:`~FileRepository.extractor_for` (path → format
extractor, possibly wrapped), and :meth:`~FileRepository.begin_query`
(per-query setup such as resetting a transport retry budget). The remote
backend (:mod:`repro.remote.repository`) and the federated dispatcher
(:mod:`repro.remote.federation`) override them; everything above the hooks
is source-agnostic.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

from ..db.errors import FileIngestError, IngestError

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycles)
    from ..core.governor import CancellationToken
    from ..ingest.formats import FormatExtractor, FormatRegistry


class FileRepository:
    """A directory of scientific data files, addressed by relative URI.

    ``suffix`` may be a single extension or a tuple of extensions — a real
    scientific archive mixes formats, and the format registry dispatches per
    file, so one repository (and one schema) can span them all.
    """

    def __init__(
        self, root: str | Path, suffix: str | tuple[str, ...] = ".xseed"
    ) -> None:
        self.root = Path(root)
        self.suffixes = (suffix,) if isinstance(suffix, str) else tuple(suffix)
        if not self.root.exists():
            raise IngestError(f"repository root {self.root} does not exist")

    @property
    def suffix(self) -> str:
        """The first suffix (kept for single-format callers)."""
        return self.suffixes[0]

    def uris(self) -> list[str]:
        """All file URIs, sorted for deterministic iteration order."""
        found: set[str] = set()
        for suffix in self.suffixes:
            found.update(
                p.relative_to(self.root).as_posix()
                for p in self.root.rglob(f"*{suffix}")
                if p.is_file()
            )
        return sorted(found)

    def __len__(self) -> int:
        return len(self.uris())

    def __iter__(self) -> Iterator[str]:
        return iter(self.uris())

    def path_of(self, uri: str) -> Path:
        path = (self.root / uri).resolve()
        root = self.root.resolve()
        if not path.is_relative_to(root):
            raise IngestError(f"URI {uri!r} escapes the repository root")
        if not path.exists():
            raise FileIngestError(
                f"no file for URI {uri!r} in {self.root}", uri=uri
            )
        return path

    def size_of(self, uri: str) -> int:
        return self.path_of(uri).stat().st_size

    def total_bytes(self) -> int:
        """Size of the repository — the "mSEED" column of Table 1."""
        return sum(self.size_of(uri) for uri in self.uris())

    # -- repository protocol hooks -------------------------------------------
    #
    # Everything below is the overridable surface a non-local backend
    # replaces. Callers (lazy/eager ingestion, the mount service) must go
    # through these instead of stat()/registry.for_path directly.

    def signature_of(self, uri: str) -> tuple[int, int]:
        """The ``(mtime_ns, size)`` staleness signature of a URI.

        Raises ``FileNotFoundError`` (not :meth:`path_of`'s typed error) on
        a missing file: the mount layer maps that to disappeared-before /
        deleted-during-extraction staleness, which must keep working when a
        file vanishes *between* resolution and the post-extract re-check.
        """
        path = (self.root / uri).resolve()
        if not path.is_relative_to(self.root.resolve()):
            raise IngestError(f"URI {uri!r} escapes the repository root")
        st = path.stat()
        return (st.st_mtime_ns, st.st_size)

    def extractor_for(
        self, path: Path, uri: str, registry: "FormatRegistry"
    ) -> "FormatExtractor":
        """The format extractor to use for ``uri`` resolved at ``path``.

        The remote backend wraps the registry's choice in a staging adapter;
        locally the registry's per-suffix dispatch is the whole story.
        """
        return registry.for_path(path)

    def begin_query(self, token: Optional["CancellationToken"] = None) -> None:
        """Per-query setup hook (no-op locally).

        The remote backend resets its per-query transport retry budget and
        adopts the query's cancellation token here.
        """

    def owns_uri(self, uri: str) -> bool:
        """Does this repository serve ``uri``? (Federation dispatch.)"""
        return not uri.startswith("remote://")
