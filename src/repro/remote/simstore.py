"""A deterministic simulated object store.

One :class:`SimulatedObjectStore` plays the role of a remote endpoint: it
serves the files under a local directory through an object-store-shaped API
(``list_keys`` / ``head`` / ``get`` with byte ranges) while charging every
request against a seeded :class:`~repro.remote.netmodel.NetworkModel` —
per-request latency (with jitter and an optional heavy tail), per-byte
bandwidth, and seeded request loss.

Two properties make it the right test double for the transport layer:

* **Determinism** — latency/loss draws are pure functions of
  ``(seed, request-key, access-index)``, so a chaos run replays.
* **Fault-harness composition** — object payloads are read through
  :func:`repro.mseed.iohooks.open_volume` with the object's ``remote://``
  URI, so a :class:`~repro.testing.faults.FaultPlan` injects its network
  kinds (connection-refused, mid-stream disconnect, stall) *inside* the
  store's reads, exactly where a real socket would fail.

The store itself raises raw OS-level errors (``ConnectionRefusedError``,
``ConnectionResetError``, ``FileNotFoundError``) — the resilient transport
owns wrapping them into the typed taxonomy.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from .. import _sync
from ..mseed.iohooks import open_volume
from .netmodel import (
    NetworkModel,
    NetworkProfile,
    RequestAbandoned,
    interruptible_wait,
)
from .uris import remote_uri

# Payload streaming granularity: bandwidth waits and fault-plan read
# counters both advance per chunk.
CHUNK_BYTES = 64 * 1024


@dataclass(frozen=True)
class ObjectStat:
    """What a HEAD answers: identity plus the staleness signature parts."""

    key: str
    size: int
    mtime_ns: int

    @property
    def signature(self) -> tuple[int, int]:
        """The ``(mtime_ns, size)`` signature, same shape as a local stat."""
        return (self.mtime_ns, self.size)


@dataclass
class SimStoreStats:
    requests: int = 0
    lists: int = 0
    heads: int = 0
    gets: int = 0
    ranged_gets: int = 0  # gets that asked for a proper sub-range
    bytes_served: int = 0
    refused: int = 0  # connection refused (endpoint down)
    lost: int = 0  # requests reset by the loss model


@_sync.guarded
class SimulatedObjectStore:
    """Objects under ``root`` served as endpoint ``endpoint``.

    ``down`` simulates a hard outage: every request is refused outright
    (after the connection-setup latency — refusal is not free). Toggle it
    mid-test to model a flapping endpoint.
    """

    def __init__(
        self,
        endpoint: str,
        root: str | Path,
        profile: NetworkProfile = NetworkProfile(),
        seed: int = 0,
    ) -> None:
        self.endpoint = endpoint
        self.root = Path(root)
        if not self.root.exists():
            raise FileNotFoundError(f"object store root {self.root} does not exist")
        self.model = NetworkModel(profile, seed=seed)
        self.stats = SimStoreStats()  # guarded-by: _lock
        self._lock = _sync.create_lock("SimulatedObjectStore._lock")
        self._down = False  # guarded-by: _lock

    # -- outage control ------------------------------------------------------

    @property
    def down(self) -> bool:
        with self._lock:
            return self._down

    def set_down(self, down: bool = True) -> None:
        with self._lock:
            self._down = down

    # -- request plumbing ----------------------------------------------------

    def _path_of(self, key: str) -> Path:
        path = (self.root / key).resolve()
        if not path.is_relative_to(self.root.resolve()):
            raise FileNotFoundError(f"key {key!r} escapes the store root")
        return path

    def _request(
        self,
        op_key: str,
        cancel: Optional[threading.Event],
        token: Optional[object],
    ) -> None:
        """Charge one request's setup: latency, outage refusal, loss.

        Raises :class:`RequestAbandoned` when the per-attempt cancel event
        fires mid-wait (a hedge race decided elsewhere), the token's typed
        interruption when the query is cancelled, ``ConnectionRefusedError``
        on outage, ``ConnectionResetError`` on a modeled loss.
        """
        with self._lock:
            self.stats.requests += 1
            down = self._down
        draw = self.model.draw(op_key)
        if draw.latency_seconds > 0:
            interrupted = interruptible_wait(
                draw.latency_seconds, cancel=cancel, token=token
            )
            if interrupted == "cancel":
                raise RequestAbandoned(op_key)
            if interrupted == "token":
                raise token.interruption()  # type: ignore[union-attr]
        if down:
            with self._lock:
                self.stats.refused += 1
            raise ConnectionRefusedError(
                f"endpoint {self.endpoint!r} refused the connection"
            )
        if draw.lost:
            with self._lock:
                self.stats.lost += 1
            raise ConnectionResetError(
                f"connection to {self.endpoint!r} reset ({op_key})"
            )

    # -- object API ----------------------------------------------------------

    def list_keys(
        self,
        cancel: Optional[threading.Event] = None,
        token: Optional[object] = None,
    ) -> list[str]:
        """Every object key, sorted (one LIST request)."""
        self._request("LIST", cancel, token)
        with self._lock:
            self.stats.lists += 1
        return sorted(
            p.relative_to(self.root).as_posix()
            for p in self.root.rglob("*")
            if p.is_file()
        )

    def head(
        self,
        key: str,
        cancel: Optional[threading.Event] = None,
        token: Optional[object] = None,
    ) -> ObjectStat:
        """Size and mtime of one object (one HEAD request)."""
        self._request(f"HEAD:{key}", cancel, token)
        with self._lock:
            self.stats.heads += 1
        st = self._path_of(key).stat()  # FileNotFoundError when absent
        return ObjectStat(key=key, size=st.st_size, mtime_ns=st.st_mtime_ns)

    def get(
        self,
        key: str,
        start: int = 0,
        length: Optional[int] = None,
        cancel: Optional[threading.Event] = None,
        token: Optional[object] = None,
    ) -> bytes:
        """One (ranged) GET: bytes ``[start, start+length)`` of the object.

        ``length=None`` reads to the end. The payload streams in
        :data:`CHUNK_BYTES` chunks, each paying the bandwidth model and
        each passing through the fault-plan hook, so mid-stream disconnects
        and stalls land mid-payload like they would on a socket.
        """
        if start < 0 or (length is not None and length < 0):
            raise ValueError("start/length must be non-negative")
        self._request(f"GET:{key}", cancel, token)
        path = self._path_of(key)
        size = path.stat().st_size  # FileNotFoundError when absent
        ranged = start > 0 or (length is not None and start + length < size)
        with self._lock:
            self.stats.gets += 1
            if ranged:
                self.stats.ranged_gets += 1
        uri = remote_uri(self.endpoint, key)
        remaining = (
            max(0, size - start) if length is None else min(length, max(0, size - start))
        )
        chunks: list[bytes] = []
        with open_volume(path, uri) as handle:
            handle.seek(start)
            while remaining > 0:
                chunk = handle.read(min(CHUNK_BYTES, remaining))
                if not chunk:
                    break
                chunks.append(chunk)
                remaining -= len(chunk)
                transfer = self.model.transfer_seconds(len(chunk))
                if transfer > 0:
                    interrupted = interruptible_wait(
                        transfer, cancel=cancel, token=token
                    )
                    if interrupted == "cancel":
                        raise RequestAbandoned(f"GET:{key}")
                    if interrupted == "token":
                        raise token.interruption()  # type: ignore[union-attr]
        data = b"".join(chunks)
        with self._lock:
            self.stats.bytes_served += len(data)
        return data


__all__ = [
    "CHUNK_BYTES",
    "ObjectStat",
    "SimStoreStats",
    "SimulatedObjectStore",
]
