"""Remote repositories over a resilient transport.

The remote subsystem makes ``remote://endpoint/key`` URIs first-class
sources: a :class:`SimulatedObjectStore` serves objects under a seeded
network model (latency, jitter, heavy tails, bandwidth, loss), a
:class:`ResilientTransport` wraps every request in timeouts, a per-query
retry budget with jittered backoff, hedged backup requests, and a
per-endpoint circuit breaker, and a :class:`RemoteRepository` maps the
engine's selective-mount byte spans onto coalesced **ranged GETs** staged
into sparse local files. :class:`FederatedRepository` lets one query span
local and remote sources with per-endpoint failure isolation.
"""

from .federation import FederatedRepository
from .netmodel import NetworkModel, NetworkProfile, interruptible_wait
from .repository import (
    RemoteExtractor,
    RemoteRepository,
    RemoteRepositoryStats,
    coalesce_spans,
)
from .simstore import ObjectStat, SimStoreStats, SimulatedObjectStore
from .transport import (
    LatencyTracker,
    ResilientTransport,
    TransportPolicy,
    TransportStats,
)
from .uris import (
    REMOTE_SCHEME,
    endpoint_of,
    is_remote_uri,
    parse_remote_uri,
    remote_uri,
)

__all__ = [
    "FederatedRepository",
    "LatencyTracker",
    "NetworkModel",
    "NetworkProfile",
    "ObjectStat",
    "REMOTE_SCHEME",
    "RemoteExtractor",
    "RemoteRepository",
    "RemoteRepositoryStats",
    "ResilientTransport",
    "SimStoreStats",
    "SimulatedObjectStore",
    "TransportPolicy",
    "TransportStats",
    "coalesce_spans",
    "endpoint_of",
    "interruptible_wait",
    "is_remote_uri",
    "parse_remote_uri",
    "remote_uri",
]
