"""Deterministic network modeling for the simulated object store.

A :class:`NetworkProfile` declares the link's shape — base request latency
with jitter, an optional heavy tail, a bandwidth cap, and a per-request
loss probability. A :class:`NetworkModel` turns it into *deterministic*
per-request draws: every ``(key, access-index)`` pair gets its own
``random.Random`` seeded from the model seed, so the n-th request for a key
sees the same latency and the same loss verdict no matter how mount-worker
threads interleave. That is what makes the remote chaos grid replayable.

Waits are always interruptible: :func:`interruptible_wait` slices the wait
over the caller's cancel events, so a cancelled query (or an abandoned
hedge attempt) stops paying modeled latency within ~5 ms.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Optional

from .. import _sync

# Wait slice for interruptible waits: the bound on how stale a cancel
# check can be mid-wait.
_WAIT_SLICE_SECONDS = 0.005

# Fallback event for waits with no cancel source wired — same code path,
# never set.
_NEVER = threading.Event()


class RequestAbandoned(Exception):
    """Internal: a hedged/raced attempt was told to stop — not an error.

    Never surfaces to callers of the transport; the losing attempt raises
    it out of the store, and the transport swallows it.
    """


def interruptible_wait(
    seconds: float,
    cancel: Optional[threading.Event] = None,
    token: Optional[object] = None,
) -> Optional[str]:
    """Wait up to ``seconds``; return what cut it short, if anything.

    Returns ``"cancel"`` when the per-attempt cancel event fired (a hedge
    race was decided elsewhere), ``"token"`` when the query's cancellation
    token fired, None when the wait ran to completion. ``token`` is a
    :class:`~repro.core.governor.CancellationToken` duck type (``fired`` +
    ``wait``); both sources are optional. The wait is sliced so each source
    is polled at least every ``_WAIT_SLICE_SECONDS`` even though only one
    can be waited on natively.
    """
    deadline = time.monotonic() + seconds
    while True:
        if cancel is not None and cancel.is_set():
            return "cancel"
        if token is not None and getattr(token, "fired", False):
            return "token"
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return None
        slice_seconds = min(remaining, _WAIT_SLICE_SECONDS)
        if token is not None:
            token.wait(slice_seconds)  # type: ignore[attr-defined]
        elif cancel is not None:
            cancel.wait(slice_seconds)
        else:
            _NEVER.wait(slice_seconds)


@dataclass(frozen=True)
class NetworkProfile:
    """The link shape between the engine and one endpoint.

    ``latency_seconds`` is the per-request setup cost (the thing ranged-GET
    coalescing amortizes); ``bandwidth_bytes_per_second`` streams the
    payload (None = infinite); ``jitter`` spreads latency uniformly in
    ``[1-jitter, 1+jitter]``; the heavy tail turns a ``heavy_tail_probability``
    fraction of requests into ``heavy_tail_multiplier``× stragglers (what
    hedged reads exist to beat); ``loss_probability`` resets that fraction
    of requests mid-flight.
    """

    latency_seconds: float = 0.0
    jitter: float = 0.0
    bandwidth_bytes_per_second: Optional[float] = None
    loss_probability: float = 0.0
    heavy_tail_probability: float = 0.0
    heavy_tail_multiplier: float = 10.0

    def __post_init__(self) -> None:
        if self.latency_seconds < 0:
            raise ValueError("latency_seconds must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if (
            self.bandwidth_bytes_per_second is not None
            and self.bandwidth_bytes_per_second <= 0
        ):
            raise ValueError("bandwidth_bytes_per_second must be positive")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError("loss_probability must be in [0, 1)")
        if not 0.0 <= self.heavy_tail_probability < 1.0:
            raise ValueError("heavy_tail_probability must be in [0, 1)")
        if self.heavy_tail_multiplier < 1.0:
            raise ValueError("heavy_tail_multiplier must be >= 1")


@dataclass(frozen=True)
class RequestDraw:
    """One request's modeled fate: its setup latency and whether it is lost."""

    latency_seconds: float
    lost: bool
    heavy_tailed: bool


@_sync.guarded
class NetworkModel:
    """Per-``(key, access-index)`` deterministic draws over a profile.

    The per-key access counter lives behind a lock, but the draw itself is
    a pure function of ``(seed, key, index)`` — thread interleaving can
    reorder *which* request gets index n, never what index n costs.
    """

    def __init__(self, profile: NetworkProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self._lock = _sync.create_lock("NetworkModel._lock")
        self._accesses: dict[str, int] = {}  # guarded-by: _lock

    def draw(self, key: str) -> RequestDraw:
        with self._lock:
            index = self._accesses.get(key, 0)
            self._accesses[key] = index + 1
        rng = random.Random(f"{self.seed}:{key}:{index}")
        profile = self.profile
        latency = profile.latency_seconds
        if profile.jitter > 0:
            latency *= 1.0 + profile.jitter * (2.0 * rng.random() - 1.0)
        heavy = (
            profile.heavy_tail_probability > 0
            and rng.random() < profile.heavy_tail_probability
        )
        if heavy:
            latency *= profile.heavy_tail_multiplier
        lost = (
            profile.loss_probability > 0
            and rng.random() < profile.loss_probability
        )
        return RequestDraw(latency_seconds=latency, lost=lost, heavy_tailed=heavy)

    def transfer_seconds(self, nbytes: int) -> float:
        """Streaming time for ``nbytes`` under the bandwidth cap."""
        bandwidth = self.profile.bandwidth_bytes_per_second
        if bandwidth is None or nbytes <= 0:
            return 0.0
        return nbytes / bandwidth


__all__ = [
    "NetworkModel",
    "NetworkProfile",
    "RequestAbandoned",
    "RequestDraw",
    "interruptible_wait",
]
