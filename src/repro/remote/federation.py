"""Federating local and remote repositories behind one repository facade.

A :class:`FederatedRepository` is the paper's "repository of repositories":
one query addresses files living in a local xSEED tree *and* in any number
of remote endpoints, and the engine below never notices — every repository
protocol hook dispatches on URI ownership (``owns_uri``) to the member that
serves it.

Failure isolation is the point: each remote member carries its own
transport (retry budget, circuit breaker, hedging), so a dead endpoint
fails *its* files' mounts with errors naming the endpoint while the other
members keep answering. Combined with ``on_mount_error="skip"`` the query
degrades to the surviving sources and the
:class:`~repro.core.mounting.MountFailureReport` says exactly which
endpoint dropped out.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from ..db.errors import IngestError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.governor import CancellationToken
    from ..ingest.formats import FormatExtractor, FormatRegistry


class FederatedRepository:
    """Member repositories presented as one, dispatching by URI ownership.

    Members are consulted in order; the first whose ``owns_uri`` claims a
    URI serves it. A :class:`~repro.mseed.repository.FileRepository` claims
    every non-remote URI, so include at most one local member (and order is
    otherwise irrelevant because remote members claim disjoint endpoints).
    """

    def __init__(self, members: Sequence[object]) -> None:
        if not members:
            raise IngestError("a federation needs at least one member repository")
        self.members = tuple(members)
        suffixes: list[str] = []
        for member in self.members:
            for suffix in getattr(member, "suffixes", None) or (member.suffix,):
                if suffix not in suffixes:
                    suffixes.append(suffix)
        self.suffixes = tuple(suffixes)

    @property
    def suffix(self) -> str:
        return self.suffixes[0]

    def _member_for(self, uri: str) -> object:
        for member in self.members:
            owns = getattr(member, "owns_uri", None)
            if owns is not None and owns(uri):
                return member
        raise IngestError(f"no federation member serves URI {uri!r}")

    # -- repository protocol -------------------------------------------------

    def uris(self) -> list[str]:
        out: list[str] = []
        for member in self.members:
            out.extend(member.uris())
        return out

    def __len__(self) -> int:
        return len(self.uris())

    def __iter__(self) -> Iterator[str]:
        return iter(self.uris())

    def owns_uri(self, uri: str) -> bool:
        return any(
            getattr(member, "owns_uri", lambda _uri: False)(uri)
            for member in self.members
        )

    def path_of(self, uri: str) -> Path:
        return self._member_for(uri).path_of(uri)

    def signature_of(self, uri: str) -> tuple[int, int]:
        member = self._member_for(uri)
        signature_of = getattr(member, "signature_of", None)
        if signature_of is not None:
            return signature_of(uri)
        st = member.path_of(uri).stat()
        return (st.st_mtime_ns, st.st_size)

    def size_of(self, uri: str) -> int:
        member = self._member_for(uri)
        size_of = getattr(member, "size_of", None)
        if size_of is not None:
            return size_of(uri)
        return member.path_of(uri).stat().st_size

    def total_bytes(self) -> int:
        return sum(member.total_bytes() for member in self.members)

    def extractor_for(
        self, path: Path, uri: str, registry: "FormatRegistry"
    ) -> "FormatExtractor":
        member = self._member_for(uri)
        extractor_for = getattr(member, "extractor_for", None)
        if extractor_for is not None:
            return extractor_for(path, uri, registry)
        return registry.for_path(path)

    def begin_query(self, token: Optional["CancellationToken"] = None) -> None:
        for member in self.members:
            begin_query = getattr(member, "begin_query", None)
            if begin_query is not None:
                begin_query(token)

    def close(self) -> None:
        for member in self.members:
            close = getattr(member, "close", None)
            if close is not None:
                close()


__all__ = ["FederatedRepository"]
