"""The ``remote://endpoint/key`` URI scheme.

Kept dependency-free on purpose: the mount pool and the shared scheduler
only need :func:`endpoint_of` to group work per endpoint, and importing the
whole remote subsystem from ``repro.core`` would create an import cycle
(``core.mounting`` → ``remote`` → ``core.governor``).
"""

from __future__ import annotations

from typing import Optional, Tuple

REMOTE_SCHEME = "remote://"


def remote_uri(endpoint: str, key: str) -> str:
    """The URI of object ``key`` served by ``endpoint``."""
    if not endpoint or "/" in endpoint:
        raise ValueError(f"endpoint must be a non-empty host name, got {endpoint!r}")
    return f"{REMOTE_SCHEME}{endpoint}/{key.lstrip('/')}"


def is_remote_uri(uri: str) -> bool:
    return uri.startswith(REMOTE_SCHEME)


def parse_remote_uri(uri: str) -> Tuple[str, str]:
    """``remote://endpoint/key`` → ``(endpoint, key)``.

    Raises ``ValueError`` on anything else — callers on the mount path wrap
    that into a typed ingest error with the URI attached.
    """
    if not is_remote_uri(uri):
        raise ValueError(f"not a remote URI: {uri!r}")
    rest = uri[len(REMOTE_SCHEME):]
    endpoint, sep, key = rest.partition("/")
    if not endpoint or not sep or not key:
        raise ValueError(f"malformed remote URI: {uri!r}")
    return endpoint, key


def endpoint_of(uri: str) -> Optional[str]:
    """The endpoint a URI is served by, or None for local files.

    Never raises: a malformed remote URI groups under its host-ish prefix,
    which is all the endpoint-aware routing needs.
    """
    if not is_remote_uri(uri):
        return None
    rest = uri[len(REMOTE_SCHEME):]
    endpoint = rest.partition("/")[0]
    return endpoint or None


__all__ = [
    "REMOTE_SCHEME",
    "endpoint_of",
    "is_remote_uri",
    "parse_remote_uri",
    "remote_uri",
]
