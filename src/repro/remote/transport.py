"""The resilient transport: every remote request goes through here.

One :class:`ResilientTransport` fronts one endpoint's object store and
wraps each request in four layers of protection, outside-in:

1. **Per-endpoint circuit breaker** — the PR 5 :class:`CircuitBreaker`
   keyed by *endpoint* instead of URI: an endpoint that keeps failing is
   refused outright (``CircuitOpenError`` carrying the endpoint name) until
   a half-open probe succeeds. One dead endpoint costs one failure streak,
   not a retry ladder per file behind it.
2. **Per-query retry budget** — retries and hedges spend from one
   :class:`~repro.core.governor.RetryBudget` shared by all of a query's
   mount workers, so a flapping endpoint degrades the query instead of
   stretching it without bound.
3. **Jittered exponential backoff** between attempts, waited on the query's
   cancellation token.
4. **Per-request timeout + hedged backup requests** — attempts run on a
   small worker pool; the caller's wait is sliced against the token, a
   request that outlives its timeout is abandoned, and once the latency
   tracker has enough samples a backup request is launched when the primary
   outlives the configured percentile — first success wins, the loser is
   cancelled (tail latency without duplicate side effects: requests are
   read-only).

Raw store errors are wrapped into the typed taxonomy here:
``FileNotFoundError`` → :class:`RemoteObjectMissingError` (non-transient);
everything else OS-shaped → :class:`RemoteTransportError` (transient).
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from .. import _sync
from ..core.governor import CancellationToken, CircuitBreaker, RetryBudget
from ..db.errors import (
    RemoteObjectMissingError,
    RemoteTransportError,
)
from .netmodel import RequestAbandoned, interruptible_wait
from .simstore import ObjectStat, SimulatedObjectStore

T = TypeVar("T")

# Caller-side wait slice while attempts run on the pool: bounds how stale a
# token/timeout/hedge check can be.
_POLL_SECONDS = 0.005


@dataclass(frozen=True)
class TransportPolicy:
    """Knobs of the resilience layer (all per-request unless noted).

    ``request_timeout_seconds=None`` and ``hedge_enabled=False`` together
    select the zero-thread fast path: requests run inline on the calling
    mount worker — the configuration the ≤2 % fault-free overhead target is
    measured for.
    """

    request_timeout_seconds: Optional[float] = None
    max_attempts: int = 3
    backoff_seconds: float = 0.005
    backoff_multiplier: float = 2.0
    backoff_jitter: float = 0.5
    retry_budget_attempts: int = 64  # per query, shared across workers
    hedge_enabled: bool = False
    hedge_percentile: float = 0.95  # launch backup past this latency…
    hedge_multiplier: float = 1.5  # …times this factor
    hedge_min_samples: int = 8  # no hedging before the tracker warms up
    jitter_seed: int = 0  # backoff jitter stream (deterministic tests)

    def __post_init__(self) -> None:
        if self.request_timeout_seconds is not None and (
            self.request_timeout_seconds <= 0
        ):
            raise ValueError("request_timeout_seconds must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be >= 0")
        if self.retry_budget_attempts < 0:
            raise ValueError("retry_budget_attempts must be >= 0")
        if not 0.0 < self.hedge_percentile < 1.0:
            raise ValueError("hedge_percentile must be in (0, 1)")
        if self.hedge_multiplier < 1.0:
            raise ValueError("hedge_multiplier must be >= 1")
        if self.hedge_min_samples < 1:
            raise ValueError("hedge_min_samples must be >= 1")

    @property
    def inline(self) -> bool:
        """True when requests can run on the caller with zero extra threads."""
        return self.request_timeout_seconds is None and not self.hedge_enabled


@_sync.guarded
class LatencyTracker:
    """Ring buffer of completed request latencies, for the hedge trigger."""

    def __init__(self, capacity: int = 128) -> None:
        self._lock = _sync.create_lock("LatencyTracker._lock")
        self._samples: deque[float] = deque(maxlen=capacity)  # guarded-by: _lock

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def percentile(self, p: float, min_samples: int = 1) -> Optional[float]:
        """The p-quantile of recent latencies, or None before warm-up."""
        with self._lock:
            if len(self._samples) < min_samples:
                return None
            ordered = sorted(self._samples)
        index = min(len(ordered) - 1, max(0, int(p * len(ordered))))
        return ordered[index]


@dataclass
class TransportStats:
    requests: int = 0
    failures: int = 0  # failed attempts (pre-retry)
    retries: int = 0
    retries_denied: int = 0  # retry wanted, budget dry
    timeouts: int = 0
    hedges: int = 0  # backup requests launched
    hedge_wins: int = 0  # races the backup won
    hedges_denied: int = 0  # hedge wanted, budget dry
    breaker_refusals: int = 0


class _Race:
    """First-success-wins outcome box for one request's attempt set."""

    def __init__(self) -> None:
        self.lock = _sync.create_lock("_Race.lock")
        self.event = threading.Event()
        self.pending = 0  # guarded-by: lock
        self.result: Optional[object] = None  # guarded-by: lock
        self.won = False  # guarded-by: lock
        self.winner_hedge = False  # guarded-by: lock
        self.errors: list[BaseException] = []  # guarded-by: lock

    def offer(self, result: object, is_hedge: bool) -> None:
        with self.lock:
            self.pending -= 1
            if not self.won:
                self.won = True
                self.result = result
                self.winner_hedge = is_hedge
        self.event.set()

    def offer_error(self, exc: BaseException) -> None:
        with self.lock:
            self.pending -= 1
            if not isinstance(exc, RequestAbandoned):
                self.errors.append(exc)
            exhausted = self.pending <= 0 and not self.won
        if exhausted:
            self.event.set()


class ResilientTransport:
    """All requests to one endpoint, wrapped in the resilience layers."""

    def __init__(
        self,
        store: SimulatedObjectStore,
        policy: TransportPolicy = TransportPolicy(),
        breaker: Optional[CircuitBreaker] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store
        self.policy = policy
        # Endpoint-keyed breaker. Sharable across transports (a federation
        # passes one) — the key space is endpoints, so transports don't
        # collide.
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(failure_threshold=3, cooldown_seconds=0.25)
        )
        self.retry_budget = RetryBudget(policy.retry_budget_attempts)
        self.latencies = LatencyTracker()
        self.stats = TransportStats()  # guarded-by: _lock
        self._clock = clock
        self._lock = _sync.create_lock("ResilientTransport._lock")
        self._rng = random.Random(policy.jitter_seed)  # guarded-by: _lock
        # unguarded-ok: written once per query by begin_query before mount
        # workers start, read-only while they run.
        self._token: Optional[CancellationToken] = None
        self._executor: Optional[ThreadPoolExecutor] = None  # guarded-by: _lock

    # -- lifecycle -----------------------------------------------------------

    def begin_query(self, token: Optional[CancellationToken] = None) -> None:
        """Adopt the query's token and refill the per-query retry budget."""
        self._token = token
        self.retry_budget.reset()

    def close(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)

    def _pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=16,
                    thread_name_prefix=f"transport-{self.store.endpoint}",
                )
            return self._executor

    # -- public request API --------------------------------------------------

    def list_keys(self) -> list[str]:
        return self._call(
            "LIST",
            None,
            lambda cancel: self.store.list_keys(cancel=cancel, token=self._token),
        )

    def head(self, key: str, uri: Optional[str] = None) -> ObjectStat:
        return self._call(
            f"HEAD:{key}",
            uri,
            lambda cancel: self.store.head(key, cancel=cancel, token=self._token),
        )

    def get(
        self,
        key: str,
        start: int = 0,
        length: Optional[int] = None,
        uri: Optional[str] = None,
    ) -> bytes:
        return self._call(
            f"GET:{key}",
            uri,
            lambda cancel: self.store.get(
                key, start, length, cancel=cancel, token=self._token
            ),
        )

    # -- internals -----------------------------------------------------------

    def _call(
        self,
        op: str,
        uri: Optional[str],
        fn: Callable[[Optional[threading.Event]], T],
    ) -> T:
        endpoint = self.store.endpoint
        policy = self.policy
        if not self.breaker.allow(endpoint):
            with self._lock:
                self.stats.breaker_refusals += 1
            raise self.breaker.refusal(uri or op, endpoint=endpoint)
        with self._lock:
            self.stats.requests += 1
        attempt = 0
        while True:
            try:
                result = self._attempt(op, uri, fn)
            except FileNotFoundError as exc:
                # The endpoint *answered* — this is a repository fact, not
                # a transport failure; it neither trips the breaker nor
                # earns a retry.
                self.breaker.record_success(endpoint)
                raise RemoteObjectMissingError(
                    f"{op}: object does not exist on {endpoint!r}",
                    uri=uri,
                    endpoint=endpoint,
                    cause=exc,
                ) from exc
            except RemoteTransportError as exc:
                failure: RemoteTransportError = exc
            except OSError as exc:
                failure = RemoteTransportError(
                    f"{op} failed: {exc}",
                    uri=uri,
                    endpoint=endpoint,
                    cause=exc,
                )
            else:
                self.breaker.record_success(endpoint)
                return result
            self.breaker.record_failure(endpoint, failure)
            with self._lock:
                self.stats.failures += 1
            attempt += 1
            if not failure.transient or attempt >= policy.max_attempts:
                raise failure
            if not self.retry_budget.try_spend():
                with self._lock:
                    self.stats.retries_denied += 1
                raise failure
            if not self.breaker.allow(endpoint):
                # This failure streak just opened the circuit — stop here
                # rather than probing it from inside one request's ladder.
                with self._lock:
                    self.stats.breaker_refusals += 1
                raise self.breaker.refusal(uri or op, endpoint=endpoint)
            backoff = policy.backoff_seconds * (
                policy.backoff_multiplier ** (attempt - 1)
            )
            if policy.backoff_jitter > 0:
                with self._lock:
                    backoff *= 1.0 + policy.backoff_jitter * self._rng.random()
            with self._lock:
                self.stats.retries += 1
            if backoff > 0:
                if interruptible_wait(backoff, token=self._token) == "token":
                    assert self._token is not None
                    raise self._token.interruption() from failure

    def _attempt(
        self,
        op: str,
        uri: Optional[str],
        fn: Callable[[Optional[threading.Event]], T],
    ) -> T:
        """One logical attempt: inline, or raced with timeout/hedging."""
        policy = self.policy
        if policy.inline:
            started = self._clock()
            result = fn(None)
            self.latencies.record(self._clock() - started)
            return result
        return self._race(op, uri, fn)

    def _race(
        self,
        op: str,
        uri: Optional[str],
        fn: Callable[[Optional[threading.Event]], T],
    ) -> T:
        policy = self.policy
        endpoint = self.store.endpoint
        race = _Race()
        cancels: list[threading.Event] = []
        pool = self._pool()

        def launch(is_hedge: bool) -> None:
            cancel = threading.Event()
            cancels.append(cancel)
            with race.lock:
                race.pending += 1

            def run() -> None:
                try:
                    race.offer(fn(cancel), is_hedge)
                except BaseException as exc:  # noqa: BLE001 — forwarded to caller
                    race.offer_error(exc)

            pool.submit(run)

        started = self._clock()
        launch(is_hedge=False)
        hedge_at: Optional[float] = None
        if policy.hedge_enabled:
            baseline = self.latencies.percentile(
                policy.hedge_percentile, policy.hedge_min_samples
            )
            if baseline is not None:
                hedge_at = started + baseline * policy.hedge_multiplier
        timeout_at = (
            None
            if policy.request_timeout_seconds is None
            else started + policy.request_timeout_seconds
        )
        hedged = False
        try:
            while not race.event.wait(_POLL_SECONDS):
                token = self._token
                if token is not None and token.fired:
                    raise token.interruption()  # type: ignore[misc]
                now = self._clock()
                if timeout_at is not None and now >= timeout_at:
                    with self._lock:
                        self.stats.timeouts += 1
                    raise RemoteTransportError(
                        f"{op} timed out after "
                        f"{policy.request_timeout_seconds}s",
                        uri=uri,
                        endpoint=endpoint,
                    )
                if hedge_at is not None and not hedged and now >= hedge_at:
                    hedged = True
                    if self.retry_budget.try_spend():
                        with self._lock:
                            self.stats.hedges += 1
                        launch(is_hedge=True)
                    else:
                        with self._lock:
                            self.stats.hedges_denied += 1
        finally:
            # Winner decided, timeout, or cancellation: every still-running
            # attempt is told to stop paying modeled latency.
            for cancel in cancels:
                cancel.set()
        with race.lock:
            won = race.won
            winner_hedge = race.winner_hedge
            result = race.result
            errors = list(race.errors)
        if won:
            if winner_hedge:
                with self._lock:
                    self.stats.hedge_wins += 1
            self.latencies.record(self._clock() - started)
            return result  # type: ignore[return-value]
        raise errors[0] if errors else RemoteTransportError(
            f"{op}: all attempts abandoned", uri=uri, endpoint=endpoint
        )


__all__ = [
    "LatencyTracker",
    "ResilientTransport",
    "TransportPolicy",
    "TransportStats",
]
