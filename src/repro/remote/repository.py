"""The remote repository: ranged GETs staged into local files.

A :class:`RemoteRepository` makes an endpoint's object store look like a
:class:`~repro.mseed.repository.FileRepository` to the rest of the engine.
The translation happens through the repository protocol hooks:

``path_of``
    A remote URI resolves to a *staging* path under the repository's
    staging directory. The file may not exist yet — the extractor wrapper
    stages exactly the bytes a mount needs before the inner format
    extractor reads them.
``signature_of``
    Answered by a HEAD: ``(mtime_ns, size)`` of the remote object, so the
    mount layer's staleness checks observe the *remote* file, not the
    staging copy.
``extractor_for``
    Wraps the registry's per-suffix choice in :class:`RemoteExtractor`,
    which maps the selective-mount byte map onto **ranged GETs**: wanted
    record spans are coalesced (gaps smaller than one request's worth of
    bandwidth are cheaper to read through than to re-negotiate) and fetched
    into a sparse staging file; the inner extractor then seeks the staging
    file exactly as it would a local volume. Whole-file paths (metadata
    extraction, non-addressable byte maps) stage the whole object once and
    reuse it until the remote signature changes.
``begin_query``
    Resets the transport's per-query retry budget and adopts the query's
    cancellation token.

All requests go through the :class:`~repro.remote.transport.ResilientTransport`
(timeouts, retry budget, hedging, per-endpoint circuit breaker), so every
failure surfaces as a typed error naming the endpoint. ``uris()`` keeps the
last successful listing: an endpoint that dies *between* queries still
resolves its file set, and the failures then surface per-file at mount
time — where skip-and-report can degrade gracefully — instead of killing
metadata resolution outright.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence

from .. import _sync
from ..core.governor import CancellationToken, CircuitBreaker
from ..db.errors import FileIngestError, IngestError
from ..ingest.formats import (
    FormatExtractor,
    FormatRegistry,
    MountOutcome,
    MountRequest,
    SelectiveFormatExtractor,
)
from .simstore import SimulatedObjectStore
from .transport import ResilientTransport, TransportPolicy
from .uris import endpoint_of, parse_remote_uri, remote_uri

# Fallback coalescing gap when the profile gives no latency×bandwidth
# product to derive one from.
DEFAULT_COALESCE_GAP_BYTES = 64 * 1024


def coalesce_spans(
    spans: Sequence[tuple[int, int]], gap_bytes: int
) -> list[tuple[int, int]]:
    """Merge ``(start, end)`` byte ranges whose gaps are <= ``gap_bytes``.

    The ranged-GET planner: each merged range costs one request's latency,
    so a gap cheaper to stream through than to re-negotiate is absorbed.
    Input ranges may overlap and arrive in any order.
    """
    if not spans:
        return []
    ordered = sorted((s, e) for s, e in spans if e > s)
    if not ordered:
        return []
    merged: list[tuple[int, int]] = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start - last_end <= gap_bytes:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _subtract_ranges(
    wanted: list[tuple[int, int]], covered: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """The parts of ``wanted`` not covered by ``covered`` (both merged/sorted)."""
    missing: list[tuple[int, int]] = []
    for start, end in wanted:
        cursor = start
        for cov_start, cov_end in covered:
            if cov_end <= cursor or cov_start >= end:
                continue
            if cov_start > cursor:
                missing.append((cursor, cov_start))
            cursor = max(cursor, cov_end)
            if cursor >= end:
                break
        if cursor < end:
            missing.append((cursor, end))
    return missing


@dataclass
class _StagedFile:
    """What of one object the staging file currently holds, and for which
    remote version."""

    signature: tuple[int, int]
    ranges: list[tuple[int, int]] = field(default_factory=list)
    whole: bool = False


@dataclass
class RemoteRepositoryStats:
    remote_bytes: int = 0  # bytes actually moved off the endpoint
    span_fetches: int = 0  # fetch_spans calls that issued >= 1 GET
    ranged_gets: int = 0  # coalesced ranged GETs issued
    whole_fetches: int = 0  # whole-object GETs issued
    staged_reuses: int = 0  # calls fully served from the staging file
    invalidations: int = 0  # staged state dropped: remote signature changed
    listing_fallbacks: int = 0  # uris() served from the last-known listing


@_sync.guarded
class RemoteRepository:
    """One endpoint's objects, presented as a repository of remote URIs."""

    def __init__(
        self,
        store: SimulatedObjectStore,
        staging_dir: str | Path,
        policy: TransportPolicy = TransportPolicy(),
        suffix: str | tuple[str, ...] = (".xseed", ".tscsv"),
        breaker: Optional[CircuitBreaker] = None,
        coalesce_gap_bytes: Optional[int] = None,
    ) -> None:
        self.endpoint = store.endpoint
        self.transport = ResilientTransport(store, policy, breaker=breaker)
        self.staging_root = Path(staging_dir)
        self.staging_root.mkdir(parents=True, exist_ok=True)
        self.suffixes = (suffix,) if isinstance(suffix, str) else tuple(suffix)
        if coalesce_gap_bytes is None:
            profile = store.model.profile
            if profile.bandwidth_bytes_per_second is not None:
                # Gaps that stream faster than one request round-trips are
                # cheaper to read through than to split.
                coalesce_gap_bytes = max(
                    1,
                    int(
                        profile.latency_seconds
                        * profile.bandwidth_bytes_per_second
                    ),
                )
            else:
                coalesce_gap_bytes = DEFAULT_COALESCE_GAP_BYTES
        self.coalesce_gap_bytes = coalesce_gap_bytes
        self.stats = RemoteRepositoryStats()  # guarded-by: _lock
        self._lock = _sync.create_lock("RemoteRepository._lock")
        self._staged: dict[str, _StagedFile] = {}  # guarded-by: _lock
        self._key_locks: dict[str, threading.Lock] = {}  # guarded-by: _lock
        self._last_listing: Optional[list[str]] = None  # guarded-by: _lock

    @property
    def suffix(self) -> str:
        return self.suffixes[0]

    # -- repository protocol -------------------------------------------------

    def uris(self) -> list[str]:
        try:
            keys = self.transport.list_keys()
        except FileIngestError:
            with self._lock:
                cached = self._last_listing
                if cached is None:
                    raise
                # Stale-but-available: the endpoint is unreachable, but we
                # know what it held. Per-file mount failures then degrade
                # per the query's on_mount_error policy instead of the
                # whole federation losing metadata resolution.
                self.stats.listing_fallbacks += 1
                keys = list(cached)
        else:
            keys = [
                key
                for key in keys
                if any(key.endswith(suffix) for suffix in self.suffixes)
            ]
            with self._lock:
                self._last_listing = list(keys)
        return [remote_uri(self.endpoint, key) for key in keys]

    def __len__(self) -> int:
        return len(self.uris())

    def __iter__(self) -> Iterator[str]:
        return iter(self.uris())

    def owns_uri(self, uri: str) -> bool:
        return endpoint_of(uri) == self.endpoint

    def _key(self, uri: str) -> str:
        try:
            endpoint, key = parse_remote_uri(uri)
        except ValueError as exc:
            raise IngestError(str(exc)) from exc
        if endpoint != self.endpoint:
            raise IngestError(
                f"URI {uri!r} belongs to endpoint {endpoint!r}, "
                f"not {self.endpoint!r}"
            )
        return key

    def path_of(self, uri: str) -> Path:
        """The URI's staging path (created lazily; may not exist yet)."""
        path = (self.staging_root / self._key(uri)).resolve()
        if not path.is_relative_to(self.staging_root.resolve()):
            raise IngestError(f"URI {uri!r} escapes the staging root")
        path.parent.mkdir(parents=True, exist_ok=True)
        return path

    def signature_of(self, uri: str) -> tuple[int, int]:
        return self.transport.head(self._key(uri), uri=uri).signature

    def size_of(self, uri: str) -> int:
        return self.transport.head(self._key(uri), uri=uri).size

    def total_bytes(self) -> int:
        return sum(self.size_of(uri) for uri in self.uris())

    def extractor_for(
        self, path: Path, uri: str, registry: FormatRegistry
    ) -> FormatExtractor:
        return RemoteExtractor(self, registry.for_path(path))

    def begin_query(self, token: Optional[CancellationToken] = None) -> None:
        self.transport.begin_query(token)

    def close(self) -> None:
        self.transport.close()

    # -- staging -------------------------------------------------------------

    def _lock_for(self, key: str) -> threading.Lock:
        with self._lock:
            lock = self._key_locks.get(key)
            if lock is None:
                lock = _sync.create_lock(f"RemoteRepository.key:{key}")
                self._key_locks[key] = lock
            return lock

    def ensure_whole(self, uri: str) -> int:
        """Stage the whole object; returns remote bytes moved (0 on reuse)."""
        key = self._key(uri)
        stat = self.transport.head(key, uri=uri)
        with self._lock_for(key):
            with self._lock:
                entry = self._staged.get(key)
                if (
                    entry is not None
                    and entry.whole
                    and entry.signature == stat.signature
                ):
                    self.stats.staged_reuses += 1
                    return 0
            data = self.transport.get(key, 0, None, uri=uri)
            path = self.path_of(uri)
            path.write_bytes(data)
            with self._lock:
                self._staged[key] = _StagedFile(
                    signature=stat.signature,
                    ranges=[(0, len(data))],
                    whole=True,
                )
                self.stats.whole_fetches += 1
                self.stats.remote_bytes += len(data)
            return len(data)

    def fetch_spans(
        self, uri: str, spans: Sequence[tuple[int, int]]
    ) -> int:
        """Stage the ``(byte_offset, byte_length)`` spans; returns remote
        bytes moved (0 when staging already covers them).

        Missing ranges are coalesced under the bandwidth model and fetched
        as ranged GETs into a size-exact sparse staging file, so the inner
        extractor's seeks and its truncation checks see the real object
        size while untouched regions cost nothing.
        """
        key = self._key(uri)
        stat = self.transport.head(key, uri=uri)
        wanted = coalesce_spans(
            [
                (offset, min(offset + length, stat.size))
                for offset, length in spans
                if offset < stat.size and length > 0
            ],
            gap_bytes=0,
        )
        with self._lock_for(key):
            with self._lock:
                entry = self._staged.get(key)
                if entry is not None and entry.signature != stat.signature:
                    self.stats.invalidations += 1
                    entry = None
                if entry is None:
                    entry = _StagedFile(signature=stat.signature)
                    self._staged[key] = entry
                if entry.whole:
                    self.stats.staged_reuses += 1
                    return 0
                covered = list(entry.ranges)
            # The staging file must exist at the object's exact size even
            # when nothing (or nothing *new*) needs fetching: byte-map
            # readers stat it to validate span bounds before seeking.
            path = self.path_of(uri)
            if not path.exists() or path.stat().st_size != stat.size:
                with open(path, "wb") as handle:
                    handle.truncate(stat.size)
            missing = _subtract_ranges(wanted, covered)
            if not missing:
                with self._lock:
                    self.stats.staged_reuses += 1
                return 0
            fetchable = coalesce_spans(missing, self.coalesce_gap_bytes)
            total = 0
            with open(path, "r+b") as handle:
                for start, end in fetchable:
                    data = self.transport.get(key, start, end - start, uri=uri)
                    handle.seek(start)
                    handle.write(data)
                    total += len(data)
            with self._lock:
                entry.ranges = coalesce_spans(
                    covered + fetchable, gap_bytes=0
                )
                if entry.ranges == [(0, stat.size)]:
                    entry.whole = True
                self.stats.span_fetches += 1
                self.stats.ranged_gets += len(fetchable)
                self.stats.remote_bytes += total
            return total


class RemoteExtractor:
    """Wraps a format extractor so its reads hit a staged remote object.

    ``bytes_read`` in the returned outcomes is redefined as *remote bytes
    moved by this call* — the number the bandwidth model, the governor's
    byte budget, and the ranged-GET benchmark all care about. A mount fully
    served from the staging file reports 0, exactly like a page-cache hit.
    """

    def __init__(self, repository: RemoteRepository, inner: FormatExtractor) -> None:
        self.repository = repository
        self.inner = inner

    @property
    def format_name(self) -> str:
        return self.inner.format_name

    @property
    def suffix(self) -> str:
        return self.inner.suffix

    def extract_metadata(self, path: Path, uri: str):
        self.repository.ensure_whole(uri)
        return self.inner.extract_metadata(path, uri)

    def mount(self, path: Path, uri: str):
        self.repository.ensure_whole(uri)
        return self.inner.mount(path, uri)

    def mount_selective(
        self, path: Path, uri: str, request: MountRequest
    ) -> MountOutcome:
        inner = self.inner
        spans = request.records
        selective_inner = isinstance(inner, SelectiveFormatExtractor)
        if (
            not selective_inner
            or request.selects_all
            or spans is None
            or not all(span.addressable for span in spans)
        ):
            # No trustworthy byte map (or the request wants everything):
            # stage the whole object — a header walk over a partially
            # staged sparse file would parse zeros as corruption.
            fetched = self.repository.ensure_whole(uri)
            if selective_inner:
                outcome = inner.mount_selective(path, uri, request)
                return MountOutcome(
                    mounted=outcome.mounted,
                    bytes_read=fetched,
                    records_decoded=outcome.records_decoded,
                    records_skipped=outcome.records_skipped,
                )
            mounted = inner.mount(path, uri)
            return MountOutcome(
                mounted=mounted,
                bytes_read=fetched,
                records_decoded=0,
                records_skipped=0,
            )
        wanted = [
            (span.byte_offset, span.byte_length)
            for span in spans
            if request.wants(span.start_time, span.end_time)
        ]
        fetched = self.repository.fetch_spans(uri, wanted)
        outcome = inner.mount_selective(path, uri, request)
        return MountOutcome(
            mounted=outcome.mounted,
            bytes_read=fetched,
            records_decoded=outcome.records_decoded,
            records_skipped=outcome.records_skipped,
        )


__all__ = [
    "DEFAULT_COALESCE_GAP_BYTES",
    "RemoteExtractor",
    "RemoteRepository",
    "RemoteRepositoryStats",
    "coalesce_spans",
]
