"""An automated explorer: the paper's title, literally.

:class:`EventHunter` drives the same loop a seismologist would run by hand
(§1: quick look → zoom in/out → move on), but mechanically:

1. **survey** — one cheap quick-look (Query 1 style energy aggregate) per
   station-channel-day, ranked;
2. **investigate** — retrieve the most promising waveforms (Query 2 style)
   and run the STA/LTA detector over them;
3. **zoom** — re-query a tight window around each detection to confirm it.

Because it runs through the two-stage executor, the survey phase touches
only the files it asks about and the whole hunt mounts a small fraction of
the repository — the thing the paradigm was built for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

from ..core.executor import TwoStageExecutor
from ..db.database import Database
from ..db.types import format_timestamp, parse_timestamp
from .detect import DetectedEvent, detect_events
from .session import ExplorationSession

_DAY_US = 86_400 * 1_000_000


@dataclass(frozen=True)
class SurveyEntry:
    """One quick-look result: how energetic a station-channel-day was."""

    station: str
    channel: str
    day: str
    energy: float  # mean |value| proxy from the quick look


@dataclass(frozen=True)
class ConfirmedEvent:
    """One confirmed detection with its confirming zoom."""

    station: str
    channel: str
    peak_ratio: float
    start_time: int  # µs
    end_time: int
    zoom_rows: int


@dataclass
class HuntReport:
    """Everything one hunt did and found."""

    survey: list[SurveyEntry] = field(default_factory=list)
    events: list[ConfirmedEvent] = field(default_factory=list)
    queries_run: int = 0
    files_mounted: int = 0

    def summary(self) -> str:
        lines = [
            f"hunt: {self.queries_run} queries, {self.files_mounted} file "
            f"mounts, {len(self.events)} confirmed event(s)"
        ]
        for event in self.events:
            lines.append(
                f"  {event.station}/{event.channel} "
                f"{format_timestamp(event.start_time)} .. "
                f"{format_timestamp(event.end_time)} "
                f"(STA/LTA peak {event.peak_ratio:.1f})"
            )
        return "\n".join(lines)


class EventHunter:
    """Automated event hunting over a repository via two-stage execution."""

    def __init__(
        self,
        engine: Union[Database, TwoStageExecutor],
        stations: list[str],
        channels: list[str],
        start_day: str,
        days: int,
        sta_window: int = 8,
        lta_window: int = 120,
        on_threshold: float = 6.0,
        investigate_top: int = 2,
        max_events_per_target: int = 3,
    ) -> None:
        self.session = ExplorationSession(engine)
        self.stations = stations
        self.channels = channels
        self.start_day = start_day
        self.days = days
        self.sta_window = sta_window
        self.lta_window = lta_window
        self.on_threshold = on_threshold
        self.investigate_top = investigate_top
        self.max_events_per_target = max_events_per_target

    # -- phase 1: survey -----------------------------------------------------

    def survey(self) -> list[SurveyEntry]:
        """Rank station-channel-days by quick-look energy (cheap queries)."""
        entries = []
        day0 = parse_timestamp(self.start_day)
        for day_index in range(self.days):
            day = format_timestamp(day0 + day_index * _DAY_US)[:10]
            for station in self.stations:
                for channel in self.channels:
                    sql = (
                        "SELECT AVG(D.sample_value * D.sample_value) "
                        "FROM F JOIN D ON F.uri = D.uri "
                        f"WHERE F.station = '{station}' "
                        f"AND F.channel = '{channel}' "
                        f"AND D.sample_time > '{day}T00:00:00' "
                        f"AND D.sample_time < '{day}T23:59:59'"
                    )
                    value = self.session.run(sql, note="survey").scalar()
                    energy = float(value) if value == value else 0.0  # NaN→0
                    entries.append(SurveyEntry(station, channel, day, energy))
        entries.sort(key=lambda e: e.energy, reverse=True)
        return entries

    # -- phase 2/3: investigate and zoom -----------------------------------------

    def _investigate(self, entry: SurveyEntry) -> list[ConfirmedEvent]:
        result = self.session.run(
            "SELECT D.sample_time, D.sample_value "
            "FROM F JOIN D ON F.uri = D.uri "
            f"WHERE F.station = '{entry.station}' "
            f"AND F.channel = '{entry.channel}' "
            f"AND D.sample_time > '{entry.day}T00:00:00' "
            f"AND D.sample_time < '{entry.day}T23:59:59' "
            "ORDER BY D.sample_time",
            note=f"investigate {entry.station}/{entry.channel}",
        )
        values = np.asarray(result.column("sample_value"), dtype=np.float64)
        times = np.asarray(result.column("sample_time"), dtype=np.int64)
        if len(values) <= self.lta_window:
            return []
        detections = detect_events(
            values, self.sta_window, self.lta_window, self.on_threshold
        )
        confirmed = []
        for event in detections[: self.max_events_per_target]:
            confirmed.append(self._zoom(entry, times, event))
        return confirmed

    def _zoom(
        self, entry: SurveyEntry, times: np.ndarray, event: DetectedEvent
    ) -> ConfirmedEvent:
        start = int(times[event.start_index])
        end = int(times[min(event.end_index, len(times) - 1)])
        pad = 60 * 1_000_000
        zoomed = self.session.run(
            "SELECT D.sample_time, D.sample_value "
            "FROM F JOIN D ON F.uri = D.uri "
            f"WHERE F.station = '{entry.station}' "
            f"AND F.channel = '{entry.channel}' "
            f"AND D.sample_time > '{format_timestamp(start - pad)}' "
            f"AND D.sample_time < '{format_timestamp(end + pad)}'",
            note="zoom",
        )
        return ConfirmedEvent(
            station=entry.station,
            channel=entry.channel,
            peak_ratio=event.peak_ratio,
            start_time=start,
            end_time=end,
            zoom_rows=zoomed.num_rows,
        )

    def hunt(self) -> HuntReport:
        """Run the full loop and report what was found and what it cost."""
        report = HuntReport()
        report.survey = self.survey()
        for entry in report.survey[: self.investigate_top]:
            if entry.energy <= 0:
                continue
            report.events.extend(self._investigate(entry))
        report.queries_run = len(self.session.history)
        report.files_mounted = sum(
            e.files_mounted for e in self.session.history
        )
        return report
