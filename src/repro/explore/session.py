"""Exploration sessions: query sequences with data-to-insight accounting.

§1's problem statement is temporal: "current database technology has a long
data-to-insight time". A session therefore tracks, per query and in total,
how long the explorer has been waiting — including the initialization
(ingestion) that happened before the first query could run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional, Protocol, Union, runtime_checkable

from ..db.database import Database, QueryResult
from ..db.types import format_timestamp, parse_timestamp
from ..core.advisor import SessionPrefetcher
from ..core.executor import TwoStageExecutor, TwoStageResult
from ..core.governor import ON_BUDGET_RAISE, QueryBudget
from ..core.mounting import ON_ERROR_POLICIES
from .workload import make_query1, make_query2


@runtime_checkable
class QueryEngine(Protocol):
    """Anything a session can run SQL through.

    Satisfied by :class:`~repro.db.database.Database` (returns a
    :class:`~repro.db.database.QueryResult`), by
    :class:`~repro.core.executor.TwoStageExecutor` and by
    :class:`~repro.serve.service.TenantClient` (both return a
    :class:`~repro.core.executor.TwoStageResult`) — the paper's point that
    the querying front-end never changes, extended to the service layer:
    an explorer session runs unmodified against a shared multi-tenant
    service.
    """

    def execute(self, sql: str) -> Any:
        """Run one SQL query, returning a QueryResult or TwoStageResult."""
        ...  # pragma: no cover - protocol stub


@dataclass
class SessionEntry:
    """One executed query in the session history."""

    sql: str
    rows: int
    seconds: float  # wall CPU + simulated I/O
    files_mounted: int = 0
    cache_scans: int = 0
    mount_failures: int = 0  # files skipped under on_mount_error="skip"
    truncated: bool = False  # answer cut short by an on_budget="partial" trip
    note: str = ""


@dataclass
class ExplorationSession:
    """A stateful explorer session over any execution engine.

    ``engine`` is a plain :class:`Database` (the Ei world: everything loaded
    up-front), a :class:`TwoStageExecutor` (the ALi world), or any other
    :class:`QueryEngine` — e.g. a
    :class:`~repro.serve.service.TenantClient`, which runs the session's
    queries through a shared multi-tenant service. The session API is
    identical — the paper's point that the querying front-end does not
    change.

    ``mount_workers`` (the CLI's ``--mount-workers``) applies only to a
    two-stage engine: it sets the stage-2 mount parallelism for every query
    the session runs. ``None`` leaves the engine's own setting untouched.
    Likewise ``on_mount_error`` (the CLI's ``--on-mount-error``): ``"fail"``
    aborts a query on the first unreadable file, ``"skip"`` quarantines it
    and completes the query over the intact rest, recording the skip count
    per history entry. ``verify_plans`` (the CLI's ``--verify-plans``) turns
    on structural plan verification for every query; it applies to both
    engine kinds.
    """

    engine: QueryEngine
    setup_seconds: float = 0.0  # ingestion time before the session began
    history: list[SessionEntry] = field(default_factory=list)
    mount_workers: Union[int, None] = None
    on_mount_error: Union[str, None] = None
    verify_plans: Union[bool, None] = None
    # Session-wide query budget (two-stage engine only): the CLI's
    # --deadline-seconds / --max-mount-bytes / --on-budget. Every query the
    # session runs inherits it; None leaves the engine ungoverned.
    deadline_seconds: Union[float, None] = None
    max_mount_bytes: Union[int, None] = None
    max_decoded_records: Union[int, None] = None
    on_budget: str = ON_BUDGET_RAISE
    # Predictive prefetch (two-stage engine only, the CLI's --prefetch):
    # after each query, the workload predictor extrapolates the next window
    # from the session's interval history and warms the ingestion cache in
    # the background. `prefetcher` is injectable for tests (e.g. a
    # synchronous one); prefetch=True builds the default.
    prefetch: bool = False
    prefetcher: Optional[SessionPrefetcher] = None

    def __post_init__(self) -> None:
        if self.mount_workers is not None:
            if not isinstance(self.engine, TwoStageExecutor):
                raise ValueError(
                    "mount_workers applies only to a TwoStageExecutor engine"
                )
            if self.mount_workers < 1:
                raise ValueError("mount_workers must be >= 1")
            self.engine.mount_workers = self.mount_workers
        if self.on_mount_error is not None:
            if not isinstance(self.engine, TwoStageExecutor):
                raise ValueError(
                    "on_mount_error applies only to a TwoStageExecutor engine"
                )
            if self.on_mount_error not in ON_ERROR_POLICIES:
                raise ValueError(
                    f"on_mount_error must be one of {ON_ERROR_POLICIES}, "
                    f"got {self.on_mount_error!r}"
                )
            self.engine.on_mount_error = self.on_mount_error
        if self.verify_plans is not None:
            self.engine.verify_plans = self.verify_plans
            if isinstance(self.engine, TwoStageExecutor):
                self.engine.db.verify_plans = self.verify_plans
        if (
            self.deadline_seconds is not None
            or self.max_mount_bytes is not None
            or self.max_decoded_records is not None
        ):
            if not isinstance(self.engine, TwoStageExecutor):
                raise ValueError(
                    "query budgets apply only to a TwoStageExecutor engine"
                )
            self.engine.budget = QueryBudget(
                deadline_seconds=self.deadline_seconds,
                max_mount_bytes=self.max_mount_bytes,
                max_decoded_records=self.max_decoded_records,
                on_budget=self.on_budget,
            )
        if self.prefetch or self.prefetcher is not None:
            if not isinstance(self.engine, TwoStageExecutor):
                raise ValueError(
                    "prefetch applies only to a TwoStageExecutor engine"
                )
            if self.prefetcher is None:
                self.prefetcher = SessionPrefetcher(
                    self.engine.mounts, self.engine.statistics
                )

    def close(self) -> None:
        """Stop the background prefetcher, if one is running."""
        if self.prefetcher is not None:
            self.prefetcher.close()

    def run(self, sql: str, note: str = "") -> QueryResult:
        started = time.perf_counter()
        outcome = self.engine.execute(sql)
        elapsed = time.perf_counter() - started
        if self.prefetcher is not None and isinstance(outcome, TwoStageResult):
            # Feed the predictor this query's fused time window; a confident
            # extrapolation warms the cache while the explorer reads the
            # answer. Runs after the query, so answers are never affected.
            assert isinstance(self.engine, TwoStageExecutor)
            self.prefetcher.observe(self.engine.last_query_interval)
        if isinstance(outcome, TwoStageResult):
            result = outcome.result
            mounted = result.stats.files_mounted
            cache_scans = result.stats.cache_scans
            failures = len(outcome.timings.mount_failures)
            truncated = outcome.truncation is not None
        else:
            result = outcome
            mounted = 0
            cache_scans = 0
            failures = 0
            truncated = False
        self.history.append(
            SessionEntry(
                sql=sql,
                rows=result.num_rows,
                seconds=elapsed + result.io.simulated_seconds,
                files_mounted=mounted,
                cache_scans=cache_scans,
                mount_failures=failures,
                truncated=truncated,
                note=note,
            )
        )
        return result

    # -- explorer verbs ----------------------------------------------------------

    def quick_look(self, station: str, channel: str, day: str) -> Any:
        """First contact with potential data of interest: a whole-day STA."""
        day_start = parse_timestamp(day)
        day_end = day_start + 86_400 * 1_000_000 - 1_000
        sql = make_query1(
            station, channel, day,
            format_timestamp(day_start), format_timestamp(day_end),
        )
        return self.run(sql, note=f"quick look {station}/{channel} {day}").scalar()

    def zoom(
        self, station: str, day: str, window_start: str, window_end: str
    ) -> QueryResult:
        """Retrieve a waveform piece from all channels (the paper's Query 2)."""
        sql = make_query2(station, day, window_start, window_end)
        return self.run(sql, note=f"zoom {station} [{window_start}..{window_end}]")

    def average(
        self, station: str, channel: str, day: str,
        window_start: str, window_end: str,
    ) -> float:
        """Short-term average over a window (the paper's Query 1)."""
        sql = make_query1(station, channel, day, window_start, window_end)
        return float(self.run(sql, note="short-term average").scalar())

    # -- accounting ------------------------------------------------------------------

    @property
    def query_seconds(self) -> float:
        return sum(entry.seconds for entry in self.history)

    @property
    def data_to_insight_seconds(self) -> float:
        """Setup plus time until the *first* query answer — §1's headline."""
        first = self.history[0].seconds if self.history else 0.0
        return self.setup_seconds + first

    @property
    def total_seconds(self) -> float:
        """Setup plus the whole query sequence."""
        return self.setup_seconds + self.query_seconds

    def report(self) -> str:
        lines = [
            f"setup (ingestion): {self.setup_seconds:.3f}s",
            f"queries: {len(self.history)}, total {self.query_seconds:.3f}s",
            f"data-to-insight: {self.data_to_insight_seconds:.3f}s",
        ]
        for i, entry in enumerate(self.history):
            note = f" — {entry.note}" if entry.note else ""
            skipped = (
                f", {entry.mount_failures} files skipped"
                if entry.mount_failures
                else ""
            )
            truncated = " (truncated)" if entry.truncated else ""
            lines.append(
                f"  [{i}] {entry.seconds:.3f}s, {entry.rows} rows, "
                f"{entry.files_mounted} mounts, {entry.cache_scans} "
                f"cache-scans{skipped}{truncated}{note}"
            )
        return "\n".join(lines)
