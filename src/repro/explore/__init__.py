"""`repro.explore` — the explorer-facing layer.

Data exploration is "not a one-query task. It involves exploration of the
data space by a lengthy sequence of queries" (§1). This package provides the
session abstraction for such sequences (with per-query breakpoint feedback
and data-to-insight accounting), SQL templates for the paper's Query 1 and
Query 2, explorative workload generators, and the STA/LTA event detector
seismologists run over query results.
"""

from .autopilot import ConfirmedEvent, EventHunter, HuntReport, SurveyEntry
from .detect import detect_events, sta_lta
from .session import ExplorationSession, QueryEngine, SessionEntry
from .visualize import downsample, sparkline, waveform_panel
from .workload import (
    ExplorationStep,
    make_query1,
    make_query2,
    random_exploration,
    sweep_queries,
)

__all__ = [
    "ExplorationSession",
    "QueryEngine",
    "SessionEntry",
    "sta_lta",
    "detect_events",
    "make_query1",
    "make_query2",
    "random_exploration",
    "sweep_queries",
    "ExplorationStep",
    "downsample",
    "sparkline",
    "waveform_panel",
    "EventHunter",
    "HuntReport",
    "SurveyEntry",
    "ConfirmedEvent",
]
