"""STA/LTA event detection — the seismologist's analysis over query results.

Query 1 of the paper "expresses the short term averaging task performed by
seismologists while hunting for interesting seismic events". The classic
detector compares a Short-Term Average to a Long-Term Average of the signal
energy; a ratio above threshold flags an event onset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def sta_lta(values: np.ndarray, sta_window: int, lta_window: int) -> np.ndarray:
    """The STA/LTA ratio of a signal's energy.

    ``values`` is the raw waveform; windows are in samples, with
    ``sta_window < lta_window``. The first ``lta_window`` entries are 0 (not
    enough history). Vectorized via cumulative sums.
    """
    if sta_window < 1 or lta_window <= sta_window:
        raise ValueError("require 1 <= sta_window < lta_window")
    energy = np.asarray(values, dtype=np.float64) ** 2
    csum = np.concatenate([[0.0], np.cumsum(energy)])
    n = len(energy)
    ratio = np.zeros(n)
    idx = np.arange(lta_window, n)
    sta = (csum[idx + 1] - csum[idx + 1 - sta_window]) / sta_window
    lta = (csum[idx + 1] - csum[idx + 1 - lta_window]) / lta_window
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio[idx] = np.where(lta > 0, sta / lta, 0.0)
    return ratio


@dataclass(frozen=True)
class DetectedEvent:
    """One detected onset: sample index span and peak ratio."""

    start_index: int
    end_index: int
    peak_ratio: float


def detect_events(
    values: np.ndarray,
    sta_window: int,
    lta_window: int,
    on_threshold: float = 4.0,
    off_threshold: float = 1.5,
) -> list[DetectedEvent]:
    """Threshold the STA/LTA ratio with on/off hysteresis."""
    ratio = sta_lta(values, sta_window, lta_window)
    events: list[DetectedEvent] = []
    in_event = False
    start = 0
    peak = 0.0
    for i, r in enumerate(ratio):
        if not in_event and r >= on_threshold:
            in_event = True
            start = i
            peak = r
        elif in_event:
            peak = max(peak, r)
            if r < off_threshold:
                events.append(DetectedEvent(start, i, float(peak)))
                in_event = False
    if in_event:
        events.append(DetectedEvent(start, len(ratio) - 1, float(peak)))
    return events
