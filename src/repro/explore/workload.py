"""Explorative workload generation.

Provides the paper's two evaluation queries as parameterized templates and a
generator of exploration sequences mimicking §1's loop: a quick look into
potential data of interest, then zoom in/out, then move on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..db.types import format_timestamp, parse_timestamp

_DAY_US = 86_400 * 1_000_000


def _ts(micros: int) -> str:
    return format_timestamp(micros)


def make_query1(
    station: str,
    channel: str,
    day: str,
    window_start: str,
    window_end: str,
) -> str:
    """The paper's Query 1 (Figure 2): short-term average over one channel.

    ``day`` bounds R.start_time to the day's records; the window bounds
    D.sample_time to the short-term interval being averaged.
    """
    day_start = parse_timestamp(day)
    day_end = day_start + _DAY_US - 1_000
    return (
        "SELECT AVG(D.sample_value)\n"
        "FROM F JOIN R ON F.uri = R.uri\n"
        "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id\n"
        f"WHERE F.station = '{station}' AND F.channel = '{channel}'\n"
        f"AND R.start_time > '{_ts(day_start)}'\n"
        f"AND R.start_time < '{_ts(day_end)}'\n"
        f"AND D.sample_time > '{window_start}'\n"
        f"AND D.sample_time < '{window_end}'"
    )


def make_query2(
    station: str,
    day: str,
    window_start: str,
    window_end: str,
) -> str:
    """The paper's Query 2: retrieve a waveform piece from *all* channels at
    a station, to visualize data around a potentially interesting point."""
    day_start = parse_timestamp(day)
    day_end = day_start + _DAY_US - 1_000
    return (
        "SELECT D.sample_time, D.sample_value\n"
        "FROM F JOIN R ON F.uri = R.uri\n"
        "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id\n"
        f"WHERE F.station = '{station}'\n"
        f"AND R.start_time > '{_ts(day_start)}'\n"
        f"AND R.start_time < '{_ts(day_end)}'\n"
        f"AND D.sample_time > '{window_start}'\n"
        f"AND D.sample_time < '{window_end}'"
    )


class StepKind(enum.Enum):
    QUICK_LOOK = "quick_look"
    ZOOM_IN = "zoom_in"
    ZOOM_OUT = "zoom_out"
    MOVE_ON = "move_on"


@dataclass(frozen=True)
class ExplorationStep:
    """One step of an exploration sequence."""

    kind: StepKind
    sql: str
    station: str
    window_us: tuple[int, int]


def sweep_queries(
    stations: list[str],
    channels: list[str],
    day: str,
    window_start: str,
    window_end: str,
    fractions: list[float],
    days: int = 1,
) -> list[tuple[float, str]]:
    """Queries touching a controlled fraction of the station×channel space.

    Used by the data-of-interest sweep (DESIGN.md experiment X2): fraction 0
    yields a query whose files of interest are empty (no station matches),
    fraction 1 touches every station and channel. ``days`` widens the
    record-time window; with the repository's full day count, fraction 1 is
    the paper's worst case — the entire repository is of interest.
    """
    pairs = [(s, c) for s in stations for c in channels]
    queries: list[tuple[float, str]] = []
    for fraction in fractions:
        count = round(fraction * len(pairs))
        if count == 0:
            sql = make_query1(
                "NOSUCH", channels[0], day, window_start, window_end
            )
        else:
            chosen = pairs[:count]
            station_set = sorted({s for s, _ in chosen})
            channel_set = sorted({c for _, c in chosen})
            station_pred = " OR ".join(
                f"F.station = '{s}'" for s in station_set
            )
            channel_pred = " OR ".join(
                f"F.channel = '{c}'" for c in channel_set
            )
            day_start = parse_timestamp(day)
            day_end = day_start + days * _DAY_US - 1_000
            sql = (
                "SELECT AVG(D.sample_value)\n"
                "FROM F JOIN R ON F.uri = R.uri\n"
                "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id\n"
                f"WHERE ({station_pred}) AND ({channel_pred})\n"
                f"AND R.start_time > '{_ts(day_start)}'\n"
                f"AND R.start_time < '{_ts(day_end)}'\n"
                f"AND D.sample_time > '{window_start}'\n"
                f"AND D.sample_time < '{window_end}'"
            )
        queries.append((fraction, sql))
    return queries


def random_exploration(
    stations: list[str],
    channels: list[str],
    start_day: str,
    days: int,
    steps: int,
    seed: int = 7,
    initial_window_s: int = 3600,
) -> list[ExplorationStep]:
    """A plausible exploration walk: quick look → zooms → move on.

    Zooming halves/doubles the time window around the current focus; moving
    on jumps to another station and day. Deterministic under ``seed``.
    """
    rng = np.random.default_rng(seed)
    day0 = parse_timestamp(start_day)
    sequence: list[ExplorationStep] = []

    def random_focus() -> tuple[str, int]:
        station = stations[int(rng.integers(len(stations)))]
        day_idx = int(rng.integers(days))
        center = (
            day0
            + day_idx * _DAY_US
            + int(rng.integers(4, 20)) * 3_600 * 1_000_000
        )
        return station, center

    station, center = random_focus()
    window_us = initial_window_s * 1_000_000
    kind = StepKind.QUICK_LOOK
    for _ in range(steps):
        lo, hi = center - window_us // 2, center + window_us // 2
        day_anchor = day0 + ((lo - day0) // _DAY_US) * _DAY_US
        channel = channels[int(rng.integers(len(channels)))]
        if kind in (StepKind.QUICK_LOOK, StepKind.MOVE_ON):
            sql = make_query1(
                station, channel, _ts(day_anchor)[:10], _ts(lo), _ts(hi)
            )
        else:
            sql = make_query2(station, _ts(day_anchor)[:10], _ts(lo), _ts(hi))
        sequence.append(ExplorationStep(kind, sql, station, (lo, hi)))

        roll = rng.random()
        if roll < 0.45:
            kind = StepKind.ZOOM_IN
            window_us = max(window_us // 2, 60 * 1_000_000)
        elif roll < 0.65:
            kind = StepKind.ZOOM_OUT
            window_us = min(window_us * 2, 12 * 3_600 * 1_000_000)
        else:
            kind = StepKind.MOVE_ON
            station, center = random_focus()
            window_us = initial_window_s * 1_000_000
    return sequence
