"""Terminal visualization of waveforms and detections.

The paper's Query 2 exists "to visualize the data around a potentially
interesting point"; these helpers give the examples and interactive sessions
a dependency-free way to actually look at what a query returned.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

_BLOCKS = " ▁▂▃▄▅▆▇█"


def downsample(values: np.ndarray, buckets: int) -> np.ndarray:
    """Reduce a series to ``buckets`` points, keeping per-bucket extremes.

    Each bucket reports the value of largest magnitude inside it, so short
    transients (seismic events!) survive the reduction — a plain mean would
    wash them out.
    """
    values = np.asarray(values, dtype=np.float64)
    if buckets < 1:
        raise ValueError("buckets must be >= 1")
    if len(values) == 0:
        return np.empty(0)
    if len(values) <= buckets:
        return values.copy()
    edges = np.linspace(0, len(values), buckets + 1).astype(np.int64)
    out = np.empty(buckets)
    for i in range(buckets):
        chunk = values[edges[i]: max(edges[i + 1], edges[i] + 1)]
        out[i] = chunk[np.argmax(np.abs(chunk))]
    return out


def sparkline(values: Sequence[float], width: int = 72) -> str:
    """Render a series as one line of unicode block characters."""
    data = downsample(np.asarray(values, dtype=np.float64), width)
    if len(data) == 0:
        return ""
    lo, hi = float(data.min()), float(data.max())
    if hi == lo:
        return _BLOCKS[1] * len(data)
    scaled = (data - lo) / (hi - lo) * (len(_BLOCKS) - 2) + 1
    return "".join(_BLOCKS[int(round(v))] for v in scaled)


def waveform_panel(
    times: Sequence[int],
    values: Sequence[float],
    width: int = 72,
    label: str = "",
) -> str:
    """A small multi-line panel: sparkline plus range annotations."""
    from ..db.types import format_timestamp

    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return f"{label} (no samples)"
    line = sparkline(values, width)
    header = label or "waveform"
    lines = [
        f"{header}  [{len(values):,} samples]",
        line,
        (
            f"t: {format_timestamp(int(times[0]))} .. "
            f"{format_timestamp(int(times[-1]))}   "
            f"y: {values.min():.1f} .. {values.max():.1f}"
        ),
    ]
    return "\n".join(lines)
