"""Lock-construction seam for the concurrency-tracing harness.

Every lock, reentrant lock, and condition variable in the concurrent core
(:mod:`repro.core.mountpool`, :mod:`repro.core.cache`, :mod:`repro.db.buffer`,
:mod:`repro.core.governor`, :mod:`repro.serve.scheduler`,
:mod:`repro.serve.service`) is created through this module instead of
calling ``threading.Lock()`` directly. Normally the factories return the
plain :mod:`threading` primitives — zero wrappers, zero overhead. With
``REPRO_LOCK_TRACE=1`` (or :func:`set_tracing`) they return the traced
wrappers from :mod:`repro.testing.locktrace`, which record the global
lock-acquisition-order graph, raise a typed
:class:`~repro.testing.locktrace.LockOrderError` on a cycle-forming
acquisition, and export per-lock hold-time/contention counters.

This mirrors the :mod:`repro.mseed.iohooks` seam: production code sees one
flag check at *lock construction time* (locks are created per pool/cache/
service, never per operation), and the heavyweight machinery lives in
``repro.testing``, imported only when tracing is on. The module is
deliberately dependency-free so any layer (``db``, ``core``, ``serve``) can
import it without cycles.

Guarded-attribute declarations
------------------------------
The :func:`guarded` class decorator is the runtime half of the project's
``# guarded-by:`` convention (see ``docs/architecture.md`` §Concurrency
discipline): the same source annotations the static analyzer
(``tools/lint/concurrency.py``) enforces are parsed at runtime when tracing
is enabled, and rebinding a guarded attribute without holding its declared
lock raises :class:`~repro.testing.locktrace.GuardViolation`. When tracing
is off the decorator returns the class untouched.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Callable, Optional

# Master switch, initialized from the environment once at import. Tests flip
# it through set_tracing() (see locktrace.tracing()); CI exports
# REPRO_LOCK_TRACE=1 before the process starts so import-time reads suffice.
_tracing: bool = os.environ.get("REPRO_LOCK_TRACE", "") == "1"


def tracing_enabled() -> bool:
    """Whether traced locks are being handed out right now."""
    return _tracing


def set_tracing(enabled: bool) -> bool:
    """Flip the tracing switch; returns the previous value.

    Only locks created *after* the flip are traced — existing plain locks
    stay plain — so tests enable tracing before constructing the objects
    under test (the :func:`repro.testing.locktrace.tracing` context manager
    wraps this).
    """
    global _tracing
    previous = _tracing
    _tracing = enabled
    return previous


@dataclass
class LockStats:
    """Per-lock observability counters exported by the tracing layer.

    Attached to :class:`~repro.core.executor.StageTimings` (``lock_stats``)
    when tracing is active, so a traced run's result carries the lock
    hold-time/contention story next to its mount timings.
    """

    acquisitions: int = 0
    contended: int = 0  # acquisitions that found the lock already held
    wait_seconds: float = 0.0  # time spent blocked on contended acquires
    hold_seconds: float = 0.0  # total time the lock was held
    max_hold_seconds: float = 0.0

    def merged_with(self, other: "LockStats") -> "LockStats":
        return LockStats(
            acquisitions=self.acquisitions + other.acquisitions,
            contended=self.contended + other.contended,
            wait_seconds=self.wait_seconds + other.wait_seconds,
            hold_seconds=self.hold_seconds + other.hold_seconds,
            max_hold_seconds=max(self.max_hold_seconds, other.max_hold_seconds),
        )


def create_lock(name: str) -> "threading.Lock":
    """A mutex named for diagnostics: ``ClassName._attr`` by convention."""
    if _tracing:
        from .testing.locktrace import TracedLock

        return TracedLock(name)  # type: ignore[return-value]
    return threading.Lock()


def create_rlock(name: str) -> "threading.RLock":
    if _tracing:
        from .testing.locktrace import TracedRLock

        return TracedRLock(name)  # type: ignore[return-value]
    return threading.RLock()


def create_condition(name: str, lock: Optional[object] = None) -> object:
    """A condition variable, sharing ``lock`` when given (the scheduler's
    wakeup condition wraps its own ``_lock`` so waiters and mutators
    serialize on one mutex)."""
    if _tracing:
        from .testing.locktrace import TracedCondition, TracedLock, TracedRLock

        if lock is None or isinstance(lock, (TracedLock, TracedRLock)):
            return TracedCondition(name, lock)
    return threading.Condition(lock)  # type: ignore[arg-type]


def lock_snapshot() -> dict[str, LockStats]:
    """Current per-lock counters ({} when tracing is off — the zero-cost
    path the executor takes every query)."""
    if not _tracing:
        return {}
    from .testing.locktrace import registry

    return registry.snapshot()


def lock_snapshot_delta(
    before: dict[str, LockStats],
) -> dict[str, LockStats]:
    """Counters accrued since ``before`` (a previous :func:`lock_snapshot`).

    The registry is process-global, so under a concurrent service the delta
    attributes *service-wide* lock activity to the window of one execution —
    an observability approximation, disclosed in the docs.
    """
    if not _tracing:
        return {}
    after = lock_snapshot()
    delta: dict[str, LockStats] = {}
    for name, stats in after.items():
        prior = before.get(name)
        if prior is None:
            delta[name] = stats
            continue
        changed = LockStats(
            acquisitions=stats.acquisitions - prior.acquisitions,
            contended=stats.contended - prior.contended,
            wait_seconds=stats.wait_seconds - prior.wait_seconds,
            hold_seconds=stats.hold_seconds - prior.hold_seconds,
            max_hold_seconds=stats.max_hold_seconds,
        )
        if changed.acquisitions > 0:
            delta[name] = changed
    return delta


def guarded(cls: type) -> type:
    """Enforce this class's ``# guarded-by:`` declarations at runtime.

    Identity when tracing is off (the production path: no wrapper, no
    per-setattr cost). When tracing is on at class-creation time, the
    class's source is parsed for declaration-site annotations and attribute
    *rebinds* are checked against the declared lock — container mutations
    are out of scope (the static analyzer covers those lexically).

    Tests that want enforcement without the environment flag use
    :func:`repro.testing.locktrace.guard_class`, which wraps a subclass on
    demand instead of mutating the shared class.
    """
    if not _tracing:
        return cls
    from .testing.locktrace import install_guards

    return install_guards(cls)


__all__ = [
    "LockStats",
    "create_condition",
    "create_lock",
    "create_rlock",
    "guarded",
    "lock_snapshot",
    "lock_snapshot_delta",
    "set_tracing",
    "tracing_enabled",
]
