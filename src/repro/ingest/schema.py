"""The paper's three-table seismic schema and repository bindings.

§3/§4: one metadata table ``F`` for file-level metadata, one metadata table
``R`` for record-level metadata, and one actual-data table ``D`` holding
(sample_time, sample_value) tuples from all files and records. Foreign keys
follow the FROM clause of Query 1: ``R.uri → F.uri`` and
``D.(uri, record_id) → R``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..db.database import Database
from ..db.schema import ColumnDef, ForeignKey, TableKind, TableSchema
from ..db.types import DataType
from ..mseed.repository import FileRepository

FILE_TABLE = "F"
RECORD_TABLE = "R"
ACTUAL_TABLE = "D"


def file_table_schema() -> TableSchema:
    return TableSchema(
        name=FILE_TABLE,
        columns=[
            ColumnDef("uri", DataType.STRING),
            ColumnDef("network", DataType.STRING),
            ColumnDef("station", DataType.STRING),
            ColumnDef("location", DataType.STRING),
            ColumnDef("channel", DataType.STRING),
            ColumnDef("start_time", DataType.TIMESTAMP),
            ColumnDef("end_time", DataType.TIMESTAMP),
            ColumnDef("nrecords", DataType.INT64),
            ColumnDef("nsamples", DataType.INT64),
            ColumnDef("size_bytes", DataType.INT64),
        ],
        kind=TableKind.METADATA,
        primary_key=("uri",),
    )


def record_table_schema() -> TableSchema:
    return TableSchema(
        name=RECORD_TABLE,
        columns=[
            ColumnDef("uri", DataType.STRING),
            ColumnDef("record_id", DataType.INT64),
            ColumnDef("start_time", DataType.TIMESTAMP),
            ColumnDef("end_time", DataType.TIMESTAMP),
            ColumnDef("sample_rate", DataType.FLOAT64),
            ColumnDef("nsamples", DataType.INT64),
            # The record byte map: where each record lives inside its file.
            # -1/-1 means the format cannot address records by byte range.
            ColumnDef("byte_offset", DataType.INT64),
            ColumnDef("byte_length", DataType.INT64),
        ],
        kind=TableKind.METADATA,
        primary_key=("uri", "record_id"),
        foreign_keys=[ForeignKey(("uri",), FILE_TABLE, ("uri",))],
    )


def actual_table_schema() -> TableSchema:
    return TableSchema(
        name=ACTUAL_TABLE,
        columns=[
            ColumnDef("uri", DataType.STRING),
            ColumnDef("record_id", DataType.INT64),
            ColumnDef("sample_time", DataType.TIMESTAMP),
            ColumnDef("sample_value", DataType.FLOAT64),
        ],
        kind=TableKind.ACTUAL,
        # Ei builds this primary key up-front, like the paper's MonetDB
        # setup; it is the dominant share of the "+keys" storage in Table 1
        # and of the index build time.
        primary_key=("uri", "record_id", "sample_time"),
        foreign_keys=[
            ForeignKey(("uri",), FILE_TABLE, ("uri",)),
            ForeignKey(("uri", "record_id"), RECORD_TABLE, ("uri", "record_id")),
        ],
    )


def seismic_schema() -> list[TableSchema]:
    return [file_table_schema(), record_table_schema(), actual_table_schema()]


def ensure_schema(db: Database) -> None:
    """Create F, R, D if missing (idempotent)."""
    for schema in seismic_schema():
        if not db.catalog.has_table(schema.name):
            db.create_table(schema)


@dataclass
class RepositoryBinding:
    """Connects one actual-data table to the file repository feeding it.

    ``uri_column`` names the column of the actual table that identifies the
    source file — the handle the run-time rewrite rule (1) unions over.
    ``time_column`` is the sample-timestamp column; with ``prune_by_time``
    the breakpoint drops files of interest whose metadata time span is
    disjoint from the query's sample-time interval, since such files cannot
    contribute rows. It defaults to **off** because the paper's ALi does not
    exploit metadata this way (it is our implementation of §5's "extending
    metadata" direction) — the reproduction benchmarks must match the
    paper's behaviour, and `benchmarks/bench_time_pruning.py` measures the
    extension explicitly.
    """

    repository: FileRepository
    actual_table: str = ACTUAL_TABLE
    uri_column: str = "uri"
    time_column: str = "sample_time"
    prune_by_time: bool = False
    registry: "FormatRegistry | None" = None

    def __post_init__(self) -> None:
        if self.registry is None:
            from .formats import default_registry

            self.registry = default_registry()


@dataclass
class BindingSet:
    """All repository bindings of a database, keyed by actual table name."""

    bindings: dict[str, RepositoryBinding] = field(default_factory=dict)

    @classmethod
    def single(cls, binding: RepositoryBinding) -> "BindingSet":
        return cls({binding.actual_table.lower(): binding})

    def for_table(self, table_name: str) -> RepositoryBinding | None:
        return self.bindings.get(table_name.lower())

    def add(self, binding: RepositoryBinding) -> None:
        self.bindings[binding.actual_table.lower()] = binding
