"""Internal helpers turning extracted rows into column batches."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..db.column import Column, StringDictionary
from ..db.table import ColumnBatch
from ..db.types import DataType
from .formats import FileMetaRow, MountedFile, RecordMetaRow


def _string_column(values: Sequence[str]) -> Column:
    dictionary = StringDictionary()
    codes = dictionary.encode(values)
    return Column(DataType.STRING, codes, dictionary)


def file_rows_batch(rows: Sequence[FileMetaRow]) -> ColumnBatch:
    return ColumnBatch(
        [
            "uri", "network", "station", "location", "channel",
            "start_time", "end_time", "nrecords", "nsamples", "size_bytes",
        ],
        [
            _string_column([r.uri for r in rows]),
            _string_column([r.network for r in rows]),
            _string_column([r.station for r in rows]),
            _string_column([r.location for r in rows]),
            _string_column([r.channel for r in rows]),
            Column(DataType.TIMESTAMP,
                   np.asarray([r.start_time for r in rows], dtype=np.int64)),
            Column(DataType.TIMESTAMP,
                   np.asarray([r.end_time for r in rows], dtype=np.int64)),
            Column(DataType.INT64,
                   np.asarray([r.nrecords for r in rows], dtype=np.int64)),
            Column(DataType.INT64,
                   np.asarray([r.nsamples for r in rows], dtype=np.int64)),
            Column(DataType.INT64,
                   np.asarray([r.size_bytes for r in rows], dtype=np.int64)),
        ],
    )


def record_rows_batch(rows: Sequence[RecordMetaRow]) -> ColumnBatch:
    return ColumnBatch(
        ["uri", "record_id", "start_time", "end_time", "sample_rate",
         "nsamples", "byte_offset", "byte_length"],
        [
            _string_column([r.uri for r in rows]),
            Column(DataType.INT64,
                   np.asarray([r.record_id for r in rows], dtype=np.int64)),
            Column(DataType.TIMESTAMP,
                   np.asarray([r.start_time for r in rows], dtype=np.int64)),
            Column(DataType.TIMESTAMP,
                   np.asarray([r.end_time for r in rows], dtype=np.int64)),
            Column(DataType.FLOAT64,
                   np.asarray([r.sample_rate for r in rows], dtype=np.float64)),
            Column(DataType.INT64,
                   np.asarray([r.nsamples for r in rows], dtype=np.int64)),
            Column(DataType.INT64,
                   np.asarray([r.byte_offset for r in rows], dtype=np.int64)),
            Column(DataType.INT64,
                   np.asarray([r.byte_length for r in rows], dtype=np.int64)),
        ],
    )


def mounted_files_batch(mounted: Sequence[MountedFile]) -> ColumnBatch:
    """Stack mounted files into one D-layout batch (Ei's bulk load path)."""
    dictionary = StringDictionary()
    code_parts = []
    for part in mounted:
        code = dictionary.encode_one(part.uri)
        code_parts.append(np.full(part.num_rows, code, dtype=np.int32))
    if mounted:
        codes = np.concatenate(code_parts)
        record_id = np.concatenate([p.record_id for p in mounted])
        sample_time = np.concatenate([p.sample_time for p in mounted])
        sample_value = np.concatenate([p.sample_value for p in mounted])
    else:
        codes = np.empty(0, dtype=np.int32)
        record_id = np.empty(0, dtype=np.int64)
        sample_time = np.empty(0, dtype=np.int64)
        sample_value = np.empty(0, dtype=np.float64)
    return ColumnBatch(
        ["uri", "record_id", "sample_time", "sample_value"],
        [
            Column(DataType.STRING, codes, dictionary),
            Column(DataType.INT64, record_id),
            Column(DataType.TIMESTAMP, sample_time),
            Column(DataType.FLOAT64, sample_value),
        ],
    )


def mounted_file_batch(part: MountedFile) -> ColumnBatch:
    """One mounted file as a D-layout batch (the ALi mount path)."""
    return mounted_files_batch([part])
