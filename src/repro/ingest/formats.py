"""The format-extractor plug-in interface (the paper's generalization, §5).

"We can design a generalized medium for the scientific developer [to] define
domain- and format-specific mappings and extractions" — this module is that
medium. A :class:`FormatExtractor` maps one file format onto the relational
schema through two operations with very different costs:

* :meth:`~FormatExtractor.extract_metadata` — cheap, header-only; feeds the
  metadata tables ``F`` and ``R``,
* :meth:`~FormatExtractor.mount` — full extract/transform; feeds the actual
  data table ``D`` one file at a time.

The :class:`FormatRegistry` resolves a file's extractor by suffix, so one
repository may mix formats.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from ..db.errors import CorruptFileError, FileIngestError, IngestError


@contextmanager
def extraction_guard(uri: str, path: Path | str) -> Iterator[None]:
    """Normalize one file's extraction failures into the ingest taxonomy.

    Wrap every :meth:`FormatExtractor.extract_metadata` /
    :meth:`FormatExtractor.mount` body in this. Taxonomy errors pass through
    (annotated with ``uri`` when the lower layer did not know it); raw
    parse errors (``ValueError``, ``struct.error``) become
    :class:`~repro.db.errors.CorruptFileError`; I/O errors become transient
    :class:`~repro.db.errors.FileIngestError` so the mount service retries
    them before quarantining the file.
    """
    try:
        yield
    except FileIngestError as exc:
        raise exc.with_uri(uri) from exc.cause
    except IngestError:
        raise
    except FileNotFoundError as exc:
        raise FileIngestError(
            f"file disappeared during extraction: {path}", uri=uri, cause=exc
        ) from exc
    except OSError as exc:
        raise FileIngestError(
            f"I/O error reading {path}: {exc}",
            uri=uri,
            cause=exc,
            transient=True,
        ) from exc
    except (ValueError, struct.error) as exc:
        raise CorruptFileError(str(exc), uri=uri, cause=exc) from exc


@dataclass(frozen=True)
class FileMetaRow:
    """One row of the file-level metadata table ``F``."""

    uri: str
    network: str
    station: str
    location: str
    channel: str
    start_time: int
    end_time: int
    nrecords: int
    nsamples: int
    size_bytes: int


@dataclass(frozen=True)
class RecordMetaRow:
    """One row of the record-level metadata table ``R``."""

    uri: str
    record_id: int
    start_time: int
    end_time: int
    sample_rate: float
    nsamples: int


@dataclass(frozen=True)
class ExtractedMetadata:
    """Everything a header-only pass learns about one file."""

    file_row: FileMetaRow
    record_rows: list[RecordMetaRow]


@dataclass(frozen=True)
class MountedFile:
    """One file's actual data, transformed to the ``D`` layout.

    Arrays are parallel and row-aligned: ``record_id`` int64,
    ``sample_time`` int64 µs, ``sample_value`` float64. The URI column is
    implicit (constant per file) and added by the consumer.
    """

    uri: str
    record_id: np.ndarray
    sample_time: np.ndarray
    sample_value: np.ndarray

    @property
    def num_rows(self) -> int:
        return len(self.sample_value)


@runtime_checkable
class FormatExtractor(Protocol):
    """One scientific file format's mapping onto the relational schema."""

    format_name: str
    suffix: str

    def extract_metadata(self, path: Path, uri: str) -> ExtractedMetadata:
        """Header-only metadata extraction (must not decode actual data)."""
        ...

    def mount(self, path: Path, uri: str) -> MountedFile:
        """Full extraction of the file's actual data."""
        ...


class FormatRegistry:
    """Suffix-keyed registry of format extractors."""

    def __init__(self) -> None:
        self._by_suffix: dict[str, FormatExtractor] = {}

    def register(self, extractor: FormatExtractor) -> None:
        suffix = extractor.suffix.lower()
        if not suffix.startswith("."):
            raise IngestError(f"suffix must start with '.', got {suffix!r}")
        self._by_suffix[suffix] = extractor

    def for_path(self, path: str | Path) -> FormatExtractor:
        suffix = Path(path).suffix.lower()
        extractor = self._by_suffix.get(suffix)
        if extractor is None:
            raise IngestError(
                f"no format extractor registered for {suffix!r} "
                f"(known: {sorted(self._by_suffix)})"
            )
        return extractor

    def known_suffixes(self) -> list[str]:
        return sorted(self._by_suffix)


def default_registry() -> FormatRegistry:
    """Registry with the built-in formats (xSEED and CSV time series)."""
    from .csv_format import CsvExtractor
    from .xseed_format import XSeedExtractor

    registry = FormatRegistry()
    registry.register(XSeedExtractor())
    registry.register(CsvExtractor())
    return registry
