"""The format-extractor plug-in interface (the paper's generalization, §5).

"We can design a generalized medium for the scientific developer [to] define
domain- and format-specific mappings and extractions" — this module is that
medium. A :class:`FormatExtractor` maps one file format onto the relational
schema through two operations with very different costs:

* :meth:`~FormatExtractor.extract_metadata` — cheap, header-only; feeds the
  metadata tables ``F`` and ``R``,
* :meth:`~FormatExtractor.mount` — full extract/transform; feeds the actual
  data table ``D`` one file at a time.

Extractors may additionally implement **selective mounting**
(``mount_selective``): given a :class:`MountRequest` — the fused predicate's
closed time interval plus, when the metadata pass recorded one, the file's
record byte map — the extractor seeks directly to the records whose header
interval overlaps the request, reads only those byte ranges, and decodes
only those payloads. The :class:`MountOutcome` it returns carries exact
read/decode accounting so the mount service can charge the buffer manager
for the bytes actually read rather than the whole file. Formats that do not
implement it fall back to :meth:`~FormatExtractor.mount` transparently.

The :class:`FormatRegistry` resolves a file's extractor by suffix, so one
repository may mix formats.
"""

from __future__ import annotations

import struct
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..db.errors import CorruptFileError, FileIngestError, IngestError
from ..db.interval import WHOLE_FILE, Interval, is_empty, overlaps


@contextmanager
def extraction_guard(uri: str, path: Path | str) -> Iterator[None]:
    """Normalize one file's extraction failures into the ingest taxonomy.

    Wrap every :meth:`FormatExtractor.extract_metadata` /
    :meth:`FormatExtractor.mount` body in this. Taxonomy errors pass through
    (annotated with ``uri`` when the lower layer did not know it); raw
    parse errors (``ValueError``, ``struct.error``) become
    :class:`~repro.db.errors.CorruptFileError`; I/O errors become transient
    :class:`~repro.db.errors.FileIngestError` so the mount service retries
    them before quarantining the file.
    """
    try:
        yield
    except FileIngestError as exc:
        raise exc.with_uri(uri) from exc.cause
    except IngestError:
        raise
    except FileNotFoundError as exc:
        raise FileIngestError(
            f"file disappeared during extraction: {path}", uri=uri, cause=exc
        ) from exc
    except OSError as exc:
        raise FileIngestError(
            f"I/O error reading {path}: {exc}",
            uri=uri,
            cause=exc,
            transient=True,
        ) from exc
    except (ValueError, struct.error) as exc:
        raise CorruptFileError(str(exc), uri=uri, cause=exc) from exc


@dataclass(frozen=True)
class FileMetaRow:
    """One row of the file-level metadata table ``F``."""

    uri: str
    network: str
    station: str
    location: str
    channel: str
    start_time: int
    end_time: int
    nrecords: int
    nsamples: int
    size_bytes: int


@dataclass(frozen=True)
class RecordMetaRow:
    """One row of the record-level metadata table ``R``.

    ``byte_offset``/``byte_length`` locate the record inside its file — the
    header-only pass walks record boundaries anyway, so recording them is
    free, and they are what lets selective mounting seek straight to a
    record instead of streaming the whole file. ``-1`` means the format
    cannot address records by byte range.
    """

    uri: str
    record_id: int
    start_time: int
    end_time: int
    sample_rate: float
    nsamples: int
    byte_offset: int = -1
    byte_length: int = -1


@dataclass(frozen=True)
class ExtractedMetadata:
    """Everything a header-only pass learns about one file."""

    file_row: FileMetaRow
    record_rows: list[RecordMetaRow]


@dataclass(frozen=True)
class MountedFile:
    """One file's actual data, transformed to the ``D`` layout.

    Arrays are parallel and row-aligned: ``record_id`` int64,
    ``sample_time`` int64 µs, ``sample_value`` float64. The URI column is
    implicit (constant per file) and added by the consumer.
    """

    uri: str
    record_id: np.ndarray
    sample_time: np.ndarray
    sample_value: np.ndarray

    @property
    def num_rows(self) -> int:
        return len(self.sample_value)


@dataclass(frozen=True)
class RecordSpan:
    """One record's position in time and in its file (the byte map unit)."""

    record_id: int
    byte_offset: int
    byte_length: int
    start_time: int
    end_time: int

    @property
    def addressable(self) -> bool:
        return self.byte_offset >= 0 and self.byte_length > 0


def spans_from_record_rows(rows: Sequence[RecordMetaRow]) -> tuple[RecordSpan, ...]:
    """The record byte map implied by one file's ``R`` rows."""
    return tuple(
        RecordSpan(
            record_id=row.record_id,
            byte_offset=row.byte_offset,
            byte_length=row.byte_length,
            start_time=row.start_time,
            end_time=row.end_time,
        )
        for row in rows
    )


@dataclass(frozen=True)
class MountRequest:
    """What a query actually needs from one file.

    ``interval`` is the fused predicate's closed time interval (the Mount
    node's pruning interval); ``records`` is the file's record byte map from
    the metadata pass, or ``None`` when the caller has none — the extractor
    then walks record headers itself, still skipping non-overlapping
    payload reads and decodes.
    """

    interval: Interval = WHOLE_FILE
    records: Optional[tuple[RecordSpan, ...]] = None

    @property
    def selects_all(self) -> bool:
        return self.interval == WHOLE_FILE

    @property
    def selects_nothing(self) -> bool:
        return is_empty(self.interval)

    def wants(self, start_time: int, end_time: int) -> bool:
        """Whether a record spanning ``[start_time, end_time]`` overlaps."""
        return overlaps(self.interval, start_time, end_time)


@dataclass(frozen=True)
class MountOutcome:
    """A (possibly selective) mount plus exact read/decode accounting.

    ``bytes_read`` is what the extraction actually pulled off disk — the
    number the buffer manager is charged with — and ``records_decoded`` /
    ``records_skipped`` partition the file's records by whether their
    payload was ever decompressed.
    """

    mounted: MountedFile
    bytes_read: int
    records_decoded: int
    records_skipped: int


@runtime_checkable
class FormatExtractor(Protocol):
    """One scientific file format's mapping onto the relational schema."""

    format_name: str
    suffix: str

    def extract_metadata(self, path: Path, uri: str) -> ExtractedMetadata:
        """Header-only metadata extraction (must not decode actual data)."""
        ...

    def mount(self, path: Path, uri: str) -> MountedFile:
        """Full extraction of the file's actual data."""
        ...


@runtime_checkable
class SelectiveFormatExtractor(FormatExtractor, Protocol):
    """A format extractor that can mount a subset of a file's records."""

    def mount_selective(
        self, path: Path, uri: str, request: MountRequest
    ) -> MountOutcome:
        """Extract only the records overlapping ``request.interval``.

        Must return exactly the tuples of every record whose header time
        span overlaps the request (a superset of the tuples inside the
        interval — the mount service re-applies the fused predicate), with
        byte-exact read accounting. A byte map that no longer matches the
        file on disk must surface as
        :class:`~repro.db.errors.StaleFileError`.
        """
        ...


class FormatRegistry:
    """Suffix-keyed registry of format extractors."""

    def __init__(self) -> None:
        self._by_suffix: dict[str, FormatExtractor] = {}

    def register(self, extractor: FormatExtractor) -> None:
        suffix = extractor.suffix.lower()
        if not suffix.startswith("."):
            raise IngestError(f"suffix must start with '.', got {suffix!r}")
        self._by_suffix[suffix] = extractor

    def for_path(self, path: str | Path) -> FormatExtractor:
        suffix = Path(path).suffix.lower()
        extractor = self._by_suffix.get(suffix)
        if extractor is None:
            raise IngestError(
                f"no format extractor registered for {suffix!r} "
                f"(known: {sorted(self._by_suffix)})"
            )
        return extractor

    def known_suffixes(self) -> list[str]:
        return sorted(self._by_suffix)


def default_registry() -> FormatRegistry:
    """Registry with the built-in formats (xSEED and CSV time series)."""
    from .csv_format import CsvExtractor
    from .xseed_format import XSeedExtractor

    registry = FormatRegistry()
    registry.register(XSeedExtractor())
    registry.register(CsvExtractor())
    return registry
