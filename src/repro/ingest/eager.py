"""Eager ingestion (Ei) — the paper's baseline.

"In Ei, we extend MonetDB with the required functionality to understand
mSEED files, extract, and load their data into the database tables inside
the DBMS server. The entire input repository is loaded eagerly up-front" —
plus primary- and foreign-key index construction, timed separately because
the paper observes index building takes several times longer than loading.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..db.database import Database
from ..mseed.repository import FileRepository
from ._batches import file_rows_batch, mounted_files_batch, record_rows_batch
from .formats import FormatRegistry, default_registry
from .schema import ACTUAL_TABLE, FILE_TABLE, RECORD_TABLE, ensure_schema


@dataclass
class EagerLoadReport:
    """Accounting for one eager load — the Ei side of Table 1."""

    files: int
    records: int
    samples: int
    load_seconds: float
    index_seconds: float
    data_bytes: int  # in-database size without indexes ("MonetDB" column)
    index_bytes: int  # additional index storage ("+keys" column)

    @property
    def total_seconds(self) -> float:
        return self.load_seconds + self.index_seconds

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.index_bytes


def eager_ingest(
    db: Database,
    repository: FileRepository,
    registry: FormatRegistry | None = None,
    build_indexes: bool = True,
) -> EagerLoadReport:
    """Load the entire repository into ``db`` up-front (metadata + actual
    data), then build key indexes. Returns the load report."""
    registry = registry or default_registry()
    ensure_schema(db)
    started = time.perf_counter()

    extractor_for = getattr(repository, "extractor_for", None)
    file_rows = []
    record_rows = []
    mounted = []
    for uri in repository.uris():
        path = repository.path_of(uri)
        if extractor_for is not None:
            extractor = extractor_for(path, uri, registry)
        else:
            extractor = registry.for_path(path)
        extracted = extractor.extract_metadata(path, uri)
        file_rows.append(extracted.file_row)
        record_rows.extend(extracted.record_rows)
        mounted.append(extractor.mount(path, uri))

    db.catalog.table(FILE_TABLE).append(file_rows_batch(file_rows))
    db.catalog.table(RECORD_TABLE).append(record_rows_batch(record_rows))
    db.catalog.table(ACTUAL_TABLE).append(mounted_files_batch(mounted))
    load_seconds = time.perf_counter() - started

    index_seconds = 0.0
    if build_indexes:
        for table in (FILE_TABLE, RECORD_TABLE, ACTUAL_TABLE):
            index_seconds += db.build_key_indexes(table)

    return EagerLoadReport(
        files=len(file_rows),
        records=len(record_rows),
        samples=sum(m.num_rows for m in mounted),
        load_seconds=load_seconds,
        index_seconds=index_seconds,
        data_bytes=db.data_nbytes(),
        index_bytes=db.index_nbytes(),
    )
