"""Lazy metadata-only ingestion — the setup phase of ALi.

"We load only metadata up-front. Files of interest are ingested in the
second stage of execution, wherever and whenever we need them." This module
is the *up-front* half: a header-only pass filling ``F`` and ``R``. The
per-query half (mounting) lives in :mod:`repro.core.mounting`.

With a :class:`~repro.core.metastore.MetadataStore` attached, the pass
becomes incremental across sessions: a file whose ``(mtime_ns, size)``
signature matches the stored one reuses its persisted ``F``/``R`` rows —
including the record byte map selective mounting needs — at the cost of one
``stat()``; only changed or new files pay the header walk, and the store is
re-saved afterwards so the next session inherits this one's work. Signature
drift always falls back to live extraction, so the rows loaded are identical
either way.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from ..core.metastore import MetadataStore
from ..db.database import Database
from ..mseed.repository import FileRepository
from ._batches import file_rows_batch, record_rows_batch
from .formats import FormatRegistry, default_registry
from .schema import FILE_TABLE, RECORD_TABLE, ensure_schema


@dataclass
class LazyLoadReport:
    """Accounting for one metadata-only load — the ALi side of Table 1."""

    files: int
    records: int
    samples: int  # samples described by metadata, none of them ingested
    load_seconds: float
    metadata_bytes: int  # in-database size of F and R ("ALi" column)
    files_reused: int = 0  # files served from the metastore (no header walk)


def lazy_ingest_metadata(
    db: Database,
    repository: FileRepository,
    registry: FormatRegistry | None = None,
    metastore: MetadataStore | None = None,
) -> LazyLoadReport:
    """Header-only load of ``F`` and ``R``; the actual table stays empty."""
    registry = registry or default_registry()
    ensure_schema(db)
    started = time.perf_counter()

    signature_of = getattr(repository, "signature_of", None)
    extractor_for = getattr(repository, "extractor_for", None)
    file_rows = []
    record_rows = []
    files_reused = 0
    for uri in repository.uris():
        path = repository.path_of(uri)
        if metastore is not None:
            if signature_of is not None:
                signature = signature_of(uri)
            else:
                st = os.stat(path)
                signature = (st.st_mtime_ns, st.st_size)
            stored = metastore.lookup(uri, signature)
            if stored is not None:
                file_rows.append(stored.file_row)
                record_rows.extend(stored.record_rows)
                files_reused += 1
                continue
        if extractor_for is not None:
            extractor = extractor_for(path, uri, registry)
        else:
            extractor = registry.for_path(path)
        extracted = extractor.extract_metadata(path, uri)
        file_rows.append(extracted.file_row)
        record_rows.extend(extracted.record_rows)
        if metastore is not None:
            metastore.record(
                uri, signature, extracted.file_row, extracted.record_rows
            )

    db.catalog.table(FILE_TABLE).append(file_rows_batch(file_rows))
    db.catalog.table(RECORD_TABLE).append(record_rows_batch(record_rows))
    load_seconds = time.perf_counter() - started

    if metastore is not None:
        metastore.record_table_rows(
            {
                FILE_TABLE.lower(): len(file_rows),
                RECORD_TABLE.lower(): len(record_rows),
            }
        )
        metastore.save()

    metadata_bytes = (
        db.catalog.table(FILE_TABLE).nbytes()
        + db.catalog.table(RECORD_TABLE).nbytes()
    )
    return LazyLoadReport(
        files=len(file_rows),
        records=len(record_rows),
        samples=sum(r.nsamples for r in file_rows),
        load_seconds=load_seconds,
        metadata_bytes=metadata_bytes,
        files_reused=files_reused,
    )
