"""Lazy metadata-only ingestion — the setup phase of ALi.

"We load only metadata up-front. Files of interest are ingested in the
second stage of execution, wherever and whenever we need them." This module
is the *up-front* half: a header-only pass filling ``F`` and ``R``. The
per-query half (mounting) lives in :mod:`repro.core.mounting`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..db.database import Database
from ..mseed.repository import FileRepository
from ._batches import file_rows_batch, record_rows_batch
from .formats import FormatRegistry, default_registry
from .schema import FILE_TABLE, RECORD_TABLE, ensure_schema


@dataclass
class LazyLoadReport:
    """Accounting for one metadata-only load — the ALi side of Table 1."""

    files: int
    records: int
    samples: int  # samples described by metadata, none of them ingested
    load_seconds: float
    metadata_bytes: int  # in-database size of F and R ("ALi" column)


def lazy_ingest_metadata(
    db: Database,
    repository: FileRepository,
    registry: FormatRegistry | None = None,
) -> LazyLoadReport:
    """Header-only load of ``F`` and ``R``; the actual table stays empty."""
    registry = registry or default_registry()
    ensure_schema(db)
    started = time.perf_counter()

    file_rows = []
    record_rows = []
    for uri in repository.uris():
        path = repository.path_of(uri)
        extractor = registry.for_path(path)
        extracted = extractor.extract_metadata(path, uri)
        file_rows.append(extracted.file_row)
        record_rows.extend(extracted.record_rows)

    db.catalog.table(FILE_TABLE).append(file_rows_batch(file_rows))
    db.catalog.table(RECORD_TABLE).append(record_rows_batch(record_rows))
    load_seconds = time.perf_counter() - started

    metadata_bytes = (
        db.catalog.table(FILE_TABLE).nbytes()
        + db.catalog.table(RECORD_TABLE).nbytes()
    )
    return LazyLoadReport(
        files=len(file_rows),
        records=len(record_rows),
        samples=sum(r.nsamples for r in file_rows),
        load_seconds=load_seconds,
        metadata_bytes=metadata_bytes,
    )
