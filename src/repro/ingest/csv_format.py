"""CSV time-series format — the second format proving generalization.

Layout of a ``.tscsv`` file::

    # network=WX station=AMS location= channel=TMP sample_rate=0.0166667
    # start_time=1263254400000000 nsamples=1440
    t_us,value
    1263254400000000,5.25
    ...

All metadata lives in the two comment lines, so
:meth:`CsvExtractor.extract_metadata` reads a fixed small prefix of the file —
the cheap-metadata property every format extractor must provide. The body is
one record per file (record_id 0).
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from ..db.errors import CorruptFileError, TruncatedFileError
from ..mseed.record import last_sample_offset, sample_time_offsets
from .formats import (
    ExtractedMetadata,
    FileMetaRow,
    MountedFile,
    MountOutcome,
    MountRequest,
    RecordMetaRow,
    extraction_guard,
)

SUFFIX = ".tscsv"


def write_csv_timeseries(
    path: str | Path,
    network: str,
    station: str,
    location: str,
    channel: str,
    sample_rate: float,
    start_time: int,
    values: np.ndarray,
) -> None:
    """Write one CSV time-series file in the layout CsvExtractor reads."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    values = np.asarray(values, dtype=np.float64)
    times = start_time + sample_time_offsets(len(values), sample_rate)
    with open(path, "w") as handle:
        handle.write(
            f"# network={network} station={station} location={location} "
            f"channel={channel} sample_rate={sample_rate!r}\n"
        )
        handle.write(f"# start_time={start_time} nsamples={len(values)}\n")
        handle.write("t_us,value\n")
        for t, v in zip(times, values):
            handle.write(f"{int(t)},{float(v)!r}\n")


def _parse_header(path: Path) -> dict[str, str]:
    fields: dict[str, str] = {}
    with open(path, "r") as handle:
        for line in handle:
            if not line.startswith("#"):
                break
            for token in line[1:].split():
                if "=" in token:
                    key, _, value = token.partition("=")
                    fields[key] = value
    required = {"station", "channel", "sample_rate", "start_time", "nsamples"}
    missing = required - fields.keys()
    if missing:
        # No uri here — extraction_guard annotates it at the extractor level.
        raise CorruptFileError(
            f"missing header fields {sorted(missing)}", offset=0
        )
    return fields


class CsvExtractor:
    """CSV time-series → relational schema mapping."""

    format_name = "csv-timeseries"
    suffix = SUFFIX

    def extract_metadata(self, path: Path, uri: str) -> ExtractedMetadata:
        with extraction_guard(uri, path):
            fields = _parse_header(path)
            start_time = int(fields["start_time"])
            nsamples = int(fields["nsamples"])
            sample_rate = float(fields["sample_rate"])
        end_time = start_time + last_sample_offset(nsamples, sample_rate)
        file_row = FileMetaRow(
            uri=uri,
            network=fields.get("network", ""),
            station=fields["station"],
            location=fields.get("location", ""),
            channel=fields["channel"],
            start_time=start_time,
            end_time=end_time,
            nrecords=1,
            nsamples=nsamples,
            size_bytes=path.stat().st_size,
        )
        record_row = RecordMetaRow(
            uri=uri,
            record_id=0,
            start_time=start_time,
            end_time=end_time,
            sample_rate=sample_rate,
            nsamples=nsamples,
            byte_offset=0,
            byte_length=file_row.size_bytes,
        )
        return ExtractedMetadata(file_row, [record_row])

    def mount(self, path: Path, uri: str) -> MountedFile:
        with extraction_guard(uri, path):
            fields = _parse_header(path)
            nsamples = int(fields["nsamples"])
            body = io.StringIO()
            with open(path, "r") as handle:
                for line in handle:
                    if line.startswith("#") or line.startswith("t_us"):
                        continue
                    body.write(line)
            body.seek(0)
            if nsamples == 0:
                empty = np.empty(0, dtype=np.int64)
                return MountedFile(uri, empty, empty.copy(),
                                   np.empty(0, dtype=np.float64))
            data = np.loadtxt(body, delimiter=",", dtype=np.float64, ndmin=2)
        if data.shape[0] < nsamples:
            raise TruncatedFileError(
                f"header claims {nsamples} samples, body has "
                f"{data.shape[0]}",
                uri=uri,
            )
        if data.shape[0] > nsamples:
            raise CorruptFileError(
                f"header claims {nsamples} samples, body has "
                f"{data.shape[0]}",
                uri=uri,
            )
        return MountedFile(
            uri=uri,
            record_id=np.zeros(nsamples, dtype=np.int64),
            sample_time=data[:, 0].astype(np.int64),
            sample_value=data[:, 1],
        )

    def mount_selective(
        self, path: Path, uri: str, request: MountRequest
    ) -> MountOutcome:
        """Single-record format: all-or-nothing at record granularity.

        A request that does not overlap the file's one record skips the
        body parse entirely (only the comment-line prefix is read to learn
        the record's span when the caller supplied no byte map).
        """
        spans = request.records
        if spans is not None and len(spans) == 1:
            start_time, end_time = spans[0].start_time, spans[0].end_time
            span_bytes = 0  # known from metadata; nothing read yet
        else:
            with extraction_guard(uri, path):
                fields = _parse_header(path)
                start_time = int(fields["start_time"])
                end_time = start_time + last_sample_offset(
                    int(fields["nsamples"]), float(fields["sample_rate"])
                )
            span_bytes = _prefix_length(path)
        if not request.wants(start_time, end_time):
            empty = np.empty(0, dtype=np.int64)
            mounted = MountedFile(uri, empty, empty.copy(),
                                  np.empty(0, dtype=np.float64))
            return MountOutcome(mounted, span_bytes, 0, 1)
        mounted = self.mount(path, uri)
        return MountOutcome(mounted, path.stat().st_size, 1, 0)


def _prefix_length(path: Path) -> int:
    """Bytes of the comment-line prefix (what a header-only read costs)."""
    total = 0
    with open(path, "r") as handle:
        for line in handle:
            if not line.startswith("#"):
                break
            total += len(line)
    return total
