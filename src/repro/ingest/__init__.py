"""`repro.ingest` — getting repository data into the database.

Two ingestion strategies from the paper's evaluation:

* **Ei** (:func:`eager_ingest`) — the baseline: parse and decompress every
  file up-front, materialize the actual-data table with explicit timestamps,
  and build primary/foreign-key indexes.
* **ALi setup** (:func:`lazy_ingest_metadata`) — load only metadata (file and
  record headers); actual data stays in the repository until a query mounts
  it.

File formats are pluggable through :class:`FormatRegistry` (the paper's
"generalization" challenge): xSEED ships by default and a CSV time-series
format demonstrates a second scientific format.
"""

from .csv_format import CsvExtractor, write_csv_timeseries
from .eager import EagerLoadReport, eager_ingest
from .formats import (
    ExtractedMetadata,
    FileMetaRow,
    FormatExtractor,
    FormatRegistry,
    MountedFile,
    RecordMetaRow,
    default_registry,
)
from .lazy import LazyLoadReport, lazy_ingest_metadata
from .schema import (
    ACTUAL_TABLE,
    FILE_TABLE,
    RECORD_TABLE,
    RepositoryBinding,
    ensure_schema,
    seismic_schema,
)
from .xseed_format import XSeedExtractor

__all__ = [
    "CsvExtractor",
    "write_csv_timeseries",
    "EagerLoadReport",
    "eager_ingest",
    "FormatExtractor",
    "FormatRegistry",
    "FileMetaRow",
    "RecordMetaRow",
    "ExtractedMetadata",
    "MountedFile",
    "default_registry",
    "LazyLoadReport",
    "lazy_ingest_metadata",
    "ensure_schema",
    "seismic_schema",
    "RepositoryBinding",
    "FILE_TABLE",
    "RECORD_TABLE",
    "ACTUAL_TABLE",
    "XSeedExtractor",
]
