"""xSEED → relational schema mapping (the libmseed substitute)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..mseed.record import HEADER_SIZE
from ..mseed.volume import iter_records, read_file_metadata, read_selected_records
from .formats import (
    ExtractedMetadata,
    FileMetaRow,
    MountedFile,
    MountOutcome,
    MountRequest,
    RecordMetaRow,
    extraction_guard,
)


class XSeedExtractor:
    """Extracts metadata and actual data from xSEED volumes.

    Both paths run under :func:`~repro.ingest.formats.extraction_guard`:
    a corrupt, truncated, or concurrently-rewritten volume surfaces as a
    typed :class:`~repro.db.errors.FileIngestError` naming this URI and the
    failing byte offset, never as a raw parse error.
    """

    format_name = "xseed"
    suffix = ".xseed"

    def extract_metadata(self, path: Path, uri: str) -> ExtractedMetadata:
        with extraction_guard(uri, path):
            meta, headers = read_file_metadata(path, uri=uri)
        file_row = FileMetaRow(
            uri=uri,
            network=meta.network,
            station=meta.station,
            location=meta.location,
            channel=meta.channel,
            start_time=meta.start_time,
            end_time=meta.end_time,
            nrecords=meta.nrecords,
            nsamples=meta.nsamples,
            size_bytes=meta.size_bytes,
        )
        record_rows = []
        offset = 0
        for i, h in enumerate(headers):
            length = HEADER_SIZE + h.payload_len
            record_rows.append(
                RecordMetaRow(
                    uri=uri,
                    record_id=i,
                    start_time=h.start_time,
                    end_time=h.end_time,
                    sample_rate=h.sample_rate,
                    nsamples=h.nsamples,
                    byte_offset=offset,
                    byte_length=length,
                )
            )
            offset += length
        return ExtractedMetadata(file_row, record_rows)

    def mount(self, path: Path, uri: str) -> MountedFile:
        record_ids: list[np.ndarray] = []
        sample_times: list[np.ndarray] = []
        sample_values: list[np.ndarray] = []
        with extraction_guard(uri, path):
            for i, record in enumerate(iter_records(path, uri=uri)):
                n = record.header.nsamples
                record_ids.append(np.full(n, i, dtype=np.int64))
                sample_times.append(record.sample_times())
                sample_values.append(record.samples.astype(np.float64))
        if not record_ids:
            empty = np.empty(0, dtype=np.int64)
            return MountedFile(uri, empty, empty.copy(),
                               np.empty(0, dtype=np.float64))
        return MountedFile(
            uri=uri,
            record_id=np.concatenate(record_ids),
            sample_time=np.concatenate(sample_times),
            sample_value=np.concatenate(sample_values),
        )

    def mount_selective(
        self, path: Path, uri: str, request: MountRequest
    ) -> MountOutcome:
        spans = request.records
        if spans is not None and not all(s.addressable for s in spans):
            # A byte map with holes (e.g. rows from an older metadata pass)
            # cannot be trusted for seeking; fall back to the header walk.
            spans = None
        with extraction_guard(uri, path):
            selected = read_selected_records(
                path, request.interval, uri=uri, spans=spans
            )
        record_ids: list[np.ndarray] = []
        sample_times: list[np.ndarray] = []
        sample_values: list[np.ndarray] = []
        for record_id, record in selected.records:
            n = record.header.nsamples
            record_ids.append(np.full(n, record_id, dtype=np.int64))
            sample_times.append(record.sample_times())
            sample_values.append(record.samples.astype(np.float64))
        if record_ids:
            mounted = MountedFile(
                uri=uri,
                record_id=np.concatenate(record_ids),
                sample_time=np.concatenate(sample_times),
                sample_value=np.concatenate(sample_values),
            )
        else:
            empty = np.empty(0, dtype=np.int64)
            mounted = MountedFile(uri, empty, empty.copy(),
                                  np.empty(0, dtype=np.float64))
        return MountOutcome(
            mounted=mounted,
            bytes_read=selected.bytes_read,
            records_decoded=selected.records_decoded,
            records_skipped=selected.records_skipped,
        )
