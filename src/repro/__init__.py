"""repro — Turning Scientists into Data Explorers, reproduced.

A full implementation of the two-stage query execution paradigm with
Automated Lazy ingestion (ALi) from Kargın, *Turning Scientists into Data
Explorers*, SIGMOD 2013 PhD Symposium — including every substrate it needs:

* :mod:`repro.db` — a from-scratch columnar SQL engine (the MonetDB stand-in),
* :mod:`repro.mseed` — an mSEED-style seismic file format, waveform
  synthesizer, and file repository (the SEED/ORFEUS stand-in),
* :mod:`repro.ingest` — eager ingestion (Ei) and lazy metadata-only setup
  (ALi), with a pluggable file-format registry,
* :mod:`repro.core` — the paper's contribution: plan decomposition
  ``Q = Qf ▷ Qs``, run-time rewriting onto mount/cache-scan access paths,
  breakpoints, informativeness, caching, derived metadata, multi-stage
  execution,
* :mod:`repro.explore` — explorer sessions and workload generators,
* :mod:`repro.harness` — experiment harness regenerating the paper's
  Table 1 and Figure 3 plus the ablations described in DESIGN.md.
"""

__version__ = "1.0.0"
