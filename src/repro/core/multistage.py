"""Multi-stage query execution (§5).

"Ideally, we can even go for a 'multi-stage query execution' paradigm where
the system tries to anticipate the query informativeness in more than one
place during query execution. It even tries to ingest in more than one place
during execution."

:class:`MultiStageExecutor` generalizes the two-stage breakpoint: after
stage 1, files of interest are ingested in *batches*, with a running partial
answer and cost re-estimate after every batch. A time budget, batch limit,
or user callback can stop ingestion early, yielding an approximate answer
over the processed prefix — the "queries as answers" direction the paper
cites.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..db.database import QueryResult
from ..db.errors import PlanError
from ..db.plan.logical import Aggregate, ResultScan, UnionAll
from .decompose import _replace_subtree
from .executor import TwoStageExecutor, _actual_scan_predicates
from .executor_util import batch_from_rows
from .governor import CancellationToken, QueryBudget, TruncationReport
from .mounting import MountFailureReport
from .partial import PartialMerger, is_decomposable
from .rules import apply_ali_rewrite
from .verify import verify_ali_rewrite

_TAG = "multistage_agg"


@dataclass
class BatchSnapshot:
    """What the system knows after one ingestion batch."""

    batch_index: int
    files_processed: int
    total_files: int
    running_rows: Optional[list[tuple]]
    elapsed_seconds: float

    @property
    def fraction(self) -> float:
        return self.files_processed / self.total_files if self.total_files else 1.0


@dataclass
class MultiStageResult:
    """An (possibly approximate) answer plus the per-batch trajectory."""

    result: QueryResult
    files_processed: int
    total_files: int
    snapshots: list[BatchSnapshot] = field(default_factory=list)
    converged: bool = True
    mount_failures: MountFailureReport = field(
        default_factory=MountFailureReport
    )
    # Non-None when an on_budget="partial" budget stopped ingestion early.
    truncation: Optional[TruncationReport] = None

    @property
    def approximate(self) -> bool:
        return not self.converged


StopCondition = Callable[[BatchSnapshot], bool]


class MultiStageExecutor:
    """Batched lazy ingestion with re-estimation between batches.

    Requires an ungrouped-or-grouped *decomposable* aggregate query (AVG,
    SUM, COUNT, MIN, MAX without DISTINCT) over a single actual table —
    partial answers are only meaningful when higher operators distribute
    over the ingestion batches.
    """

    def __init__(
        self,
        executor: TwoStageExecutor,
        batch_files: int = 4,
        time_budget_seconds: Optional[float] = None,
        max_batches: Optional[int] = None,
        stop_condition: Optional[StopCondition] = None,
    ) -> None:
        if batch_files < 1:
            raise ValueError("batch_files must be >= 1")
        self.executor = executor
        self.batch_files = batch_files
        self.time_budget_seconds = time_budget_seconds
        self.max_batches = max_batches
        self.stop_condition = stop_condition

    def execute(
        self,
        sql: str,
        budget: Optional[QueryBudget] = None,
        cancellation: Optional[CancellationToken] = None,
    ) -> MultiStageResult:
        governor = self.executor.begin_governed(budget, cancellation)
        try:
            return self._execute_governed(sql, governor)
        finally:
            self.executor.end_governed(governor)

    def _execute_governed(self, sql: str, governor) -> MultiStageResult:
        db = self.executor.db
        self.executor.mounts.reset_failures()  # quarantine is per execution
        decomposition = self.executor.prepare(sql)
        ctx = db.make_context(mounter=self.executor.mounts, governor=governor)

        if decomposition.metadata_only:
            result = db.execute_plan(decomposition.plan, ctx)
            return MultiStageResult(result, 0, 0)

        if len(decomposition.actual_scans) != 1:
            raise PlanError("multi-stage execution supports one actual table")
        if decomposition.qf is not None:
            stage1 = db.execute_plan(decomposition.qf, ctx)
            ctx.results[decomposition.result_tag] = stage1.batch
        files_by_alias = self.executor._files_of_interest(decomposition, ctx)
        files_by_alias, _ = self.executor._prune_by_time(
            decomposition, files_by_alias
        )
        info = decomposition.actual_scans[0]
        files = files_by_alias[info.alias]

        assert decomposition.qs is not None
        aggregate = next(
            (n for n in decomposition.qs.walk() if isinstance(n, Aggregate)), None
        )
        if aggregate is None or not is_decomposable(aggregate):
            raise PlanError(
                "multi-stage execution requires a decomposable aggregate "
                "(AVG/SUM/COUNT/MIN/MAX without DISTINCT)"
            )

        merger = PartialMerger(aggregate)
        snapshots: list[BatchSnapshot] = []
        started = time.perf_counter()
        processed = 0
        stopped = False
        batches = [
            files[i: i + self.batch_files]
            for i in range(0, len(files), self.batch_files)
        ]
        # Every ingestion stage shares one mount pool: uncached files are
        # prefetched up front (bounded in flight, so early stopping leaves
        # at most max_inflight wasted extractions to cancel) and each
        # stage's per-file plans consume them in file order.
        table_name = info.table_name
        cache = self.executor.cache
        pool = self.executor.make_mount_pool(token=governor.token)
        self.executor.mounts.pool = pool
        # The per-file rewrites below fuse this alias's predicate into every
        # branch, so prefetch under the same mount request (same interval,
        # per-file byte map) the branch will ask for.
        predicate = _actual_scan_predicates(decomposition.qs).get(info.alias)
        try:
            pool.prefetch(
                [
                    (
                        table_name,
                        uri,
                        self.executor.mounts.request_for(
                            uri, table_name, info.alias, predicate
                        ),
                    )
                    for uri in files
                    if not cache.contains(uri)
                ]
            )
            for batch_index, batch in enumerate(batches):
                for uri in batch:
                    # Budget safe point between files: raise-mode trips and
                    # cancellation abort here; a tripped partial budget
                    # keeps the prefix already merged and stops ingesting.
                    governor.checkpoint()
                    if governor.should_truncate:
                        stopped = True
                        break
                    child = apply_ali_rewrite(
                        aggregate.child,
                        {info.alias: [uri]},
                        cache,
                        time_column=self.executor.mounts.time_column,
                    )
                    if self.executor.verify_plans:
                        verify_ali_rewrite(aggregate.child, child)
                    partial_plan = merger.partial_aggregate_node(child)
                    partial = db.execute_plan(partial_plan, ctx)
                    merger.merge(partial.rows(), partial.names)
                    processed += 1
                snapshot = BatchSnapshot(
                    batch_index=batch_index,
                    files_processed=processed,
                    total_files=len(files),
                    running_rows=merger.snapshot(),
                    elapsed_seconds=time.perf_counter() - started,
                )
                snapshots.append(snapshot)
                if stopped:
                    break  # budget tripped mid-batch: keep the prefix
                if self._should_stop(snapshot, batch_index):
                    stopped = processed < len(files)
                    break
        finally:
            self.executor.mounts.pool = None
            pool.close()

        final_batch = batch_from_rows(aggregate.output, merger.finalized_rows())
        ctx.results[_TAG] = final_batch
        remainder = _replace_subtree(
            decomposition.qs, aggregate, ResultScan(_TAG, list(aggregate.output))
        )
        # Any remaining (un-ingested) actual scans would be unreachable: the
        # aggregate subtree contained the only actual scan.
        remainder = _strip_unreachable_unions(remainder)
        result = db.execute_plan(remainder, ctx)
        return MultiStageResult(
            result=result,
            files_processed=processed,
            total_files=len(files),
            snapshots=snapshots,
            converged=not stopped,
            mount_failures=self.executor.mounts.failure_report,
            truncation=governor.truncation_report(),
        )

    def _should_stop(self, snapshot: BatchSnapshot, batch_index: int) -> bool:
        if (
            self.time_budget_seconds is not None
            and snapshot.elapsed_seconds >= self.time_budget_seconds
        ):
            return True
        if self.max_batches is not None and batch_index + 1 >= self.max_batches:
            return True
        if self.stop_condition is not None and self.stop_condition(snapshot):
            return True
        return False


def _strip_unreachable_unions(plan):
    """Defensive: the remainder plan should contain no access-path unions."""
    for node in plan.walk():
        if isinstance(node, UnionAll):
            raise PlanError(
                "multi-stage remainder still contains an actual-data union; "
                "the query shape is unsupported"
            )
    return plan
