"""The ingestion cache behind the cache-scan access path.

The paper's default discards mounted data as soon as the query finishes
("the chosen approach inherently ensures up-to-date data"), and leaves cache
management as an open challenge (§5). This module implements the design
space that challenge spans:

* **policies** — DISCARD (paper default), UNBOUNDED, LRU with a byte
  budget, and ADAPTIVE (byte-budgeted like LRU, but eviction order comes
  from a :class:`~repro.core.advisor.CacheAdvisor`'s LRU-2 scores, and the
  advisor's access counts drive per-URI granularity promotion),
* **granularities** — FILE (cache whole files) and TUPLE (cache only the
  tuples inside the requested time interval; §3: "combined selections with
  cache-scans even lets the cache storage be tuple-granular").

Every entry records the closed time interval it *covers* (whole-file for a
full mount, the pruning interval for a selective one); a request is served
only when some entry's interval is a superset of the requested one —
otherwise the file must be mounted again, exactly the trade-off §3 points
out. Re-mounting with wider coverage replaces the entries it subsumes
(widen-on-remount), so coverage only ever grows until invalidation.

Interval entries are reachable two ways: the LRU-ordered entry table, and a
per-URI secondary index (``_by_uri``) that makes TUPLE-granularity lookups,
widen-on-remount subsumption and invalidation proportional to *one file's*
entries instead of the whole cache — the index is maintained by the same
locked mutations that touch the entry table, so the two can never disagree.

The cache is shared by every worker of a :class:`~repro.core.mountpool.MountPool`,
so all public operations take an internal lock: lookups (which move LRU
entries), stores (insertion + byte accounting + eviction) and invalidation
are each atomic. File-level double mounting is prevented one layer up (the
pool single-flights per URI); re-storing an existing key is an idempotent
no-op either way.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Optional

from .. import _sync
from ..db.interval import INF, WHOLE_FILE, Interval, covers
from ..db.table import ColumnBatch
from .advisor import CacheAdvisor

__all__ = [
    "INF",
    "Interval",
    "WHOLE_FILE",
    "covers",
    "CachePolicy",
    "CacheGranularity",
    "CacheStats",
    "FileSignature",
    "IngestionCache",
]

# What the ingestion cache records about the file behind an entry at store
# time: (st_mtime_ns, st_size). A lookup presenting a different signature
# proves the file changed on disk, so the entry is invalidated — closing the
# staleness gap behind the paper's "inherently up-to-date" claim for every
# retention policy, not just DISCARD.
FileSignature = tuple[int, int]


class CachePolicy(enum.Enum):
    DISCARD = "discard"  # the paper's default: never retain
    UNBOUNDED = "unbounded"  # retain everything
    LRU = "lru"  # retain within a byte budget, evict least recently used
    ADAPTIVE = "adaptive"  # byte budget + advisor-scored (LRU-2) eviction


class CacheGranularity(enum.Enum):
    FILE = "file"
    TUPLE = "tuple"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0  # entries dropped by invalidate()/clear()/staleness
    rejected: int = 0  # batches refused admission (larger than the budget)
    duplicate_stores: int = 0  # no-op stores: a covering entry already existed
    current_bytes: int = 0

    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 with no lookups)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, object]:
        """All counters plus the derived hit rate, for reports and JSON."""
        payload: dict[str, object] = asdict(self)
        payload["hit_rate"] = self.hit_rate()
        return payload


@dataclass
class _Entry:
    interval: Interval
    batch: ColumnBatch
    signature: Optional[FileSignature] = None
    nbytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.nbytes = self.batch.nbytes()


def _uri_of(key: object) -> str:
    """The URI behind a cache key (plain for FILE, first slot for TUPLE)."""
    return key[0] if isinstance(key, tuple) else key  # type: ignore[return-value]


@_sync.guarded
class IngestionCache:
    """Cache of previously mounted file data (the set ``C`` of rule (1))."""

    def __init__(
        self,
        policy: CachePolicy = CachePolicy.DISCARD,
        granularity: CacheGranularity = CacheGranularity.FILE,
        capacity_bytes: Optional[int] = None,
        advisor: Optional[CacheAdvisor] = None,
    ) -> None:
        if (
            policy in (CachePolicy.LRU, CachePolicy.ADAPTIVE)
            and capacity_bytes is None
        ):
            raise ValueError(f"{policy.value} policy requires capacity_bytes")
        self.policy = policy
        self.granularity = granularity
        self.capacity_bytes = capacity_bytes
        # The adaptive policy needs an advisor; other policies accept one
        # (its history still drives granularity promotion) but don't require
        # it. The advisor locks itself — lock order is cache → advisor.
        if advisor is None and policy is CachePolicy.ADAPTIVE:
            advisor = CacheAdvisor()
        self.advisor = advisor
        self.stats = CacheStats()  # guarded-by: _lock
        # Key: uri for FILE granularity, (uri, interval) for TUPLE.
        self._entries: OrderedDict[object, _Entry] = OrderedDict()  # guarded-by: _lock
        # Per-URI secondary index over _entries' keys: lookups, subsumption
        # and invalidation scan one file's entries, not the whole table.
        self._by_uri: dict[str, set[object]] = {}  # guarded-by: _lock
        # Reentrant: a locked public method may call another (e.g. store →
        # eviction); reentrancy also keeps single-threaded callers cheap.
        self._lock = _sync.create_rlock("IngestionCache._lock")

    # -- lookup -------------------------------------------------------------

    def _matching_key_locked(self, uri: str, request: Interval) -> Optional[object]:
        """Find a covering entry. The ``_locked`` suffix is the contract:
        the caller holds ``self._lock`` — the scan over one URI's interval
        entries is a read of state another thread may be rewriting (the
        read-modify-write this lock exists for)."""
        if self.granularity is CacheGranularity.FILE:
            entry = self._entries.get(uri)
            if entry is not None and covers(entry.interval, request):
                return uri
            return None
        for key in self._by_uri.get(uri, ()):
            if covers(self._entries[key].interval, request):
                return key
        return None

    def contains(self, uri: str, request: Interval = WHOLE_FILE) -> bool:
        """Whether rule (1) should emit cache-scan(f) instead of mount(f)."""
        with self._lock:
            return self._matching_key_locked(uri, request) is not None

    def lookup(
        self,
        uri: str,
        request: Interval = WHOLE_FILE,
        signature: Optional[FileSignature] = None,
    ) -> Optional[ColumnBatch]:
        """The cached batch covering ``request``, or None (counts a miss).

        When the caller supplies the file's current ``signature`` and it
        disagrees with the signature recorded at store time, every entry of
        that file is stale: all are invalidated and the lookup misses, so
        the caller re-mounts the rewritten file instead of serving old rows.
        """
        if self.advisor is not None:
            self.advisor.note_access(uri)
        with self._lock:
            key = self._matching_key_locked(uri, request)
            if key is None:
                self.stats.misses += 1
                return None
            entry = self._entries[key]
            if (
                signature is not None
                and entry.signature is not None
                and entry.signature != signature
            ):
                self._invalidate_locked(uri)
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry.batch

    def cached_uris(self) -> set[str]:
        with self._lock:
            return set(self._by_uri)

    # -- workload adaptation ---------------------------------------------------

    def wants_whole_file(self, uri: str) -> bool:
        """Whether the workload history says ``uri`` should mount whole.

        Only the adaptive policy promotes (other policies have no mandate to
        trade speculative bytes for future hits); the mount layer consults
        this before building a selective request.
        """
        return (
            self.policy is CachePolicy.ADAPTIVE
            and self.advisor is not None
            and self.advisor.wants_whole_file(uri)
        )

    def granularity_for(self, uri: str) -> CacheGranularity:
        """Effective store granularity for one file: a hot URI under the
        adaptive policy is retained whole even in a TUPLE-granular cache
        (the entry's coverage then satisfies every later window)."""
        if (
            self.granularity is CacheGranularity.TUPLE
            and self.wants_whole_file(uri)
        ):
            return CacheGranularity.FILE
        return self.granularity

    # -- store ---------------------------------------------------------------

    def store(
        self,
        uri: str,
        batch: ColumnBatch,
        interval: Interval = WHOLE_FILE,
        signature: Optional[FileSignature] = None,
    ) -> None:
        """Retain one mount's data, subject to policy and granularity.

        ``interval`` is the *coverage* the batch guarantees: every tuple of
        the file whose time falls inside it is present (selective mounts pass
        their pruning interval, full mounts the default whole-file). The
        batch must never contain rows filtered by non-time predicates, or
        later requests inside the coverage would see missing tuples.

        Re-storing a file widens on remount: an entry already covering
        ``interval`` is kept (the store is a no-op), otherwise the new entry
        replaces every entry of the file it subsumes — FILE granularity keeps
        exactly one entry per URI, TUPLE granularity drops the now-redundant
        narrower intervals. ``signature`` records the file's on-disk state
        for staleness checks.
        """
        if self.policy is CachePolicy.DISCARD:
            return
        if self.advisor is not None:
            self.advisor.note_access(uri)
        entry = _Entry(interval, batch, signature)  # sized outside the lock
        if (
            self.policy in (CachePolicy.LRU, CachePolicy.ADAPTIVE)
            and self.capacity_bytes is not None
            and entry.nbytes > self.capacity_bytes
        ):
            # Admission check: an entry larger than the whole budget could
            # never be retained honestly — admitting it would either evict
            # everything else and *still* overflow, or (the old bug) sit
            # above capacity forever behind a last-entry guard.
            with self._lock:
                self.stats.rejected += 1
            return
        key: object = uri if self.granularity is CacheGranularity.FILE else (
            uri, interval
        )
        with self._lock:
            existing = self._matching_key_locked(uri, interval)
            if existing is not None:
                # First store wins; later stores of covered data are no-ops.
                # This is the cache's whole concurrent-ownership story: N
                # sessions may extract and store one file simultaneously
                # (the scheduler single-flights *scheduled* mounts, but
                # inline fallbacks and independent sessions can still race)
                # and the loser's store costs one counter bump, never a
                # torn entry or double-counted bytes. ``duplicate_stores``
                # makes the dedup observable.
                self.stats.duplicate_stores += 1
                self._entries.move_to_end(existing)
                return
            # Widen-on-remount: drop every entry of this file the new
            # coverage subsumes before inserting the wider one.
            doomed = [
                k
                for k in self._by_uri.get(uri, ())
                if covers(interval, self._entries[k].interval)
            ]
            for k in doomed:
                self._remove_entry_locked(k)
            # A same-key entry the new coverage does *not* subsume (disjoint
            # FILE-granularity re-store) is still replaced below — account
            # for it, or current_bytes drifts upward forever.
            if key in self._entries:
                self._remove_entry_locked(key)
            self._entries[key] = entry
            self._by_uri.setdefault(uri, set()).add(key)
            self.stats.insertions += 1
            self.stats.current_bytes += entry.nbytes
            self._evict_if_needed_locked()

    def _remove_entry_locked(self, key: object) -> None:
        """Drop one entry and its index slot, adjusting byte accounting."""
        entry = self._entries.pop(key)
        self.stats.current_bytes -= entry.nbytes
        uri = _uri_of(key)
        keys = self._by_uri.get(uri)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_uri[uri]

    def _evict_if_needed_locked(self) -> None:
        if self.policy not in (CachePolicy.LRU, CachePolicy.ADAPTIVE):
            return
        assert self.capacity_bytes is not None
        while self.stats.current_bytes > self.capacity_bytes and self._entries:
            self._remove_entry_locked(self._victim_locked())
            self.stats.evictions += 1

    def _victim_locked(self) -> object:
        """The next eviction victim under the active policy.

        LRU: the least recently used entry (front of the ordered table).
        ADAPTIVE: the entry whose URI has the lowest LRU-2 score — files
        seen fewer than twice (score -1) go first, ties fall back to LRU
        order because the scan walks the table oldest-first. The scan is
        O(entries), which is fine: eviction is rare next to lookup, and the
        per-URI index keeps the hot path (lookup) off full scans.
        """
        if self.policy is not CachePolicy.ADAPTIVE or self.advisor is None:
            return next(iter(self._entries))
        best_key: Optional[object] = None
        best_score = 0
        for key in self._entries:
            score = self.advisor.eviction_score(_uri_of(key))
            if best_key is None or score < best_score:
                best_key, best_score = key, score
        assert best_key is not None
        return best_key

    # -- maintenance -----------------------------------------------------------

    def invalidate(self, uri: str) -> int:
        """Drop all entries of one file (e.g. the file changed on disk).

        Returns the number of entries dropped; each is counted in
        ``stats.invalidations`` so hit/miss/eviction/invalidation accounting
        stays exact under the staleness path.
        """
        with self._lock:
            return self._invalidate_locked(uri)

    def _invalidate_locked(self, uri: str) -> int:
        doomed = list(self._by_uri.get(uri, ()))
        for key in doomed:
            self._remove_entry_locked(key)
            self.stats.invalidations += 1
        return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()
            self._by_uri.clear()
            self.stats.current_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
