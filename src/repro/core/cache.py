"""The ingestion cache behind the cache-scan access path.

The paper's default discards mounted data as soon as the query finishes
("the chosen approach inherently ensures up-to-date data"), and leaves cache
management as an open challenge (§5). This module implements the design
space that challenge spans:

* **policies** — DISCARD (paper default), UNBOUNDED, and LRU with a byte
  budget,
* **granularities** — FILE (cache whole files) and TUPLE (cache only the
  tuples inside the requested time interval; §3: "combined selections with
  cache-scans even lets the cache storage be tuple-granular").

Every entry records the closed time interval it *covers* (whole-file for a
full mount, the pruning interval for a selective one); a request is served
only when some entry's interval is a superset of the requested one —
otherwise the file must be mounted again, exactly the trade-off §3 points
out. Re-mounting with wider coverage replaces the entries it subsumes
(widen-on-remount), so coverage only ever grows until invalidation.

The cache is shared by every worker of a :class:`~repro.core.mountpool.MountPool`,
so all public operations take an internal lock: lookups (which move LRU
entries), stores (insertion + byte accounting + eviction) and invalidation
are each atomic. Interval bookkeeping in ``_matching_key`` iterates the
entry table and is therefore only called with the lock held. File-level
double mounting is prevented one layer up (the pool single-flights per
URI); re-storing an existing key is an idempotent no-op either way.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from .. import _sync
from ..db.interval import INF, WHOLE_FILE, Interval, covers
from ..db.table import ColumnBatch

__all__ = [
    "INF",
    "Interval",
    "WHOLE_FILE",
    "covers",
    "CachePolicy",
    "CacheGranularity",
    "CacheStats",
    "FileSignature",
    "IngestionCache",
]

# What the ingestion cache records about the file behind an entry at store
# time: (st_mtime_ns, st_size). A lookup presenting a different signature
# proves the file changed on disk, so the entry is invalidated — closing the
# staleness gap behind the paper's "inherently up-to-date" claim for every
# retention policy, not just DISCARD.
FileSignature = tuple[int, int]


class CachePolicy(enum.Enum):
    DISCARD = "discard"  # the paper's default: never retain
    UNBOUNDED = "unbounded"  # retain everything
    LRU = "lru"  # retain within a byte budget, evict least recently used


class CacheGranularity(enum.Enum):
    FILE = "file"
    TUPLE = "tuple"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0  # entries dropped by invalidate()/clear()/staleness
    rejected: int = 0  # batches refused admission (larger than the budget)
    duplicate_stores: int = 0  # no-op stores: a covering entry already existed
    current_bytes: int = 0


@dataclass
class _Entry:
    interval: Interval
    batch: ColumnBatch
    signature: Optional[FileSignature] = None
    nbytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.nbytes = self.batch.nbytes()


@_sync.guarded
class IngestionCache:
    """Cache of previously mounted file data (the set ``C`` of rule (1))."""

    def __init__(
        self,
        policy: CachePolicy = CachePolicy.DISCARD,
        granularity: CacheGranularity = CacheGranularity.FILE,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        if policy is CachePolicy.LRU and capacity_bytes is None:
            raise ValueError("LRU policy requires capacity_bytes")
        self.policy = policy
        self.granularity = granularity
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()  # guarded-by: _lock
        # Key: uri for FILE granularity, (uri, interval) for TUPLE.
        self._entries: OrderedDict[object, _Entry] = OrderedDict()  # guarded-by: _lock
        # Reentrant: a locked public method may call another (e.g. store →
        # eviction); reentrancy also keeps single-threaded callers cheap.
        self._lock = _sync.create_rlock("IngestionCache._lock")

    # -- lookup -------------------------------------------------------------

    def _matching_key_locked(self, uri: str, request: Interval) -> Optional[object]:
        """Find a covering entry. The ``_locked`` suffix is the contract:
        the caller holds ``self._lock`` — the scan over interval entries is
        a read of state another thread may be rewriting (the
        read-modify-write this lock exists for)."""
        if self.granularity is CacheGranularity.FILE:
            entry = self._entries.get(uri)
            if entry is not None and covers(entry.interval, request):
                return uri
            return None
        for key, entry in self._entries.items():
            if isinstance(key, tuple) and key[0] == uri and covers(
                entry.interval, request
            ):
                return key
        return None

    def contains(self, uri: str, request: Interval = WHOLE_FILE) -> bool:
        """Whether rule (1) should emit cache-scan(f) instead of mount(f)."""
        with self._lock:
            return self._matching_key_locked(uri, request) is not None

    def lookup(
        self,
        uri: str,
        request: Interval = WHOLE_FILE,
        signature: Optional[FileSignature] = None,
    ) -> Optional[ColumnBatch]:
        """The cached batch covering ``request``, or None (counts a miss).

        When the caller supplies the file's current ``signature`` and it
        disagrees with the signature recorded at store time, every entry of
        that file is stale: all are invalidated and the lookup misses, so
        the caller re-mounts the rewritten file instead of serving old rows.
        """
        with self._lock:
            key = self._matching_key_locked(uri, request)
            if key is None:
                self.stats.misses += 1
                return None
            entry = self._entries[key]
            if (
                signature is not None
                and entry.signature is not None
                and entry.signature != signature
            ):
                self._invalidate_locked(uri)
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return entry.batch

    def cached_uris(self) -> set[str]:
        with self._lock:
            if self.granularity is CacheGranularity.FILE:
                return {key for key in self._entries}  # type: ignore[misc]
            return {key[0] for key in self._entries}  # type: ignore[index]

    # -- store ---------------------------------------------------------------

    def store(
        self,
        uri: str,
        batch: ColumnBatch,
        interval: Interval = WHOLE_FILE,
        signature: Optional[FileSignature] = None,
    ) -> None:
        """Retain one mount's data, subject to policy and granularity.

        ``interval`` is the *coverage* the batch guarantees: every tuple of
        the file whose time falls inside it is present (selective mounts pass
        their pruning interval, full mounts the default whole-file). The
        batch must never contain rows filtered by non-time predicates, or
        later requests inside the coverage would see missing tuples.

        Re-storing a file widens on remount: an entry already covering
        ``interval`` is kept (the store is a no-op), otherwise the new entry
        replaces every entry of the file it subsumes — FILE granularity keeps
        exactly one entry per URI, TUPLE granularity drops the now-redundant
        narrower intervals. ``signature`` records the file's on-disk state
        for staleness checks.
        """
        if self.policy is CachePolicy.DISCARD:
            return
        entry = _Entry(interval, batch, signature)  # sized outside the lock
        if (
            self.policy is CachePolicy.LRU
            and self.capacity_bytes is not None
            and entry.nbytes > self.capacity_bytes
        ):
            # Admission check: an entry larger than the whole budget could
            # never be retained honestly — admitting it would either evict
            # everything else and *still* overflow, or (the old bug) sit
            # above capacity forever behind a last-entry guard.
            with self._lock:
                self.stats.rejected += 1
            return
        key: object = uri if self.granularity is CacheGranularity.FILE else (
            uri, interval
        )
        with self._lock:
            existing = self._matching_key_locked(uri, interval)
            if existing is not None:
                # First store wins; later stores of covered data are no-ops.
                # This is the cache's whole concurrent-ownership story: N
                # sessions may extract and store one file simultaneously
                # (the scheduler single-flights *scheduled* mounts, but
                # inline fallbacks and independent sessions can still race)
                # and the loser's store costs one counter bump, never a
                # torn entry or double-counted bytes. ``duplicate_stores``
                # makes the dedup observable.
                self.stats.duplicate_stores += 1
                self._entries.move_to_end(existing)
                return
            # Widen-on-remount: drop every entry of this file the new
            # coverage subsumes before inserting the wider one.
            doomed = [
                k
                for k, e in self._entries.items()
                if (k == uri or (isinstance(k, tuple) and k[0] == uri))
                and covers(interval, e.interval)
            ]
            for k in doomed:
                old = self._entries.pop(k)
                self.stats.current_bytes -= old.nbytes
            # A same-key entry the new coverage does *not* subsume (disjoint
            # FILE-granularity re-store) is still replaced below — account
            # for it, or current_bytes drifts upward forever.
            displaced = self._entries.pop(key, None)
            if displaced is not None:
                self.stats.current_bytes -= displaced.nbytes
            self._entries[key] = entry
            self.stats.insertions += 1
            self.stats.current_bytes += entry.nbytes
            self._evict_if_needed_locked()

    def _evict_if_needed_locked(self) -> None:
        if self.policy is not CachePolicy.LRU:
            return
        assert self.capacity_bytes is not None
        while self.stats.current_bytes > self.capacity_bytes and self._entries:
            _, entry = self._entries.popitem(last=False)
            self.stats.current_bytes -= entry.nbytes
            self.stats.evictions += 1

    # -- maintenance -----------------------------------------------------------

    def invalidate(self, uri: str) -> int:
        """Drop all entries of one file (e.g. the file changed on disk).

        Returns the number of entries dropped; each is counted in
        ``stats.invalidations`` so hit/miss/eviction/invalidation accounting
        stays exact under the staleness path.
        """
        with self._lock:
            return self._invalidate_locked(uri)

    def _invalidate_locked(self, uri: str) -> int:
        doomed = [
            key
            for key in self._entries
            if key == uri or (isinstance(key, tuple) and key[0] == uri)
        ]
        for key in doomed:
            entry = self._entries.pop(key)
            self.stats.current_bytes -= entry.nbytes
            self.stats.invalidations += 1
        return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self.stats.invalidations += len(self._entries)
            self._entries.clear()
            self.stats.current_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
