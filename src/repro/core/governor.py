"""The query governor — deadlines, budgets, cancellation, circuit breaking.

The paper's §5 "query destiny" lets the scientist bound or abort a query at
the inter-stage breakpoint; this module extends that control *into* stage 2,
so no query can run, sleep, or retry unboundedly once mounting has started:

* :class:`QueryBudget` — declarative limits for one execution: a wall-clock
  deadline, a cap on bytes mounted off the repository, and a cap on records
  decoded. ``on_budget`` picks what exhaustion means: ``"raise"`` aborts
  with :class:`~repro.db.errors.QueryBudgetExceeded`; ``"partial"`` stops
  mounting and answers from the tuples produced so far, disclosed through a
  :class:`TruncationReport` on the result.
* :class:`CancellationToken` — one :class:`threading.Event` plus callbacks,
  shared by every thread a query touches. The kernel loop checks it between
  operators, mount-pool workers observe it through their waits, and the
  retry ladder's backoff waits *on* it — cancellation latency is bounded by
  the longest single read, not by sleeps or poll intervals.
* :class:`QueryGovernor` — one per ``execute()`` call; owns the budget and
  the token, arms a timer that fires the token at the deadline (waking every
  blocked wait immediately), and keeps the byte/record ledger the budget is
  charged against.
* :class:`CircuitBreaker` — session-scoped generalization of the per-query
  quarantine: a per-URI failure score that survives across queries. After
  ``failure_threshold`` failures the circuit opens and mounts of that URI
  are refused outright (no retry ladder spent); after ``cooldown_seconds``
  one half-open probe is allowed through, and its outcome re-closes or
  re-opens the circuit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from .. import _sync
from ..db.errors import (
    CircuitOpenError,
    QueryBudgetExceeded,
    QueryCancelledError,
)

# What exhausting a budget does to the query.
ON_BUDGET_RAISE = "raise"  # abort with QueryBudgetExceeded (default)
ON_BUDGET_PARTIAL = "partial"  # answer from tuples-so-far + TruncationReport

ON_BUDGET_POLICIES = (ON_BUDGET_RAISE, ON_BUDGET_PARTIAL)

# Why a token fired.
_CANCELLED = "cancelled"  # caller-initiated
_EXPIRED = "expired"  # budget/deadline-initiated


@_sync.guarded
class CancellationToken:
    """Cooperative cancellation, shared across every thread of one query.

    The token is a latch: once fired it stays fired. Long waits must wait on
    :meth:`wait` (the underlying event) instead of sleeping, and loops must
    call :meth:`raise_if_interrupted` at their boundaries. :meth:`on_cancel`
    callbacks run on the firing thread — the mount pool registers its
    ``cancel_outstanding`` there so blocked workers wake in O(ms).
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = _sync.create_lock("CancellationToken._lock")
        # Write-once latch pair: _fire() writes them under _lock exactly
        # once, then publishes through _event.set(); readers check the
        # outcome/fired flag first, so the post-publication values are
        # stable without the lock.
        self._outcome: Optional[str] = None  # unguarded-ok: write-once latch published by _event.set()
        self._reason: str = ""  # unguarded-ok: write-once latch published by _event.set()
        self._callbacks: list[Callable[[], None]] = []  # guarded-by: _lock

    @property
    def fired(self) -> bool:
        return self._event.is_set()

    @property
    def reason(self) -> str:
        return self._reason

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the token fires or ``timeout`` elapses; True if fired.

        This is the interruptible replacement for ``time.sleep`` in retry
        backoff and fault-injected latency: a fired token cuts the wait
        short immediately.
        """
        return self._event.wait(timeout)

    def cancel(self, reason: str = "query cancelled by caller") -> None:
        """Caller-initiated cancellation (always raises, never truncates)."""
        self._fire(_CANCELLED, reason)

    def expire(self, reason: str) -> None:
        """Budget-initiated firing (the governor's deadline timer)."""
        self._fire(_EXPIRED, reason)

    def _fire(self, outcome: str, reason: str) -> None:
        with self._lock:
            if self._outcome is not None:
                return  # first firing wins; the latch never resets
            self._outcome = outcome
            self._reason = reason
            callbacks = list(self._callbacks)
        self._event.set()
        for callback in callbacks:
            callback()

    def on_cancel(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the token fires (immediately if it has)."""
        with self._lock:
            if self._outcome is None:
                self._callbacks.append(callback)
                return
        callback()

    def interruption(self) -> Optional[Exception]:
        """The typed error this firing means, or None while unfired.

        A fresh exception per call — the token may be observed concurrently
        from several threads, and exceptions are mutable (tracebacks).
        """
        outcome = self._outcome
        if outcome is None:
            return None
        if outcome is _CANCELLED:
            return QueryCancelledError(self._reason)
        return QueryBudgetExceeded(self._reason)

    def raise_if_interrupted(self) -> None:
        exc = self.interruption()
        if exc is not None:
            raise exc


@dataclass(frozen=True)
class QueryBudget:
    """Declarative limits for one query execution (None = unlimited)."""

    deadline_seconds: Optional[float] = None
    max_mount_bytes: Optional[int] = None
    max_decoded_records: Optional[int] = None
    on_budget: str = ON_BUDGET_RAISE

    def __post_init__(self) -> None:
        if self.on_budget not in ON_BUDGET_POLICIES:
            raise ValueError(
                f"on_budget must be one of {ON_BUDGET_POLICIES}, "
                f"got {self.on_budget!r}"
            )
        for name in ("deadline_seconds", "max_mount_bytes", "max_decoded_records"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")

    @property
    def bounded(self) -> bool:
        return (
            self.deadline_seconds is not None
            or self.max_mount_bytes is not None
            or self.max_decoded_records is not None
        )


@dataclass(frozen=True)
class TruncationReport:
    """How much of the query a tripped budget left unanswered.

    Attached to ``TwoStageResult.truncation`` / ``MultiStageResult.truncation``
    under the ``on_budget="partial"`` policy — the degraded-answer disclosure,
    mirroring :class:`~repro.core.mounting.MountFailureReport` for skips.
    """

    reason: str
    elapsed_seconds: float
    bytes_mounted: int
    records_decoded: int
    mounts_completed: int
    mounts_truncated: int  # branches answered empty after the trip

    def describe(self) -> str:
        return (
            f"answer truncated: {self.reason} "
            f"(after {self.elapsed_seconds:.3f}s, "
            f"{self.mounts_completed} mount(s) completed, "
            f"{self.mounts_truncated} skipped, "
            f"{self.bytes_mounted:,} bytes, "
            f"{self.records_decoded:,} records decoded)"
        )


@_sync.guarded
class QueryGovernor:
    """Per-execution budget enforcement and cancellation fan-out.

    One governor serves one ``execute()`` call. It owns (or adopts) the
    query's :class:`CancellationToken`, arms a daemon timer that *expires*
    the token at the wall deadline — waking every event-based wait at once —
    and keeps the mounted-bytes / decoded-records ledger.

    Checkpoints (:meth:`checkpoint`) are placed between physical operators,
    at mount branch entry, and at multi-stage batch boundaries; they are a
    couple of attribute reads when nothing has fired, so the hot path stays
    hot. Charging (:meth:`charge_mount`) happens once per completed
    extraction, on the consuming side.
    """

    def __init__(
        self,
        budget: Optional[QueryBudget] = None,
        token: Optional[CancellationToken] = None,
        clock: Callable[[], float] = time.monotonic,
        on_charge: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.budget = budget if budget is not None else QueryBudget()
        self.token = token if token is not None else CancellationToken()
        # `on_charge(bytes_read, records_decoded)` fires once per completed
        # extraction, after the ledger update but before any budget raise —
        # the per-tenant accounting hook: the query service feeds every
        # query's charges into its tenant's aggregate ledger through this,
        # so tenant-level admission (shedding on an exhausted byte budget)
        # sees mounts the moment they complete, not when the query returns.
        self.on_charge = on_charge
        self._clock = clock
        self._lock = _sync.create_lock("QueryGovernor._lock")
        self._started = clock()
        self._deadline_at: Optional[float] = None
        # _trip_reason is a write-once latch (first _trip wins); readers
        # (tripped/trip_reason properties, the raise paths) only consume it
        # after it is set, and it never changes once non-None.
        self._trip_reason: Optional[str] = None  # unguarded-ok: write-once latch; first _trip() wins
        self.bytes_mounted = 0  # guarded-by: _lock
        self.records_decoded = 0  # guarded-by: _lock
        self.mounts_completed = 0  # guarded-by: _lock
        self.mounts_truncated = 0  # guarded-by: _lock
        self._timer: Optional[threading.Timer] = None
        if self.budget.deadline_seconds is not None:
            self._deadline_at = self._started + self.budget.deadline_seconds
            self._timer = threading.Timer(
                self.budget.deadline_seconds, self._deadline_fired
            )
            self._timer.daemon = True
            self._timer.start()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Disarm the deadline timer (executor calls this in its finally)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- state ---------------------------------------------------------------

    @property
    def partial(self) -> bool:
        """True when exhaustion truncates instead of raising."""
        return self.budget.on_budget == ON_BUDGET_PARTIAL

    @property
    def tripped(self) -> bool:
        return self._trip_reason is not None

    @property
    def trip_reason(self) -> Optional[str]:
        return self._trip_reason

    @property
    def should_truncate(self) -> bool:
        """True once a tripped budget should empty the remaining branches."""
        return self.tripped and self.partial

    def elapsed(self) -> float:
        return self._clock() - self._started

    # -- enforcement ---------------------------------------------------------

    def _trip(self, reason: str) -> None:
        with self._lock:
            if self._trip_reason is None:
                self._trip_reason = reason

    def _deadline_fired(self) -> None:
        reason = (
            f"wall deadline of {self.budget.deadline_seconds}s exceeded"
        )
        self._trip(reason)
        self.token.expire(reason)

    def checkpoint(self) -> None:
        """Enforce the budget at a safe point.

        Caller cancellation always raises. A tripped budget raises under
        ``on_budget="raise"`` and merely stays tripped under ``"partial"``
        (the mount layer then answers remaining branches empty).
        """
        if self.token.fired:
            exc = self.token.interruption()
            if isinstance(exc, QueryCancelledError):
                raise exc
        if (
            self._deadline_at is not None
            and not self.tripped
            and self._clock() >= self._deadline_at
        ):
            # The timer thread may lag; the clock is authoritative.
            self._deadline_fired()
        if self.tripped and not self.partial:
            raise QueryBudgetExceeded(
                str(self._trip_reason), self.truncation_report()
            )

    def charge_mount(self, bytes_read: int, records_decoded: int) -> None:
        """Account one completed extraction against the budget."""
        with self._lock:
            self.bytes_mounted += bytes_read
            self.records_decoded += records_decoded
            self.mounts_completed += 1
            # Snapshot the totals this charge produced while still inside
            # the critical section: the budget comparison below must not
            # re-read the ledger after the lock drops, where concurrent
            # charges would make the trip decision (and its message)
            # depend on worker interleaving.
            bytes_total = self.bytes_mounted
            records_total = self.records_decoded
        if self.on_charge is not None:
            # Outside the lock, and before a raise-mode trip below: the
            # tenant ledger must record work that was actually done even
            # when doing it exhausted this query's own budget.
            self.on_charge(bytes_read, records_decoded)
        budget = self.budget
        if (
            budget.max_mount_bytes is not None
            and bytes_total > budget.max_mount_bytes
        ):
            self._trip(
                f"mounted {bytes_total:,} bytes, over the "
                f"{budget.max_mount_bytes:,}-byte budget"
            )
        if (
            budget.max_decoded_records is not None
            and records_total > budget.max_decoded_records
        ):
            self._trip(
                f"decoded {records_total:,} records, over the "
                f"{budget.max_decoded_records:,}-record budget"
            )
        if self.tripped and not self.partial:
            raise QueryBudgetExceeded(
                str(self._trip_reason), self.truncation_report()
            )

    def note_truncated_mount(self) -> None:
        with self._lock:
            self.mounts_truncated += 1

    def truncation_report(self) -> Optional[TruncationReport]:
        """The disclosure for this execution, or None when nothing tripped."""
        reason = self._trip_reason
        if reason is None:
            return None
        with self._lock:
            # One consistent ledger snapshot — a report built from reads
            # interleaved with concurrent charges could pair this charge's
            # byte count with the next one's record count.
            return TruncationReport(
                reason=reason,
                elapsed_seconds=self.elapsed(),
                bytes_mounted=self.bytes_mounted,
                records_decoded=self.records_decoded,
                mounts_completed=self.mounts_completed,
                mounts_truncated=self.mounts_truncated,
            )


# -- circuit breaker -----------------------------------------------------------

CIRCUIT_CLOSED = "closed"
CIRCUIT_OPEN = "open"
CIRCUIT_HALF_OPEN = "half_open"


@dataclass
class _Circuit:
    failures: int = 0
    state: str = CIRCUIT_CLOSED
    opened_at: float = 0.0
    probing: bool = False  # a half-open probe is in flight
    last_error: str = ""
    last_touched: float = 0.0  # for idle-expiry / cap eviction


@_sync.guarded
class CircuitBreaker:
    """Cross-query failure scoring per key, with half-open probe retries.

    The per-query quarantine (PR 2) protects one query from re-extracting a
    file that just failed; the breaker protects *every subsequent query*
    from spending a full retry ladder on a key that keeps failing. Keys are
    URIs on the local mount path and *endpoints* on the remote transport
    path — the state machine is identical:

    ``closed`` → normal; failures accumulate, successes reset the score.
    ``open`` → after ``failure_threshold`` consecutive failures; mounts are
    refused outright (:class:`~repro.db.errors.CircuitOpenError`) until
    ``cooldown_seconds`` pass.
    ``half_open`` → after the cooldown, exactly one probe mount is let
    through; success closes the circuit, failure re-opens it (and restarts
    the cooldown).

    The registry is bounded: entries idle longer than
    ``idle_expiry_seconds`` are dropped, and when more than ``max_circuits``
    keys hold state the least-recently-touched closed circuits are evicted
    first — a long exploration session over a huge archive cannot leak one
    ``_Circuit`` per file it ever failed on. Eviction runs on the failure
    path only, so :meth:`allow` stays O(1).

    ``clock`` is injectable so tests drive the cooldown deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        max_circuits: int = 1024,
        idle_expiry_seconds: float = 900.0,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        if max_circuits < 1:
            raise ValueError("max_circuits must be >= 1")
        if idle_expiry_seconds <= 0:
            raise ValueError("idle_expiry_seconds must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.max_circuits = max_circuits
        self.idle_expiry_seconds = idle_expiry_seconds
        self._clock = clock
        self._lock = _sync.create_lock("CircuitBreaker._lock")
        self._circuits: dict[str, _Circuit] = {}  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    def __len__(self) -> int:
        with self._lock:
            return len(self._circuits)

    def _reap_locked(self, now: float) -> None:
        """Drop idle entries; enforce the cap (closed, least-recent first)."""
        cutoff = now - self.idle_expiry_seconds
        stale = [
            key
            for key, circuit in self._circuits.items()
            if circuit.last_touched <= cutoff
        ]
        for key in stale:
            del self._circuits[key]
        self.evictions += len(stale)
        excess = len(self._circuits) - self.max_circuits
        if excess <= 0:
            return
        victims = sorted(
            self._circuits.items(),
            key=lambda kv: (
                kv[1].state != CIRCUIT_CLOSED,  # closed circuits go first
                kv[1].last_touched,
            ),
        )
        for key, _ in victims[:excess]:
            del self._circuits[key]
        self.evictions += excess

    def allow(self, uri: str) -> bool:
        """May this URI be mounted right now? (May admit a half-open probe.)"""
        with self._lock:
            circuit = self._circuits.get(uri)
            if circuit is None:
                return True
            circuit.last_touched = self._clock()
            if circuit.state == CIRCUIT_CLOSED:
                return True
            if circuit.state == CIRCUIT_OPEN:
                if self._clock() - circuit.opened_at < self.cooldown_seconds:
                    return False
                circuit.state = CIRCUIT_HALF_OPEN
                circuit.probing = True
                return True
            # half-open: one probe at a time
            if circuit.probing:
                return False
            circuit.probing = True
            return True

    def record_failure(self, uri: str, error: Optional[BaseException] = None) -> None:
        with self._lock:
            now = self._clock()
            circuit = self._circuits.setdefault(uri, _Circuit())
            circuit.failures += 1
            circuit.last_touched = now
            if error is not None:
                circuit.last_error = type(error).__name__
            reopen = (
                circuit.state == CIRCUIT_HALF_OPEN
                or circuit.failures >= self.failure_threshold
            )
            circuit.probing = False
            if reopen:
                circuit.state = CIRCUIT_OPEN
                circuit.opened_at = now
            self._reap_locked(now)

    def record_success(self, uri: str) -> None:
        with self._lock:
            self._circuits.pop(uri, None)

    def likely_blocked(self, uri: str) -> bool:
        """Non-mutating peek: would :meth:`allow` refuse this URI right now?

        Used to keep refused files out of prefetch lists without consuming
        the half-open probe slot (only a real :meth:`allow` does that).
        """
        with self._lock:
            circuit = self._circuits.get(uri)
            if circuit is None or circuit.state == CIRCUIT_CLOSED:
                return False
            if circuit.state == CIRCUIT_OPEN:
                return (
                    self._clock() - circuit.opened_at < self.cooldown_seconds
                )
            return circuit.probing

    def state_of(self, uri: str) -> str:
        with self._lock:
            circuit = self._circuits.get(uri)
            return circuit.state if circuit is not None else CIRCUIT_CLOSED

    def open_uris(self) -> list[str]:
        with self._lock:
            return sorted(
                uri
                for uri, circuit in self._circuits.items()
                if circuit.state != CIRCUIT_CLOSED
            )

    def reset(self) -> None:
        with self._lock:
            self._circuits.clear()

    def refusal(
        self, uri: str, *, endpoint: Optional[str] = None
    ) -> CircuitOpenError:
        """The typed error for a mount the breaker refused.

        ``endpoint`` attributes the refusal to a remote endpoint when the
        circuit key is an endpoint rather than a single file — the remote
        transport passes it so :class:`~repro.db.errors.CircuitOpenError`
        (and through it, per-source failure reports) name the source.
        """
        key = endpoint if endpoint is not None else uri
        with self._lock:
            circuit = self._circuits.get(key)
            failures = circuit.failures if circuit is not None else 0
            last = circuit.last_error if circuit is not None else ""
            remaining = 0.0
            if circuit is not None and circuit.state == CIRCUIT_OPEN:
                remaining = max(
                    0.0,
                    self.cooldown_seconds
                    - (self._clock() - circuit.opened_at),
                )
        subject = f"endpoint {endpoint!r}: " if endpoint is not None else ""
        detail = f"{subject}circuit open after {failures} failure(s)"
        if last:
            detail = f"{detail} (last: {last})"
        if remaining > 0:
            detail = f"{detail}; probe retry in {remaining:.1f}s"
        return CircuitOpenError(detail, uri=uri, endpoint=endpoint)


# -- retry budget --------------------------------------------------------------


@_sync.guarded
class RetryBudget:
    """A per-query cap on *extra* attempts across every remote request.

    The per-request retry ladder bounds one request; the retry budget bounds
    the query: a flapping endpoint that makes every ranged GET need two
    retries would otherwise multiply the query's wall time by the retry
    count times the file count. Each retry (and each hedged backup request)
    spends one unit via :meth:`try_spend`; once the pool is dry, requests
    get exactly one attempt and failures surface immediately — degrading the
    query instead of stretching it.

    Shared by every mount worker of one query, hence the lock. The remote
    repository resets it in ``begin_query``.
    """

    def __init__(self, attempts: int = 64) -> None:
        if attempts < 0:
            raise ValueError("attempts must be >= 0")
        self.attempts = attempts
        self._lock = _sync.create_lock("RetryBudget._lock")
        self._spent = 0  # guarded-by: _lock

    def try_spend(self, n: int = 1) -> bool:
        """Reserve ``n`` attempts; False (and no spend) when over budget."""
        with self._lock:
            if self._spent + n > self.attempts:
                return False
            self._spent += n
            return True

    def spent(self) -> int:
        with self._lock:
            return self._spent

    def remaining(self) -> int:
        with self._lock:
            return max(0, self.attempts - self._spent)

    def reset(self) -> None:
        with self._lock:
            self._spent = 0


__all__ = [
    "CIRCUIT_CLOSED",
    "CIRCUIT_HALF_OPEN",
    "CIRCUIT_OPEN",
    "CancellationToken",
    "CircuitBreaker",
    "ON_BUDGET_PARTIAL",
    "ON_BUDGET_POLICIES",
    "ON_BUDGET_RAISE",
    "QueryBudget",
    "QueryGovernor",
    "RetryBudget",
    "TruncationReport",
]
