"""`repro.core` — the paper's primary contribution.

Two-stage query execution with Automated Lazy ingestion (ALi): plan
decomposition ``Q = Qf ▷ Qs``, the inter-stage breakpoint with
informativeness estimation and query-destiny policies, run-time rewrite
rule (1) onto mount/cache-scan access paths, the ingestion cache design
space, derived metadata, and multi-stage execution.
"""

from .advisor import (
    CacheAdvisor,
    PredictedWindow,
    PrefetchStats,
    SessionPrefetcher,
    WorkloadPredictor,
)
from .breakpoint import BreakpointInfo
from .cache import (
    CacheGranularity,
    CachePolicy,
    CacheStats,
    IngestionCache,
    WHOLE_FILE,
)
from .decompose import ActualScanInfo, Decomposition, decompose
from .derived import DERIVED_TABLE, DerivedMetadataStore, derived_table_schema
from .executor import (
    BULK,
    PER_FILE,
    StageTimings,
    TwoStageExecutor,
    TwoStageResult,
)
from .governor import (
    CancellationToken,
    CircuitBreaker,
    ON_BUDGET_PARTIAL,
    ON_BUDGET_POLICIES,
    ON_BUDGET_RAISE,
    QueryBudget,
    QueryGovernor,
    TruncationReport,
)
from .informativeness import (
    AbortAboveCost,
    CallbackPolicy,
    CostModel,
    DestinyAction,
    DestinyDecision,
    DestinyPolicy,
    InformativenessReport,
    LimitFilesAboveCost,
    ProceedAlways,
    estimate_informativeness,
)
from .mounting import (
    FAIL_FAST,
    SKIP_AND_REPORT,
    ExtractResult,
    MountFailure,
    MountFailureReport,
    MountService,
    MountStats,
    interval_from_predicate,
)
from .metastore import MetadataStore, MetastoreStats
from .mountpool import (
    MountPool,
    MountPoolTimings,
    MountTaskTiming,
    merge_requests,
)
from .multistage import BatchSnapshot, MultiStageExecutor, MultiStageResult
from .partial import PartialMerger, is_decomposable
from .rules import RewriteReport, apply_ali_rewrite, rewrite_actual_scan
from .topn import (
    TopNBranchMonitor,
    TopNPushdownTarget,
    branch_hulls,
    find_top_n_target,
)
from .verify import verify_ali_rewrite, verify_decomposition

__all__ = [
    "BreakpointInfo",
    "CacheAdvisor",
    "PredictedWindow",
    "PrefetchStats",
    "SessionPrefetcher",
    "WorkloadPredictor",
    "MetadataStore",
    "MetastoreStats",
    "CachePolicy",
    "CacheGranularity",
    "CacheStats",
    "IngestionCache",
    "WHOLE_FILE",
    "ActualScanInfo",
    "Decomposition",
    "decompose",
    "DERIVED_TABLE",
    "DerivedMetadataStore",
    "derived_table_schema",
    "TwoStageExecutor",
    "TwoStageResult",
    "StageTimings",
    "BULK",
    "PER_FILE",
    "CostModel",
    "InformativenessReport",
    "estimate_informativeness",
    "DestinyPolicy",
    "DestinyAction",
    "DestinyDecision",
    "ProceedAlways",
    "AbortAboveCost",
    "LimitFilesAboveCost",
    "CallbackPolicy",
    "CancellationToken",
    "CircuitBreaker",
    "ON_BUDGET_PARTIAL",
    "ON_BUDGET_POLICIES",
    "ON_BUDGET_RAISE",
    "QueryBudget",
    "QueryGovernor",
    "TruncationReport",
    "MountService",
    "MountStats",
    "MountFailure",
    "MountFailureReport",
    "ExtractResult",
    "FAIL_FAST",
    "SKIP_AND_REPORT",
    "MountPool",
    "MountPoolTimings",
    "MountTaskTiming",
    "merge_requests",
    "interval_from_predicate",
    "MultiStageExecutor",
    "MultiStageResult",
    "BatchSnapshot",
    "PartialMerger",
    "is_decomposable",
    "RewriteReport",
    "apply_ali_rewrite",
    "rewrite_actual_scan",
    "TopNBranchMonitor",
    "TopNPushdownTarget",
    "branch_hulls",
    "find_top_n_target",
    "verify_ali_rewrite",
    "verify_decomposition",
]
