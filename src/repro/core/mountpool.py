"""Parallel stage-2 mounting — a worker pool for the mount access path.

Rule (1) turns each actual-data ``scan(a)`` into a union over the files of
interest, one ``mount(f)`` per uncached file. Those mounts are independent
of one another (extract + Steim decode + transform touch nothing shared but
the buffer manager and the ingestion cache), which makes the second stage
embarrassingly parallel — OLA-RAW and DiNoDB reach interactive in-situ
speeds exactly this way. :class:`MountPool` fans the files of interest out
to a thread pool while the plan consumes results strictly in branch order,
so answers stay byte-identical to serial execution.

Division of labour
------------------
Only the *extraction* (file read, decode, transform to a
:class:`~repro.db.table.ColumnBatch`) runs on workers. Everything stateful —
cache stores, mount callbacks (derived metadata), statistics, predicate
delivery — stays on the consuming thread, in plan order. This keeps the
``PER_FILE`` merge deterministic and leaves single-threaded components
single-threaded.

Guarantees
----------
* **Deterministic order** — the consumer (:meth:`take`) drains results in
  the exact order the union branches execute; parallelism never reorders
  rows.
* **Bounded in-flight batches (backpressure)** — at most ``max_inflight``
  extracted-but-unconsumed batches exist at any moment; workers block until
  the consumer drains, so mounting a 5,000-file repository never
  materializes 5,000 batches at once.
* **Single-flight** — duplicate tasks for one ``(table, uri)`` (self-joins,
  two aliases over one repository) extract the file once.
* **Work conservation** — if the consumer reaches a branch whose task has
  not started yet (workers are behind), it steals the task and extracts
  inline rather than idling; a starved pool degrades to serial, never to a
  deadlock.
* **Serial fallback** — ``max_workers=1`` runs every extraction inline on
  the consumer thread: no threads, no queues, today's exact behaviour (plus
  timing capture).
* **Error semantics** — with ``fail_fast=True`` (default) the first worker
  failure (e.g. :class:`~repro.db.errors.IngestError`) cancels all
  outstanding mounts and re-raises the original exception on the consuming
  thread, annotated with the offending file URI (``exc.mount_uri``), so
  diagnostics degrade to exactly the serial ones. With ``fail_fast=False``
  (the executor's SKIP_AND_REPORT policy) a failure poisons only its own
  key: the worker keeps draining the queue, the other branches complete,
  and :meth:`take` re-raises the per-file exception for the mount service
  to quarantine.

Timing model
------------
Each task records the worker that ran it, its real extraction seconds, and
the simulated disk seconds the buffer manager charged for the file (see
``db/buffer.py`` — reported experiment times are wall CPU + simulated I/O).
:class:`MountPoolTimings` exposes the serialized total and the critical
path (the busiest worker's chain): with independent disks/workers the mount
phase's modeled wall time is the critical path, which is what
``benchmarks/bench_parallel_mount.py`` reports as the parallel speedup.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from .. import _sync
from ..db.interval import hull
from ..ingest.formats import MountRequest
from .governor import CancellationToken

if TYPE_CHECKING:  # pragma: no cover - typing only (runtime import cycle)
    from .mounting import ExtractResult

# extract(uri, table_name, request) -> ExtractResult. A None request means
# "mount the whole file"; a request narrows extraction to the records
# overlapping its interval (selective mounting).
ExtractFn = Callable[[str, str, Optional[MountRequest]], "ExtractResult"]

MountKey = tuple[str, str]  # (table_name, uri)

# One prefetch task: a key, optionally with the branch's mount request.
MountTask = "MountKey | tuple[str, str, Optional[MountRequest]]"


def merge_requests(
    a: Optional[MountRequest], b: Optional[MountRequest]
) -> Optional[MountRequest]:
    """The single request serving two takers of one key (single-flight).

    ``None`` (whole file) absorbs everything; otherwise the merged request
    covers both intervals, so each taker's coverage check passes. The
    cross-query scheduler (:mod:`repro.serve.scheduler`) reuses this to
    widen one shared extraction over every waiting query's request — the
    per-query and cross-query single-flight deliberately share one merge
    rule, so a batch that satisfies a pool taker satisfies a scheduler
    waiter too.
    """
    if a is None or b is None:
        return None
    return MountRequest(
        interval=hull(a.interval, b.interval),
        records=a.records if a.records is not None else b.records,
    )

_POLL_SECONDS = 0.05  # backpressure wake-up interval for cancellation checks


def _interleave_endpoints(keys: Sequence[MountKey]) -> list[MountKey]:
    """Round-robin fresh tasks across their sources' endpoints.

    A federated plan lists each repository's files contiguously; queueing
    them in that order would park every worker on the first (possibly slow
    or dying) endpoint while the other sources sit idle. Interleaving keeps
    all endpoints moving; consumption order — and therefore the answer — is
    untouched, because ``take`` drains results in plan order regardless of
    queue order.
    """
    from ..remote.uris import endpoint_of  # deferred: pulls in repro.remote

    groups: dict[Optional[str], list[MountKey]] = {}
    for key in keys:
        groups.setdefault(endpoint_of(key[1]), []).append(key)
    if len(groups) < 2:
        return list(keys)
    out: list[MountKey] = []
    for batch in itertools.zip_longest(*groups.values()):
        out.extend(key for key in batch if key is not None)
    return out


@dataclass(frozen=True)
class MountTaskTiming:
    """One file's extraction, attributed to the worker that ran it."""

    uri: str
    table_name: str
    worker: int  # dense worker index; the consumer thread is a worker too
    extract_seconds: float  # real wall time spent extracting/decoding
    io_seconds: float  # simulated disk seconds charged by the buffer manager

    @property
    def seconds(self) -> float:
        return self.extract_seconds + self.io_seconds


@dataclass
class MountPoolTimings:
    """Aggregated per-worker mount timing for one pool lifetime."""

    tasks: list[MountTaskTiming] = field(default_factory=list)

    @property
    def files(self) -> int:
        return len(self.tasks)

    @property
    def serial_seconds(self) -> float:
        """What the mounts would cost end-to-end on one worker."""
        return sum(t.seconds for t in self.tasks)

    @property
    def worker_seconds(self) -> dict[int, float]:
        """worker index → that worker's busy time (its chain of tasks)."""
        busy: dict[int, float] = {}
        for t in self.tasks:
            busy[t.worker] = busy.get(t.worker, 0.0) + t.seconds
        return busy

    @property
    def wall_seconds(self) -> float:
        """The critical path: the busiest worker's chain.

        Under the explicit disk model, concurrent mounts overlap their
        simulated reads, so the phase's modeled wall time is the longest
        per-worker chain rather than the serialized sum.
        """
        busy = self.worker_seconds
        return max(busy.values()) if busy else 0.0

    @property
    def speedup(self) -> float:
        wall = self.wall_seconds
        return self.serial_seconds / wall if wall > 0 else 1.0


@_sync.guarded
class MountPool:
    """Fan file extraction out to ``max_workers`` threads, bounded in flight.

    One pool serves one query (or one multi-stage execution); create it
    after run-time optimization, :meth:`prefetch` the mount branches in plan
    order, let the plan :meth:`take` them in the same order, and
    :meth:`close` it when the query finishes (closing cancels whatever the
    plan never consumed).
    """

    def __init__(
        self,
        extract: ExtractFn,
        max_workers: int = 1,
        max_inflight: Optional[int] = None,
        fail_fast: bool = True,
        token: Optional[CancellationToken] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._extract = extract
        # Cooperative cancellation: firing the token cancels every
        # outstanding mount *from the firing thread*, which also releases
        # the backpressure semaphore — a worker blocked in _acquire_slot
        # wakes in O(ms), not at the next poll interval.
        self._token = token
        if token is not None:
            token.on_cancel(self.cancel_outstanding)
        self.max_workers = max_workers
        self.max_inflight = max_inflight or 2 * max_workers
        self.fail_fast = fail_fast
        self.timings = MountPoolTimings()  # guarded-by: _lock
        self._lock = _sync.create_lock("MountPool._lock")
        self._slots = threading.Semaphore(self.max_inflight)
        # unguarded-ok: created/shut down on the consumer thread only;
        # workers never touch the executor handle itself.
        self._executor: Optional[ThreadPoolExecutor] = None
        self._futures: dict[MountKey, Future] = {}  # guarded-by: _lock
        self._queue: deque[MountKey] = deque()  # guarded-by: _lock
        self._live_workers = 0  # guarded-by: _lock
        self._pending_takes: dict[MountKey, int] = {}  # guarded-by: _lock
        # Per-key mount request, hull-merged over every prefetch of the key
        # so the single extraction covers all of its takers.
        self._requests: dict[MountKey, Optional[MountRequest]] = {}  # guarded-by: _lock
        self._results: dict[MountKey, "ExtractResult"] = {}  # guarded-by: _lock
        self._holds_slot: set[MountKey] = set()  # guarded-by: _lock
        self._worker_ids: dict[int, int] = {}  # guarded-by: _lock
        # unguarded-ok: monotonic False->True flag; workers poll it, the
        # semaphore release in cancel_outstanding publishes it promptly.
        self._cancelled = False
        # unguarded-ok: consumer-thread-only lifecycle flag.
        self._closed = False
        # unguarded-ok: write-once latch (first writer wins under _lock);
        # take() reads it opportunistically and re-checks after the future
        # fails, so a missed read only delays the raise by one step.
        self.first_error: Optional[BaseException] = None
        # unguarded-ok: write-once latch set with first_error under _lock.
        self.failed_uri: Optional[str] = None

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "MountPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        """Cancel outstanding mounts and release the worker threads."""
        self.cancel_outstanding()
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def cancel_outstanding(self) -> None:
        """Cancel every prefetched mount the plan has not consumed yet.

        Queued tasks are cancelled outright; running tasks observe the flag
        at their next backpressure wait. Blocked workers are woken so the
        pool always drains promptly.
        """
        self._cancelled = True
        with self._lock:
            futures = list(self._futures.values())
        for future in futures:
            future.cancel()
        # Wake workers blocked on backpressure so they can observe the flag.
        self._slots.release(self.max_workers)

    # -- producing side ------------------------------------------------------

    def prefetch(self, tasks: Sequence) -> None:
        """Begin extracting ``(table_name, uri[, request])`` tasks, in plan
        order.

        Duplicate keys are single-flighted: the file is extracted once,
        under the hull of every taker's request, and served to every
        consumer that takes it. With ``max_workers=1`` this only records
        the expected takes — extraction happens lazily inline.
        """
        keys: list[MountKey] = []
        with self._lock:
            for task in tasks:
                table_name, uri = task[0], task[1]
                request = task[2] if len(task) > 2 else None
                key = (table_name, uri)
                keys.append(key)
                if key in self._pending_takes:
                    self._requests[key] = merge_requests(
                        self._requests.get(key), request
                    )
                else:
                    self._requests[key] = request
                self._pending_takes[key] = self._pending_takes.get(key, 0) + 1
        if self.max_workers == 1 or len(set(keys)) < 2:
            return  # serial fallback: extract inline at take() time
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="mountpool",
            )
        with self._lock:
            fresh = [key for key in dict.fromkeys(keys) if key not in self._futures]
            for key in _interleave_endpoints(fresh):
                self._futures[key] = Future()
                self._queue.append(key)
            spawn = min(self.max_workers - self._live_workers, len(self._queue))
            self._live_workers += spawn
        for _ in range(spawn):
            self._executor.submit(self._worker_loop)

    def _worker_loop(self) -> None:
        """Drain the task queue: claim a backpressure slot *first*, then the
        next unclaimed task.

        The order matters — it is the pool's deadlock-freedom invariant. A
        claimed task always holds a slot already, so it runs to completion
        without ever blocking on the pool again; the consumer can therefore
        never end up waiting on a worker that is itself waiting (for a slot
        only the consumer could free). A worker blocked on backpressure has
        claimed nothing, so the consumer steals its would-be task inline.
        """
        try:
            while not self._interrupted():
                try:
                    self._acquire_slot()
                except CancelledError:
                    break
                key: Optional[MountKey] = None
                future: Optional[Future] = None
                with self._lock:
                    while self._queue:
                        candidate = self._queue.popleft()
                        entry = self._futures.get(candidate)
                        # Skip tasks the consumer stole or cancellation took.
                        if entry is not None and entry.set_running_or_notify_cancel():
                            key, future = candidate, entry
                            break
                if key is None or future is None:
                    self._slots.release()
                    break  # queue drained
                table_name, uri = key
                with self._lock:
                    request = self._requests.get(key)
                try:
                    result = self._timed_extract(uri, table_name, request)
                except BaseException as exc:  # noqa: BLE001 - forwarded to taker
                    self._slots.release()
                    self._record_failure(uri, exc)
                    future.set_exception(exc)
                    if self.fail_fast:
                        break
                    continue  # skip mode: this key is poisoned, keep draining
                with self._lock:
                    self._holds_slot.add(key)
                future.set_result(result)
        finally:
            with self._lock:
                self._live_workers -= 1

    def _acquire_slot(self) -> None:
        """Backpressure: hold a slot per in-flight (running or unconsumed)
        batch.

        Cancellation (direct or via the token) releases ``max_workers``
        semaphore permits, so a blocked worker wakes through the acquire
        itself — the poll is only a backstop against lost wake-ups.
        """
        while not self._slots.acquire(timeout=_POLL_SECONDS):
            if self._interrupted():
                raise CancelledError("mount pool cancelled")
        if self._interrupted():
            self._slots.release()
            raise CancelledError("mount pool cancelled")

    def _interrupted(self) -> bool:
        return self._cancelled or (
            self._token is not None and self._token.fired
        )

    def _timed_extract(
        self, uri: str, table_name: str, request: Optional[MountRequest]
    ) -> "ExtractResult":
        started = time.perf_counter()
        result = self._extract(uri, table_name, request)
        elapsed = time.perf_counter() - started
        with self._lock:
            worker = self._worker_ids.setdefault(
                threading.get_ident(), len(self._worker_ids)
            )
            self.timings.tasks.append(
                MountTaskTiming(
                    uri=uri,
                    table_name=table_name,
                    worker=worker,
                    extract_seconds=elapsed,
                    io_seconds=result.io_seconds,
                )
            )
        return result

    def _record_failure(self, uri: str, exc: BaseException) -> None:
        with self._lock:
            # FileIngestError pre-sets mount_uri only when it knows its uri;
            # getattr-None (not hasattr) so a None placeholder still gets
            # the pool's annotation.
            if getattr(exc, "mount_uri", None) is None:
                try:
                    exc.mount_uri = uri  # type: ignore[attr-defined]
                except AttributeError:  # pragma: no cover - slotted exception
                    pass
            if not self.fail_fast:
                return  # skip mode: the failure poisons only its own future
            if self.first_error is None:
                self.first_error = exc
                self.failed_uri = uri
        self.cancel_outstanding()

    # -- consuming side ------------------------------------------------------

    def release(self, table_name: str, uri: str) -> bool:
        """Renounce one expected take of a key (Top-N early termination).

        The consuming plan has proved it will never ``take`` this branch, so
        the pool drops one pending take; when that was the last one, the
        task is withdrawn entirely. Returns True when the withdrawal
        provably avoided the extraction (the task never ran and never will);
        False when the work already happened, is mid-flight on a worker, or
        other takers still want the key.
        """
        key: MountKey = (table_name, uri)
        with self._lock:
            if key not in self._pending_takes:
                return False  # never prefetched, nothing to renounce
            remaining = self._pending_takes[key] - 1
            if remaining > 0:
                self._pending_takes[key] = remaining
                return False  # single-flight: someone else still takes it
            extracted = key in self._results
            self._pending_takes.pop(key, None)
            self._results.pop(key, None)
            self._requests.pop(key, None)
            future = self._futures.pop(key, None)
            slot_free = key in self._holds_slot
            self._holds_slot.discard(key)
        if slot_free:
            self._slots.release()
        if future is None:
            # Serial fallback (extraction is lazy-inline) — dropping the
            # pending take is the whole cancellation, unless a prior take
            # already extracted it for another taker.
            return not extracted
        if future.cancel():
            return True  # still queued: the extraction never happens
        # Already running or finished: let the worker complete (it holds a
        # backpressure slot and will release it via the done callback), but
        # nobody will read the result.
        future.add_done_callback(lambda _f: self._abandon(key))
        return False

    def _abandon(self, key: MountKey) -> None:
        """Release the slot of a completed-but-released task's result."""
        slot_free = False
        with self._lock:
            slot_free = key in self._holds_slot
            self._holds_slot.discard(key)
        if slot_free:
            self._slots.release()

    def take(
        self,
        uri: str,
        table_name: str,
        request: Optional[MountRequest] = None,
    ) -> "ExtractResult":
        """The extraction result for one mount branch, in plan order.

        Blocks until the worker finishes; steals not-yet-started tasks and
        runs them inline; extracts inline anything never prefetched (e.g. a
        cache-scan fallback, which uses the caller's ``request``). Stolen
        and pooled tasks run under the key's hull-merged prefetch request,
        which covers every taker's. Raises the pool's first error once any
        worker has failed.
        """
        if self.first_error is not None:
            raise self.first_error
        key: MountKey = (table_name, uri)
        with self._lock:
            cached = self._results.get(key)
            future = self._futures.get(key)
            # A prefetched key extracts under its merged request; a key the
            # pool never saw uses whatever the caller asked for.
            pooled_request = self._requests.get(key, request)
        if cached is not None:
            return self._consume(key, cached)
        if future is None:
            # Never prefetched (serial fallback, or a cache-scan miss that
            # fell back to mounting): extract on the consuming thread.
            return self._consume(
                key, self._extract_inline(uri, table_name, pooled_request)
            )
        if not future.done() and future.cancel():
            # Work conservation: the task is still queued (workers busy or
            # backpressure-starved) — run it here instead of waiting.
            with self._lock:
                self._futures.pop(key, None)
            return self._consume(
                key, self._extract_inline(uri, table_name, pooled_request)
            )
        try:
            result = future.result()
        except CancelledError:
            if self.first_error is not None:
                raise self.first_error from None
            interruption = (
                self._token.interruption() if self._token is not None else None
            )
            if interruption is not None:
                # The token cancelled this future before a worker started
                # it; surface the typed interruption, not a raw
                # CancelledError, so policy layers can tell why.
                raise interruption from None
            raise
        except BaseException:
            if self.first_error is not None:
                raise self.first_error from None
            raise
        return self._consume(key, result)

    def _extract_inline(
        self, uri: str, table_name: str, request: Optional[MountRequest]
    ) -> "ExtractResult":
        """Consumer-thread extraction, with the same error annotation and
        cancellation the worker path gets (``exc.mount_uri``, pool poisoned)."""
        try:
            return self._timed_extract(uri, table_name, request)
        except BaseException as exc:
            self._record_failure(uri, exc)
            raise

    def _consume(
        self, key: MountKey, batch: "ExtractResult"
    ) -> "ExtractResult":
        """Bookkeeping for one served batch: keep it around while further
        takes of the same key are expected (single-flight), release the
        backpressure slot once nobody else will read it."""
        slot_free = False
        with self._lock:
            remaining = self._pending_takes.get(key, 1) - 1
            if remaining > 0:
                self._pending_takes[key] = remaining
                self._results[key] = batch
            else:
                self._pending_takes.pop(key, None)
                self._results.pop(key, None)
                self._futures.pop(key, None)
                self._requests.pop(key, None)
                slot_free = key in self._holds_slot
                self._holds_slot.discard(key)
        if slot_free:
            self._slots.release()
        return batch
