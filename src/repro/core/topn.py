"""Top-N early termination over rule-(1) union branches.

After the run-time rewrite turns an actual scan into a union of per-file
access paths, an ``ORDER BY sample_time … LIMIT k`` query does not need every
branch: each file's metadata time hull bounds the sort keys its rows can
produce, so once *k* candidates at least as good as a remaining branch's best
possible row are in hand, that branch provably cannot change the answer and
its mount can be cancelled before a byte is read.

:func:`find_top_n_target` is the static gate — it recognizes the exact plan
shapes where skipping a branch is sound — and :class:`TopNBranchMonitor` is
the run-time half, plugged into
:class:`~repro.db.plan.physical.ExecutionContext` as its ``branch_monitor``:

* ``schedule`` orders branches most-promising-hull first, so the threshold
  tightens as early as possible;
* ``should_skip`` compares a branch's hull against the current threshold (the
  *k*-th best primary key seen so far) and fires the executor's ``on_skip``
  callback, which releases the branch's pending mount from the pool /
  scheduler and counts it in the mount accounting;
* ``observe`` folds each produced branch's primary-key column into the
  threshold;
* ``note_result`` records the Top-N operator's emitted rows, and ``safe()``
  audits every skip against them: a skip is sound only if the full *k* rows
  were emitted and the skipped hull is *strictly* worse than the worst
  emitted key. Strictness matters — a tied row may not be skipped, because
  secondary sort keys or stable tie order could prefer it.

The audit makes correctness unconditional: the executor re-runs the plan
exhaustively if ``safe()`` is ever False (operators between the union and the
TopN could in principle drop rows in ways the hull argument does not cover),
so an unsound skip costs time, never answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..db.expr import ColumnRef, Expr
from ..db.interval import WHOLE_FILE, intersect, is_empty
from ..db.plan.logical import (
    CacheScan,
    Distinct,
    Join,
    LogicalPlan,
    Mount,
    Project,
    Select,
    SemiJoin,
    TopN,
    UnionAll,
)
from ..db.table import ColumnBatch

#: Operators through which a Top-N threshold argument survives: each may
#: drop or reorder rows, but never *creates* a row whose primary key is not
#: present below it, so a branch whose entire hull sorts strictly after the
#: k-th emitted key still cannot contribute. Aggregate is excluded (a skipped
#: row changes aggregated values), as are Sort/Limit/TopN (positional).
_TRANSPARENT = (Project, Select, Join, SemiJoin, Distinct)


@dataclass(frozen=True)
class TopNPushdownTarget:
    """A plan shape where branch skipping is sound: one TopN over one
    all-access-path union, primary-sorted on the union's time column."""

    topn: TopN
    union: UnionAll
    key: str  # qualified primary sort key, e.g. "d.sample_time"
    ascending: bool


def _nodes_between(root: LogicalPlan, target: LogicalPlan) -> Optional[list]:
    """Nodes from ``root`` down to ``target``, inclusive of ``root`` and
    exclusive of ``target``; None when ``target`` is not under ``root``."""
    if root is target:
        return []
    for child in root.children():
        below = _nodes_between(child, target)
        if below is not None:
            return [root] + below
    return None


def find_top_n_target(
    plan: LogicalPlan, time_column: str
) -> Optional[TopNPushdownTarget]:
    """The static gate: match the rewritten stage-2 plan against the shape
    Top-N early termination can serve, or None."""
    unions = [n for n in plan.walk() if isinstance(n, UnionAll)]
    topns = [n for n in plan.walk() if isinstance(n, TopN)]
    if len(unions) != 1 or len(topns) != 1:
        return None
    union, topn = unions[0], topns[0]
    if not union.inputs or topn.count <= 0:
        return None
    if not all(isinstance(b, (Mount, CacheScan)) for b in union.inputs):
        return None
    aliases = {b.alias for b in union.inputs}
    if len(aliases) != 1:
        return None
    # A branch pruning interval on some *other* column would make the file
    # span a wrong bound for what the branch can produce.
    if any(
        b.interval is not None and b.interval_column != time_column
        for b in union.inputs
    ):
        return None
    (alias,) = aliases
    key = f"{alias}.{time_column}"
    primary = topn.keys[0][0]
    if not isinstance(primary, ColumnRef) or primary.key != key:
        return None
    if key not in union.output_keys():
        return None
    between = _nodes_between(topn.children()[0], union)
    if between is None:  # union not under the TopN
        return None
    if not all(isinstance(node, _TRANSPARENT) for node in between):
        return None
    return TopNPushdownTarget(topn=topn, union=union, key=key,
                              ascending=topn.keys[0][1])


def branch_hulls(
    union: UnionAll,
    file_span: Callable[[str], Optional[tuple[int, int]]],
) -> list[tuple[int, int]]:
    """Per-branch bounds on the primary key values a branch can produce.

    Each branch is a per-file access path; its hull is the file's metadata
    time span intersected with the branch's pruning interval. Unknown spans
    degrade to the pruning interval alone (or the whole line), which only
    widens the hull — never unsound, just less opportunity to skip.
    """
    hulls: list[tuple[int, int]] = []
    for branch in union.inputs:
        span = file_span(branch.uri) or WHOLE_FILE
        if branch.interval is not None:
            span = intersect(span, branch.interval)
        hulls.append(span)
    return hulls


@dataclass
class TopNBranchMonitor:
    """Run-time branch skipping for one Top-N query execution.

    ``count``/``ascending``/``key`` come from the matched
    :class:`TopNPushdownTarget`; ``hulls`` from :func:`branch_hulls`.
    ``on_skip(index)`` fires exactly once per skipped branch (release the
    pending mount, bump accounting).
    """

    count: int
    ascending: bool
    key: str
    hulls: list[tuple[int, int]]
    on_skip: Optional[Callable[[int], None]] = None
    skipped: dict[int, tuple[int, int]] = field(default_factory=dict)
    _kept: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    _result_rows: Optional[int] = None
    _worst_emitted: Optional[int] = None

    # -- scheduling -------------------------------------------------------------

    def schedule(self, n: int) -> list[int]:
        """Branch consumption order, most promising hull first.

        Promising = smallest lower bound for ascending, largest upper bound
        for descending: those branches tighten the threshold fastest. Ties
        keep original order. Defensive identity when the union the physical
        operator asks about is not the one the hulls describe.
        """
        if n != len(self.hulls):
            return list(range(n))
        if self.ascending:
            return sorted(range(n), key=lambda i: (self.hulls[i][0], i))
        return sorted(range(n), key=lambda i: (-self.hulls[i][1], i))

    # -- the running threshold --------------------------------------------------

    def _threshold(self) -> Optional[int]:
        """The k-th best primary key seen, once k candidates exist."""
        if len(self._kept) < self.count:
            return None
        # _kept is sorted ascending: the k-th smallest for ASC is its last
        # entry, the k-th largest for DESC its first.
        return int(self._kept[-1]) if self.ascending else int(self._kept[0])

    def should_skip(self, index: int) -> bool:
        threshold = self._threshold()
        if threshold is None:
            return False
        lo, hi = self.hulls[index]
        if is_empty((lo, hi)):
            skip = True
        elif self.ascending:
            skip = lo > threshold  # strictly: ties may not be skipped
        else:
            skip = hi < threshold
        if skip and index not in self.skipped:
            self.skipped[index] = (lo, hi)
            if self.on_skip is not None:
                self.on_skip(index)
        return skip

    def observe(self, index: int, batch: ColumnBatch) -> None:
        if batch.num_rows == 0:
            return
        values = np.asarray(
            batch.column(self.key).values, dtype=np.int64
        )
        merged = np.sort(np.concatenate([self._kept, values]))
        if self.ascending:
            self._kept = merged[: self.count]
        else:
            self._kept = merged[-self.count:]

    # -- the audit ---------------------------------------------------------------

    def note_result(self, primary: Expr, batch: ColumnBatch) -> None:
        """Called by the Top-N operator with its emitted rows."""
        self._result_rows = batch.num_rows
        if batch.num_rows == 0:
            self._worst_emitted = None
            return
        values = np.asarray(primary.evaluate(batch).values, dtype=np.int64)
        # Worst = last in sort order: max for ascending, min for descending.
        self._worst_emitted = int(values.max() if self.ascending else values.min())

    def safe(self) -> bool:
        """True when every skip is provably sound against the emitted rows.

        No skips is trivially safe. Otherwise the answer must be full (k
        rows) and every skipped hull strictly worse than the worst emitted
        key: any row a skipped branch could have produced then sorts strictly
        after all k answer rows — on the primary key alone, so secondary keys
        and tie order cannot rescue it — and the answer is unchanged.
        """
        if not self.skipped:
            return True
        if self._result_rows != self.count or self._worst_emitted is None:
            return False
        for lo, hi in self.skipped.values():
            if is_empty((lo, hi)):
                continue
            if self.ascending:
                if not lo > self._worst_emitted:
                    return False
            else:
                if not hi < self._worst_emitted:
                    return False
        return True
