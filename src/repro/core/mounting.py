"""The mount machinery — ALi's extract/transform/ingest access path.

"The mount operator is responsible for ALi. It extracts, transforms (to
comply with database schema) and ingests actual data from individual
external files. … we make them accessible to the system as dangling partial
tables and unmount them after the query, unless we decide to cache them."

:class:`MountService` implements the engine's :class:`~repro.db.plan.physical.Mounter`
protocol: the physical ``PMount``/``PCacheScan`` operators call into it. The
mounted batch never enters the catalog — it flows through the plan as a
dangling partial table and is garbage once the query completes, unless the
ingestion cache retains it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from ..db.buffer import BufferManager
from ..db.errors import IngestError
from ..db.expr import ColumnRef, Comparison, Expr, Literal, conjuncts
from ..db.table import ColumnBatch
from ..db.types import DataType
from ..ingest._batches import mounted_file_batch
from ..ingest.schema import BindingSet
from .cache import (
    INF,
    CacheGranularity,
    IngestionCache,
    Interval,
    WHOLE_FILE,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pool uses batches)
    from .mountpool import MountPool

OnMountCallback = Callable[[str, ColumnBatch], None]


def interval_from_predicate(
    predicate: Optional[Expr], time_key: str
) -> Interval:
    """The closed time interval implied by range conjuncts on ``time_key``.

    Only conjuncts of the form ``time <op> literal`` (or mirrored) narrow the
    interval; anything else leaves it unbounded on that side. The hull is
    closed even for strict comparisons — serving a superset and re-filtering
    is always correct.
    """
    lo, hi = -INF, INF
    if predicate is None:
        return lo, hi
    for conj in conjuncts(predicate):
        if not isinstance(conj, Comparison):
            continue
        column, literal, op = None, None, conj.op
        if isinstance(conj.left, ColumnRef) and isinstance(conj.right, Literal):
            column, literal = conj.left, conj.right
        elif isinstance(conj.right, ColumnRef) and isinstance(conj.left, Literal):
            column, literal = conj.right, conj.left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if column is None or column.key != time_key:
            continue
        if literal.dtype is not DataType.TIMESTAMP:
            continue
        value = int(literal.value)
        if op in (">", ">="):
            lo = max(lo, value)
        elif op in ("<", "<="):
            hi = min(hi, value)
        elif op == "=":
            lo, hi = max(lo, value), min(hi, value)
    return lo, hi


def _interval_mask_batch(
    batch: ColumnBatch, time_column: str, interval: Interval
) -> ColumnBatch:
    if interval == WHOLE_FILE:
        return batch
    values = batch.column(time_column).values
    mask = (values >= interval[0]) & (values <= interval[1])
    return batch.filter(mask)


@dataclass
class MountStats:
    mounts: int = 0
    cache_scans: int = 0
    tuples_mounted: int = 0
    bytes_read: int = 0
    fallback_mounts: int = 0  # cache-scan that had to re-mount


@dataclass
class MountService:
    """Resolves mount/cache-scan access paths against file repositories.

    ``buffers`` (optional) charges simulated disk time for reading repository
    files: a file's first read in a connection pays the disk model, repeats
    are free — modeling the OS page cache that makes the paper's "hot" ALi
    runs cheap even though they re-mount every query.

    The service is *reentrant*: :meth:`_extract` may run concurrently on the
    workers of a :class:`~repro.core.mountpool.MountPool` (buffer-manager and
    counter updates are guarded by an internal lock; the ingestion cache
    locks itself). When ``pool`` is attached — the two-stage executor does so
    for the duration of stage 2 — :meth:`mount_file` consumes pre-extracted
    batches from it instead of extracting inline; everything stateful
    (cache stores, callbacks, delivery) still happens on the calling thread,
    in plan order.
    """

    bindings: BindingSet
    cache: IngestionCache = field(default_factory=IngestionCache)
    buffers: Optional[BufferManager] = None
    time_column: str = "sample_time"
    stats: MountStats = field(default_factory=MountStats)
    pool: Optional["MountPool"] = field(default=None, repr=False)
    _callbacks: list[OnMountCallback] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def add_mount_callback(self, callback: OnMountCallback) -> None:
        """Register a side-effect of mounting (e.g. derived metadata, §5)."""
        self._callbacks.append(callback)

    # -- Mounter protocol -----------------------------------------------------

    def mount_file(
        self,
        uri: str,
        table_name: str,
        alias: str,
        predicate: Optional[Expr],
    ) -> ColumnBatch:
        if self.pool is not None:
            batch = self.pool.take(uri, table_name)
        else:
            batch, _ = self._extract(uri, table_name)
        with self._lock:
            self.stats.mounts += 1
            self.stats.tuples_mounted += batch.num_rows

        for callback in self._callbacks:
            callback(uri, batch)

        interval = interval_from_predicate(
            predicate, f"{alias}.{self.time_column}"
        )
        if self.cache.granularity is CacheGranularity.TUPLE:
            narrowed = _interval_mask_batch(batch, self.time_column, interval)
            self.cache.store(uri, narrowed, interval)
            batch = narrowed
        else:
            self.cache.store(uri, batch)
        return self._deliver(batch, alias, predicate)

    def cache_scan(
        self,
        uri: str,
        table_name: str,
        alias: str,
        predicate: Optional[Expr],
    ) -> ColumnBatch:
        interval = interval_from_predicate(
            predicate, f"{alias}.{self.time_column}"
        )
        cached = self.cache.lookup(uri, interval)
        if cached is None:
            # The plan expected a hit (rule (1) consulted the cache at
            # run-time optimization) but the entry is gone — fall back.
            with self._lock:
                self.stats.fallback_mounts += 1
            return self.mount_file(uri, table_name, alias, predicate)
        with self._lock:
            self.stats.cache_scans += 1
        return self._deliver(cached, alias, predicate)

    # -- internals ---------------------------------------------------------------

    def _extract(self, uri: str, table_name: str) -> tuple[ColumnBatch, float]:
        """Extract one file into a batch; thread-safe (mount-pool workers
        call this concurrently). Returns the batch plus the simulated disk
        seconds the buffer manager charged for reading the file."""
        binding = self.bindings.for_table(table_name)
        if binding is None:
            raise IngestError(
                f"actual table {table_name!r} has no repository binding"
            )
        path = binding.repository.path_of(uri)
        assert binding.registry is not None
        extractor = binding.registry.for_path(path)
        nbytes = path.stat().st_size
        io_seconds = 0.0
        with self._lock:
            if self.buffers is not None:
                io_seconds = self.buffers.touch(f"repo:{uri}", nbytes)
            self.stats.bytes_read += nbytes
        mounted = extractor.mount(path, uri)
        return mounted_file_batch(mounted), io_seconds

    def _deliver(
        self, batch: ColumnBatch, alias: str, predicate: Optional[Expr]
    ) -> ColumnBatch:
        """Qualify column names for the query plan and apply the fused
        selection (the combined select+mount / select+cache-scan paths)."""
        qualified = ColumnBatch(
            [f"{alias}.{name}" for name in batch.names], batch.columns
        )
        if predicate is not None:
            mask = predicate.evaluate(qualified).values
            qualified = qualified.filter(mask)
        return qualified
