"""The mount machinery — ALi's extract/transform/ingest access path.

"The mount operator is responsible for ALi. It extracts, transforms (to
comply with database schema) and ingests actual data from individual
external files. … we make them accessible to the system as dangling partial
tables and unmount them after the query, unless we decide to cache them."

:class:`MountService` implements the engine's :class:`~repro.db.plan.physical.Mounter`
protocol: the physical ``PMount``/``PCacheScan`` operators call into it. The
mounted batch never enters the catalog — it flows through the plan as a
dangling partial table and is garbage once the query completes, unless the
ingestion cache retains it.

Failure handling
----------------
Repositories hold files the database does not control, so extraction can
fail mid-query: truncated volumes, corrupt Steim frames, files rewritten or
deleted between stage 1 and stage 2. Every such failure surfaces as a typed
:class:`~repro.db.errors.FileIngestError` naming the URI and byte offset,
and the service applies a per-query *degradation policy*:

* ``FAIL_FAST`` (default) — the first failure aborts the query, exactly the
  historical behaviour.
* ``SKIP_AND_REPORT`` — the offending file is quarantined, its union branch
  contributes zero rows (equivalent to rule (1) dropping the branch), and
  the query completes over the intact files with a
  :class:`MountFailureReport` listing every skipped file.

Transient failures (I/O errors, files caught mid-rewrite) are retried with
backoff up to ``max_retries`` times before the policy applies. Staleness is
detected twice: the ingestion cache compares the ``(mtime_ns, size)``
signature recorded at store time on every cache-scan (a changed file is
invalidated and re-mounted), and :meth:`_extract` re-stats the file after
extraction so a file rewritten *during* the read raises
:class:`~repro.db.errors.StaleFileError` rather than yielding torn rows.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional

from .. import _sync
from ..db.buffer import BufferManager
from ..db.errors import (
    FileIngestError,
    IngestError,
    QueryBudgetExceeded,
    StaleFileError,
)
from ..db.expr import Expr
from ..db.interval import covers, interval_from_predicate
from ..db.table import ColumnBatch
from ..ingest._batches import mounted_file_batch, mounted_files_batch
from ..ingest.formats import (
    FormatExtractor,
    MountRequest,
    RecordSpan,
    SelectiveFormatExtractor,
)
from ..ingest.schema import BindingSet
from .cache import (
    INF,
    CacheGranularity,
    CachePolicy,
    FileSignature,
    IngestionCache,
    Interval,
    WHOLE_FILE,
)
from .governor import CancellationToken, CircuitBreaker, QueryGovernor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pool uses batches)
    from .mountpool import MountPool

OnMountCallback = Callable[[str, ColumnBatch], None]

# Per-query degradation policies for mount failures.
FAIL_FAST = "fail"  # first failure aborts the query (default)
SKIP_AND_REPORT = "skip"  # quarantine the file, answer from the intact rest

ON_ERROR_POLICIES = (FAIL_FAST, SKIP_AND_REPORT)


@dataclass(frozen=True)
class MountFailure:
    """One quarantined file: what failed, where, and how hard we tried.

    ``endpoint`` names the remote endpoint the failure is attributable to,
    when there is one — the per-source attribution a federated query's
    degradation report needs ("everything behind ``archive-b`` failed"
    reads very differently from "these three files are corrupt").
    """

    uri: str
    error: str  # exception class name, e.g. "TruncatedFileError"
    message: str
    offset: Optional[int] = None  # byte offset of the failure, if known
    retries: int = 0  # transparent retries spent before quarantining
    endpoint: Optional[str] = None  # remote endpoint at fault, if any

    def describe(self) -> str:
        where = f" at byte {self.offset}" if self.offset is not None else ""
        tried = f" after {self.retries} retries" if self.retries else ""
        source = f" [endpoint {self.endpoint}]" if self.endpoint else ""
        return f"{self.uri}: {self.error}{where}{tried}{source}: {self.message}"


@dataclass
class MountFailureReport:
    """Every file a SKIP_AND_REPORT query answered *without*.

    Attached to :class:`~repro.core.executor.StageTimings` so callers can
    tell a complete answer from a degraded one.
    """

    failures: list[MountFailure] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.failures)

    def __len__(self) -> int:
        return len(self.failures)

    def uris(self) -> list[str]:
        return [f.uri for f in self.failures]

    def endpoints(self) -> list[str]:
        """The remote endpoints implicated in the skips, sorted, deduped."""
        return sorted({f.endpoint for f in self.failures if f.endpoint})

    def by_endpoint(self) -> dict[Optional[str], list[MountFailure]]:
        """Failures grouped per source (None = local repository files)."""
        grouped: dict[Optional[str], list[MountFailure]] = {}
        for failure in self.failures:
            grouped.setdefault(failure.endpoint, []).append(failure)
        return grouped

    def describe(self) -> str:
        if not self.failures:
            return "no mount failures"
        lines = [f"{len(self.failures)} file(s) skipped:"]
        lines.extend(f"  {f.describe()}" for f in self.failures)
        return "\n".join(lines)


# interval_from_predicate moved to repro.db.interval (the plan verifier needs
# it below the core layer); re-exported here for compatibility.
__all__ = [
    "ExtractResult",
    "FAIL_FAST",
    "MountFailure",
    "MountFailureReport",
    "MountService",
    "MountStats",
    "ON_ERROR_POLICIES",
    "SKIP_AND_REPORT",
    "interval_from_predicate",
]


def _interval_mask_batch(
    batch: ColumnBatch, time_column: str, interval: Interval
) -> ColumnBatch:
    if interval == WHOLE_FILE:
        return batch
    values = batch.column(time_column).values
    mask = (values >= interval[0]) & (values <= interval[1])
    return batch.filter(mask)


def _file_signature(path: Path) -> FileSignature:
    stat = path.stat()
    return (stat.st_mtime_ns, stat.st_size)


@dataclass
class MountStats:
    mounts: int = 0
    cache_scans: int = 0
    tuples_mounted: int = 0
    bytes_read: int = 0  # bytes actually pulled off disk (partial for selective)
    fallback_mounts: int = 0  # cache-scan that had to re-mount
    stale_remounts: int = 0  # cache entries invalidated by a changed file
    retries: int = 0  # transient-failure extraction retries
    retry_deadline_hits: int = 0  # retry ladders cut short by the deadline
    skipped_mounts: int = 0  # branches answered empty under SKIP_AND_REPORT
    budget_truncated_mounts: int = 0  # branches answered empty after a budget trip
    breaker_skips: int = 0  # mounts refused outright by the circuit breaker
    selective_mounts: int = 0  # extractions that pruned at record granularity
    records_decoded: int = 0  # payloads actually Steim-decoded
    records_skipped: int = 0  # records pruned by the request interval
    empty_interval_skips: int = 0  # contradictory predicates: no disk touched
    early_terminated_branches: int = 0  # union branches skipped by Top-N proof
    early_cancelled_mounts: int = 0  # pending mounts released before extraction
    whole_file_requests: int = 0  # selective requests widened: interval covers file
    adaptive_whole_file: int = 0  # requests widened by the cache's hot-file promotion
    prefetched_mounts: int = 0  # speculative extractions stored ahead of a query
    prefetched_bytes: int = 0  # bytes read by those speculative extractions


@dataclass(frozen=True)
class ExtractResult:
    """One file's extraction: the batch, its cost, and what it covers.

    ``coverage`` is the closed time interval the batch is complete for —
    whole-file for a full mount, the request's pruning interval for a
    selective one (the batch then holds every tuple of every record
    overlapping it, a superset of the tuples *inside* it).
    """

    batch: ColumnBatch
    io_seconds: float
    coverage: Interval = WHOLE_FILE
    bytes_read: int = 0
    records_decoded: int = 0
    records_skipped: int = 0
    selective: bool = False
    # The file's signature observed by the post-extraction staleness check,
    # for the cache store — saves a third stat/HEAD per mount. None when
    # staleness validation is off.
    signature: Optional[FileSignature] = None


# (uri, table_name) -> the file's record byte map from the R table, or None.
RecordMapProvider = Callable[[str, str], Optional[tuple[RecordSpan, ...]]]


@dataclass
class MountService:
    """Resolves mount/cache-scan access paths against file repositories.

    ``buffers`` (optional) charges simulated disk time for reading repository
    files: a file's first read in a connection pays the disk model, repeats
    are free — modeling the OS page cache that makes the paper's "hot" ALi
    runs cheap even though they re-mount every query.

    The service is *reentrant*: :meth:`_extract` may run concurrently on the
    workers of a :class:`~repro.core.mountpool.MountPool` (the buffer manager
    and the ingestion cache lock themselves; the service's own lock guards
    only its counters). When ``pool`` is attached — the two-stage executor
    does so for the duration of stage 2 — :meth:`mount_file` consumes
    pre-extracted batches from it instead of extracting inline; everything
    stateful (cache stores, callbacks, delivery) still happens on the calling
    thread, in plan order.

    ``on_error`` selects the degradation policy (module constants
    :data:`FAIL_FAST` / :data:`SKIP_AND_REPORT`); transient failures retry
    ``max_retries`` times with linear backoff first. ``validate_staleness``
    enables the ``(mtime_ns, size)`` signature checks on cache scans and the
    post-extraction re-stat.
    """

    bindings: BindingSet
    cache: IngestionCache = field(default_factory=IngestionCache)
    buffers: Optional[BufferManager] = None
    time_column: str = "sample_time"
    stats: MountStats = field(default_factory=MountStats)  # guarded-by: _lock
    pool: Optional["MountPool"] = field(default=None, repr=False)
    on_error: str = FAIL_FAST
    max_retries: int = 2
    retry_backoff_seconds: float = 0.01
    # Multiplicative backoff jitter: each retry's wait is scaled by a
    # uniform draw from [1, 1 + retry_jitter], so parallel workers retrying
    # the same endpoint desynchronize instead of hammering it in lockstep.
    retry_jitter: float = 0.5
    _retry_rng: random.Random = field(  # guarded-by: _lock
        default_factory=random.Random, repr=False
    )
    # Wall-clock cap on one file's whole retry ladder (None = unbounded):
    # a transient failure whose next backoff would cross the deadline gives
    # up immediately instead of stalling a mount-pool worker.
    retry_deadline_seconds: Optional[float] = None
    validate_staleness: bool = True
    # Selective mounting: push the fused predicate's time interval into
    # extraction so only overlapping records are read and decoded.
    selective: bool = True
    record_map_provider: Optional[RecordMapProvider] = field(
        default=None, repr=False
    )
    # uri -> the file's metadata time span, for the access-path cost choice:
    # a request interval covering the whole span makes the selective seek
    # ladder pure overhead, so the mount degrades to a plain full read. The
    # executor wires this from its statistics catalog.
    file_span_provider: Optional[Callable[[str], Optional[Interval]]] = field(
        default=None, repr=False
    )
    failure_report: MountFailureReport = field(  # guarded-by: _lock
        default_factory=MountFailureReport
    )
    # Cooperative cancellation: backoff sleeps and worker waits block on
    # this token's event, so a cancelled/deadline-expired query stops
    # retrying immediately. The executor swaps in the query's token for
    # the duration of each execute(); the default is a never-fired one.
    cancellation: CancellationToken = field(
        default_factory=CancellationToken, repr=False
    )
    # Budget enforcement (attached per query by the executor, like `pool`).
    governor: Optional[QueryGovernor] = field(default=None, repr=False)
    # Session-scoped circuit breaker: survives reset_failures(), so a URI
    # failing across queries stops costing every query a retry ladder.
    breaker: Optional[CircuitBreaker] = field(default=None, repr=False)
    _quarantined: dict[str, MountFailure] = field(  # guarded-by: _lock
        default_factory=dict, repr=False
    )
    # unguarded-ok: callbacks are registered at wiring time, before any
    # concurrent mounting starts; workers only iterate the list.
    _callbacks: list[OnMountCallback] = field(default_factory=list)
    _lock: threading.Lock = field(
        default_factory=lambda: _sync.create_lock("MountService._lock"),
        repr=False,
    )

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_POLICIES}, "
                f"got {self.on_error!r}"
            )

    def add_mount_callback(self, callback: OnMountCallback) -> None:
        """Register a side-effect of mounting (e.g. derived metadata, §5)."""
        self._callbacks.append(callback)

    # -- failure bookkeeping ---------------------------------------------------

    def reset_failures(self) -> None:
        """Start a fresh query: clear the quarantine and the failure report.

        Quarantine is *per query* — a file that failed once is skipped for
        the rest of that query (self-joins do not re-extract it) but gets a
        fresh chance next query (it may have been repaired in between).

        This is also the per-query repository hook: each bound repository's
        ``begin_query`` runs here with the query's live cancellation token
        (the executor attaches the token before calling this), so a remote
        backend can reset its transport retry budget and make its waits
        interruptible by *this* query.
        """
        with self._lock:
            self._quarantined.clear()
            self.failure_report = MountFailureReport()
        for binding in self.bindings.bindings.values():
            begin_query = getattr(binding.repository, "begin_query", None)
            if begin_query is not None:
                begin_query(self.cancellation)

    def _quarantine(self, uri: str, exc: BaseException) -> None:
        failure = MountFailure(
            uri=uri,
            error=type(exc).__name__,
            message=getattr(exc, "message", None) or str(exc),
            offset=getattr(exc, "offset", None),
            retries=getattr(exc, "ingest_retries", 0),
            endpoint=getattr(exc, "endpoint", None),
        )
        with self._lock:
            if uri not in self._quarantined:
                self._quarantined[uri] = failure
                self.failure_report.failures.append(failure)
            self.stats.skipped_mounts += 1

    def _empty_branch(
        self, alias: str, predicate: Optional[Expr]
    ) -> ColumnBatch:
        """A zero-row D-layout batch: what a dropped union branch yields."""
        return self._deliver(mounted_files_batch([]), alias, predicate)

    def _truncated_branch(
        self, alias: str, predicate: Optional[Expr]
    ) -> ColumnBatch:
        """One branch dropped by a tripped partial-mode budget."""
        assert self.governor is not None
        self.governor.note_truncated_mount()
        with self._lock:
            self.stats.budget_truncated_mounts += 1
        return self._empty_branch(alias, predicate)

    # -- Mounter protocol -----------------------------------------------------

    def request_for(
        self,
        uri: str,
        table_name: str,
        alias: str,
        predicate: Optional[Expr],
    ) -> Optional[MountRequest]:
        """The selective :class:`MountRequest` one mount branch implies.

        ``None`` means "mount the whole file" — selective mounting disabled,
        or the fused predicate does not bound the time column at all. The
        record byte map is attached when a provider is wired (the executor
        serves it from the ``R`` table) and the interval is non-empty.
        """
        if not self.selective:
            return None
        interval = interval_from_predicate(
            predicate, f"{alias}.{self.time_column}"
        )
        if interval == WHOLE_FILE:
            return None
        if self.cache.wants_whole_file(uri):
            # Workload promotion: the advisor has seen this file often enough
            # that caching it whole beats re-mounting window after window.
            # Mount whole once; the cache retains whole-file coverage and
            # every later window over this file becomes a cache scan.
            with self._lock:
                self.stats.adaptive_whole_file += 1
            return None
        if self.file_span_provider is not None and interval[0] <= interval[1]:
            # Cost choice: when the interval covers the file's whole metadata
            # span, every record overlaps it — selective extraction would
            # read the same bytes through a seek ladder. Mount whole instead;
            # output is identical, delivery still applies the predicate.
            span = self.file_span_provider(uri)
            if span is not None and covers(interval, span):
                with self._lock:
                    self.stats.whole_file_requests += 1
                return None
        records: Optional[tuple[RecordSpan, ...]] = None
        if self.record_map_provider is not None and interval[0] <= interval[1]:
            records = self.record_map_provider(uri, table_name)
        return MountRequest(interval=interval, records=records)

    def mount_file(
        self,
        uri: str,
        table_name: str,
        alias: str,
        predicate: Optional[Expr],
    ) -> ColumnBatch:
        if self.governor is not None:
            # Budget checkpoint at branch entry: cancellation and raise-mode
            # exhaustion abort here; a tripped partial budget answers the
            # rest of the union empty (same shape as a dropped branch).
            self.governor.checkpoint()
            if self.governor.should_truncate:
                return self._truncated_branch(alias, predicate)
        if self.on_error == SKIP_AND_REPORT:
            with self._lock:
                quarantined = uri in self._quarantined
            if quarantined:
                with self._lock:
                    self.stats.skipped_mounts += 1
                return self._empty_branch(alias, predicate)
        if self.breaker is not None and not self.breaker.allow(uri):
            refusal = self.breaker.refusal(uri)
            if self.on_error != SKIP_AND_REPORT:
                raise refusal
            with self._lock:
                self.stats.breaker_skips += 1
            self._quarantine(uri, refusal)
            return self._empty_branch(alias, predicate)
        request = self.request_for(uri, table_name, alias, predicate)
        if request is not None and request.selects_nothing:
            # Contradictory conjuncts: the branch cannot produce rows, so
            # answer empty without touching the repository at all.
            with self._lock:
                self.stats.empty_interval_skips += 1
            return self._empty_branch(alias, predicate)
        try:
            result = self._obtain(uri, table_name, request)
        except QueryBudgetExceeded:
            # The budget tripped mid-extraction. Partial policy: this and
            # every later branch answer empty; raise policy: propagate
            # (never quarantined — the file did nothing wrong).
            if self.governor is None or not self.governor.partial:
                raise
            return self._truncated_branch(alias, predicate)
        except IngestError as exc:
            if self.breaker is not None and isinstance(exc, FileIngestError):
                self.breaker.record_failure(uri, exc)
            if self.on_error != SKIP_AND_REPORT:
                raise
            self._quarantine(uri, exc)
            return self._empty_branch(alias, predicate)
        if self.breaker is not None:
            self.breaker.record_success(uri)
        batch = result.batch
        with self._lock:
            self.stats.mounts += 1
            self.stats.tuples_mounted += batch.num_rows

        if result.coverage == WHOLE_FILE:
            # Mount side-effects (derived metadata) summarize whole files;
            # feeding them a record-pruned batch would record wrong
            # summaries, so partial mounts skip them.
            for callback in self._callbacks:
                callback(uri, batch)

        interval = interval_from_predicate(
            predicate, f"{alias}.{self.time_column}"
        )
        # The extraction's own post-read staleness check already observed
        # the signature; reuse it instead of a third stat/HEAD per mount.
        signature = result.signature
        if self.cache.granularity_for(uri) is CacheGranularity.TUPLE:
            narrowed = _interval_mask_batch(batch, self.time_column, interval)
            self.cache.store(uri, narrowed, interval, signature=signature)
            batch = narrowed
        else:
            self.cache.store(
                uri, batch, result.coverage, signature=signature
            )
        return self._deliver(batch, alias, predicate)

    def prefetch_into_cache(
        self, uri: str, table_name: str, interval: Interval
    ) -> tuple[str, int]:
        """Speculatively extract ``interval`` of one file into the cache.

        The predictive-prefetch entry point: called off the query path (the
        :class:`~repro.core.advisor.SessionPrefetcher`'s worker thread), it
        must never make an answer wrong or a budget lie — so it stores
        exactly what a real mount of the same interval would store, and
        declines whenever retention is off, the breaker distrusts the file,
        or the governor's budget is already tight. Returns an outcome label
        (``stored`` / ``covered`` / ``blocked`` / ``budget`` / ``disabled``
        / ``error``) plus the bytes read, for the prefetcher's accounting.
        """
        if self.cache.policy is CachePolicy.DISCARD:
            return ("disabled", 0)  # nothing stored would survive the call
        if self.breaker is not None and self.breaker.likely_blocked(uri):
            return ("blocked", 0)
        if self.governor is not None and self.governor.should_truncate:
            return ("budget", 0)
        if self.cache.contains(uri, interval):
            return ("covered", 0)
        request: Optional[MountRequest] = None
        if (
            self.selective
            and interval != WHOLE_FILE
            and not self.cache.wants_whole_file(uri)
        ):
            records: Optional[tuple[RecordSpan, ...]] = None
            if self.record_map_provider is not None:
                records = self.record_map_provider(uri, table_name)
            request = MountRequest(interval=interval, records=records)
            if request.selects_nothing:
                return ("covered", 0)
        try:
            result = self._extract(uri, table_name, request)
        except IngestError as exc:
            if self.breaker is not None and isinstance(exc, FileIngestError):
                self.breaker.record_failure(uri, exc)
            return ("error", 0)
        if self.breaker is not None:
            self.breaker.record_success(uri)
        signature = result.signature
        coverage = WHOLE_FILE if request is None else interval
        if (
            request is not None
            and self.cache.granularity_for(uri) is CacheGranularity.TUPLE
        ):
            narrowed = _interval_mask_batch(
                result.batch, self.time_column, interval
            )
            self.cache.store(uri, narrowed, interval, signature=signature)
        else:
            self.cache.store(
                uri, result.batch, coverage, signature=signature
            )
        with self._lock:
            self.stats.prefetched_mounts += 1
            self.stats.prefetched_bytes += result.bytes_read
        return ("stored", result.bytes_read)

    def _obtain(
        self, uri: str, table_name: str, request: Optional[MountRequest]
    ) -> "ExtractResult":
        """One branch's extraction, via the pool when one is attached.

        The pool may have prefetched the file under a different (hull-merged)
        request; any coverage that satisfies this branch is accepted, and a
        result too narrow for it — only possible if prefetch and execution
        disagree, which the executor prevents — falls back to an inline
        re-extraction rather than returning incomplete rows.
        """
        if self.pool is None:
            return self._extract(uri, table_name, request)
        result = self.pool.take(uri, table_name, request)
        needed = WHOLE_FILE if request is None else request.interval
        if not covers(result.coverage, needed):
            return self._extract(uri, table_name, request)
        return result

    def cache_scan(
        self,
        uri: str,
        table_name: str,
        alias: str,
        predicate: Optional[Expr],
    ) -> ColumnBatch:
        interval = interval_from_predicate(
            predicate, f"{alias}.{self.time_column}"
        )
        signature = (
            self._current_signature(uri, table_name)
            if self.validate_staleness
            else None
        )
        # cache_scan runs on the consuming thread only, so reading the
        # invalidation counter around the lookup is race-free.
        invalidations_before = self.cache.stats.invalidations
        cached = self.cache.lookup(uri, interval, signature=signature)
        if cached is None:
            # The plan expected a hit (rule (1) consulted the cache at
            # run-time optimization) but the entry is gone — either evicted,
            # or just invalidated because the file changed on disk. Fall
            # back to a fresh mount either way.
            stale = self.cache.stats.invalidations > invalidations_before
            with self._lock:
                self.stats.fallback_mounts += 1
                if stale:
                    self.stats.stale_remounts += 1
            return self.mount_file(uri, table_name, alias, predicate)
        with self._lock:
            self.stats.cache_scans += 1
        return self._deliver(cached, alias, predicate)

    # -- internals ---------------------------------------------------------------

    def _resolve(
        self, uri: str, table_name: str
    ) -> tuple[Path, FormatExtractor, object]:
        """URI → (readable path, format extractor, owning repository).

        Everything source-specific goes through the repository protocol
        hooks (:class:`~repro.mseed.repository.FileRepository` docs): a
        remote repository resolves ``path_of`` to a local staging file and
        wraps the registry's extractor in its ranged-GET adapter. The
        ``getattr`` fallbacks keep duck-typed test repositories (which
        predate the hooks) working unchanged.
        """
        binding = self.bindings.for_table(table_name)
        if binding is None:
            raise IngestError(
                f"actual table {table_name!r} has no repository binding"
            )
        repository = binding.repository
        path = repository.path_of(uri)
        assert binding.registry is not None
        extractor_for = getattr(repository, "extractor_for", None)
        if extractor_for is not None:
            return path, extractor_for(path, uri, binding.registry), repository
        return path, binding.registry.for_path(path), repository

    def _signature(self, repository: object, uri: str, path: Path) -> FileSignature:
        """The file's current staleness signature, via the owning repository
        (a remote backend answers from a HEAD, not the staging file's stat)."""
        signature_of = getattr(repository, "signature_of", None)
        if signature_of is not None:
            return signature_of(uri)
        return _file_signature(path)

    def _current_signature(
        self, uri: str, table_name: str
    ) -> Optional[FileSignature]:
        """The file's current signature, or None when it cannot be stated —
        the mount fallback will surface the real error."""
        try:
            path, _, repository = self._resolve(uri, table_name)
            return self._signature(repository, uri, path)
        except (OSError, IngestError):
            return None

    def _extract(
        self,
        uri: str,
        table_name: str,
        request: Optional[MountRequest] = None,
    ) -> "ExtractResult":
        """Extract one file into a batch; thread-safe (mount-pool workers
        call this concurrently). Returns the batch plus the simulated disk
        seconds the buffer manager charged and the extraction's coverage /
        read accounting.

        Transient failures (I/O errors, files caught mid-rewrite) retry up
        to ``max_retries`` times with linear backoff, but never past
        ``retry_deadline_seconds`` of wall clock; the final exception
        carries the retry count as ``exc.ingest_retries``. Backoff waits on
        the cancellation token's event — not ``time.sleep`` — so a
        cancelled or deadline-expired query stops retrying immediately
        instead of sleeping out the rest of its ladder.
        """
        self.cancellation.raise_if_interrupted()
        path, extractor, repository = self._resolve(uri, table_name)
        attempt = 0
        deadline = (
            None
            if self.retry_deadline_seconds is None
            else time.monotonic() + self.retry_deadline_seconds
        )
        while True:
            try:
                return self._extract_once(
                    uri, path, extractor, request, repository
                )
            except FileIngestError as exc:
                exc.ingest_retries = attempt  # type: ignore[attr-defined]
                if not exc.transient or attempt >= self.max_retries:
                    raise
                backoff = self.retry_backoff_seconds * (attempt + 1)
                if self.retry_jitter > 0:
                    # Jitter the wait so N workers that failed against the
                    # same endpoint at the same instant don't all come back
                    # at the same instant (retry storms re-break half-open
                    # circuits). The RNG is shared; draw under the lock.
                    with self._lock:
                        backoff *= 1.0 + self.retry_jitter * self._retry_rng.random()
                if deadline is not None and (
                    time.monotonic() + backoff >= deadline
                ):
                    with self._lock:
                        self.stats.retry_deadline_hits += 1
                    raise
                attempt += 1
                with self._lock:
                    self.stats.retries += 1
                if backoff > 0 and self.cancellation.wait(backoff):
                    raise self.cancellation.interruption() from exc

    def _extract_once(
        self,
        uri: str,
        path: Path,
        extractor: FormatExtractor,
        request: Optional[MountRequest] = None,
        repository: object = None,
    ) -> "ExtractResult":
        try:
            before = self._signature(repository, uri, path)
        except FileNotFoundError as exc:
            raise FileIngestError(
                f"file disappeared before extraction: {path}",
                uri=uri,
                cause=exc,
            ) from exc
        selective = request is not None and isinstance(
            extractor, SelectiveFormatExtractor
        )
        if selective:
            assert request is not None
            mounted_sel = extractor.mount_selective(path, uri, request)
            nbytes = mounted_sel.bytes_read
            mounted = mounted_sel.mounted
            coverage = request.interval
            records_decoded = mounted_sel.records_decoded
            records_skipped = mounted_sel.records_skipped
            io_seconds = 0.0
            # A partial read never marks the file resident — a later full
            # mount must still pay the disk model for the rest of it.
            if self.buffers is not None and nbytes > 0:
                io_seconds = self.buffers.touch_bytes(
                    f"repo:{uri}", nbytes, full=records_skipped == 0
                )
            with self._lock:
                self.stats.bytes_read += nbytes
                self.stats.selective_mounts += 1
                self.stats.records_decoded += records_decoded
                self.stats.records_skipped += records_skipped
        else:
            nbytes = before[1]
            io_seconds = 0.0
            # The buffer manager locks itself; only the service's own
            # counter needs this lock — never hold it across the (slow)
            # disk model.
            if self.buffers is not None:
                io_seconds = self.buffers.touch(f"repo:{uri}", nbytes)
            with self._lock:
                self.stats.bytes_read += nbytes
            mounted = extractor.mount(path, uri)
            coverage = WHOLE_FILE
            # record_id is per-file consecutive, so the last id counts them.
            records_decoded = (
                int(mounted.record_id[-1]) + 1 if len(mounted.record_id) else 0
            )
            records_skipped = 0
            with self._lock:
                self.stats.records_decoded += records_decoded
        after: Optional[FileSignature] = None
        if self.validate_staleness:
            try:
                after = self._signature(repository, uri, path)
            except FileNotFoundError as exc:
                raise StaleFileError(
                    "file deleted during extraction",
                    uri=uri,
                    cause=exc,
                ) from exc
            if after != before:
                raise StaleFileError(
                    "file changed on disk during extraction "
                    f"(mtime/size {before} -> {after})",
                    uri=uri,
                )
        if self.governor is not None:
            # Charge the ledger once per successful extraction (retries and
            # failures never count). Raise-mode exhaustion aborts here —
            # possibly on a pool worker, whence it propagates to the taker.
            self.governor.charge_mount(nbytes, records_decoded)
        return ExtractResult(
            batch=mounted_file_batch(mounted),
            io_seconds=io_seconds,
            coverage=coverage,
            bytes_read=nbytes,
            records_decoded=records_decoded,
            records_skipped=records_skipped,
            selective=selective,
            signature=after,
        )

    def _deliver(
        self, batch: ColumnBatch, alias: str, predicate: Optional[Expr]
    ) -> ColumnBatch:
        """Qualify column names for the query plan and apply the fused
        selection (the combined select+mount / select+cache-scan paths)."""
        qualified = ColumnBatch(
            [f"{alias}.{name}" for name in batch.names], batch.columns
        )
        if predicate is not None:
            mask = predicate.evaluate(qualified).values
            qualified = qualified.filter(mask)
        return qualified
