"""Workload advisor: access history, eviction scores, and prefetch.

The paper leaves cache management at the stage-1/stage-2 breakpoint as an
open challenge (§5); NoDB's answer is to let the *workload* drive the
auxiliary structures. Three cooperating pieces implement that here:

* :class:`CacheAdvisor` — per-URI access history. It feeds two decisions:
  the adaptive cache's eviction order (an LRU-2 score: the victim is the
  entry whose file's *penultimate* access is oldest, so one-shot scans are
  evicted before twice-touched working-set files — the classic defence
  against sequential flooding that plain LRU lacks) and granularity
  promotion (a file touched often enough is worth mounting whole, turning
  every later window on it into a cache hit).
* :class:`WorkloadPredictor` — recognizes the sliding-window / zoom shapes
  :mod:`repro.explore.workload` generates and extrapolates the next window.
* :class:`SessionPrefetcher` — turns predictions into speculative
  cache-warming extractions between queries, via
  :meth:`~repro.core.mounting.MountService.prefetch_into_cache`. Wrong
  predictions waste bytes, never answers: the cache's coverage checks mean
  a prefetch can only *add* covering entries, so results stay
  byte-identical with prefetch on or off.

Thread-safety: the advisor is consulted from cache operations (under the
cache's lock) and from mount workers; the predictor from whichever thread
ran the query and from the prefetch worker. Both therefore carry their own
locks, and neither calls out to other locked components while holding its
lock (lock order stays cache → advisor, acyclic).
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from .. import _sync
from ..db.interval import Interval, is_empty, overlaps

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (mounting → cache)
    from ..db.stats import StatisticsCatalog
    from .mounting import MountService

__all__ = [
    "AccessProfile",
    "CacheAdvisor",
    "PredictedWindow",
    "PrefetchStats",
    "SessionPrefetcher",
    "WorkloadPredictor",
]


@dataclass(frozen=True)
class AccessProfile:
    """One file's access history snapshot.

    ``last_seq`` / ``prev_seq`` are positions in the advisor's global access
    sequence; ``prev_seq`` is -1 until the file's second access — the LRU-2
    convention that makes one-timers sort before any twice-accessed file.
    """

    count: int
    last_seq: int
    prev_seq: int


@_sync.guarded
class CacheAdvisor:
    """Per-URI access frequency/recency, driving eviction and granularity.

    ``whole_file_threshold`` is the promotion knob: a file accessed at least
    that many times is declared *hot* and :meth:`wants_whole_file` starts
    answering True — the mount layer then widens its next request to the
    whole file so any later window is covered. Profiles survive eviction
    (they describe the *workload*, not the cache contents); that history is
    exactly what lets a re-admitted hot file outrank fresh one-timers.
    """

    def __init__(self, whole_file_threshold: int = 3) -> None:
        if whole_file_threshold < 1:
            raise ValueError("whole_file_threshold must be >= 1")
        self.whole_file_threshold = whole_file_threshold
        self._lock = _sync.create_lock("CacheAdvisor._lock")
        self._seq = 0  # guarded-by: _lock
        # uri -> [count, prev_seq, last_seq]
        self._profiles: dict[str, list[int]] = {}  # guarded-by: _lock

    def note_access(self, uri: str) -> None:
        """Record one access (a cache lookup or a store) of ``uri``."""
        with self._lock:
            self._seq += 1
            profile = self._profiles.get(uri)
            if profile is None:
                self._profiles[uri] = [1, -1, self._seq]
            else:
                profile[0] += 1
                profile[1] = profile[2]
                profile[2] = self._seq

    def access_count(self, uri: str) -> int:
        with self._lock:
            profile = self._profiles.get(uri)
            return profile[0] if profile is not None else 0

    def eviction_score(self, uri: str) -> int:
        """LRU-2 score: the penultimate access's sequence number.

        Lower is a better eviction victim. Files seen fewer than twice score
        -1, so they are evicted before any file with a reuse history —
        a one-pass sweep cannot flush the working set.
        """
        with self._lock:
            profile = self._profiles.get(uri)
            return profile[1] if profile is not None else -1

    def wants_whole_file(self, uri: str) -> bool:
        """Whether ``uri`` is hot enough to mount whole instead of by range."""
        with self._lock:
            profile = self._profiles.get(uri)
            return (
                profile is not None
                and profile[0] >= self.whole_file_threshold
            )

    def profile(self, uri: str) -> Optional[AccessProfile]:
        with self._lock:
            profile = self._profiles.get(uri)
            if profile is None:
                return None
            return AccessProfile(
                count=profile[0], last_seq=profile[2], prev_seq=profile[1]
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)


# -- prediction ---------------------------------------------------------------


@dataclass(frozen=True)
class PredictedWindow:
    """One extrapolated next-query window, hull-widened for robustness."""

    interval: Interval
    kind: str  # "slide" | "zoom-in" | "zoom-out"


class WorkloadPredictor:
    """Next-window extrapolation over the session's realized query windows.

    The exploration verbs in :mod:`repro.explore.workload` produce three
    recognizable shapes: *sliding* (similar width, shifted center), *zoom
    in* (shrinking width, contained center) and *zoom out* (growing width,
    similar center). Anything else — the MOVE_ON jump to a fresh random
    focus — is deliberately unpredictable and yields no prediction, so the
    prefetcher stays idle instead of guessing.

    ``widen_fraction`` hull-widens each prediction by that fraction of its
    width on both sides, so a slightly-off extrapolation still covers the
    real next window (coverage is all-or-nothing for the cache).
    """

    def __init__(
        self,
        widen_fraction: float = 0.25,
        width_tolerance: float = 0.3,
        max_history: int = 8,
    ) -> None:
        if widen_fraction < 0:
            raise ValueError("widen_fraction must be >= 0")
        if not 0 < width_tolerance < 1:
            raise ValueError("width_tolerance must be in (0, 1)")
        self.widen_fraction = widen_fraction
        self.width_tolerance = width_tolerance
        self._lock = _sync.create_lock("WorkloadPredictor._lock")
        self._windows: deque[Interval] = deque(  # guarded-by: _lock
            maxlen=max_history
        )

    def observe(self, interval: Optional[Interval]) -> None:
        """Record one query's realized time window (None/empty are ignored)."""
        if interval is None or is_empty(interval):
            return
        with self._lock:
            self._windows.append((int(interval[0]), int(interval[1])))

    def predict(self) -> Optional[PredictedWindow]:
        """The extrapolated next window, or None when the trail is cold."""
        with self._lock:
            if len(self._windows) < 2:
                return None
            prev, last = self._windows[-2], self._windows[-1]
        width_prev = prev[1] - prev[0]
        width_last = last[1] - last[0]
        if width_prev <= 0 or width_last <= 0:
            return None
        center_prev = (prev[0] + prev[1]) // 2
        center_last = (last[0] + last[1]) // 2
        delta = center_last - center_prev
        ratio = width_last / width_prev
        tol = self.width_tolerance
        if 1 - tol <= ratio <= 1 + tol:
            # Similar widths: a slide (or a repeat, delta 0). A jump much
            # larger than the window itself is a MOVE_ON, not a slide.
            if abs(delta) > 2 * width_last:
                return None
            return self._widened(
                last[0] + delta, last[1] + delta, width_last, "slide"
            )
        if ratio < 1 - tol and prev[0] <= center_last <= prev[1]:
            # Zoom in: continue the contraction around the current center.
            next_width = max(1, int(width_last * ratio))
            half = next_width // 2
            return self._widened(
                center_last - half, center_last + half, next_width, "zoom-in"
            )
        if ratio > 1 + tol and last[0] <= center_prev <= last[1]:
            # Zoom out: continue the expansion around the current center.
            next_width = int(width_last * ratio)
            half = next_width // 2
            return self._widened(
                center_last - half, center_last + half, next_width, "zoom-out"
            )
        return None

    def observe_and_predict(
        self, interval: Optional[Interval]
    ) -> Optional[PredictedWindow]:
        self.observe(interval)
        return self.predict()

    def _widened(
        self, lo: int, hi: int, width: int, kind: str
    ) -> PredictedWindow:
        margin = int(width * self.widen_fraction)
        return PredictedWindow(interval=(lo - margin, hi + margin), kind=kind)


# -- prefetch -----------------------------------------------------------------


@dataclass
class PrefetchStats:
    observed: int = 0  # query windows fed to the predictor
    predictions: int = 0  # windows the predictor extrapolated
    rounds: int = 0  # prefetch rounds actually executed
    files_considered: int = 0  # files overlapping a predicted window
    files_prefetched: int = 0  # speculative extractions stored in the cache
    bytes_prefetched: int = 0  # bytes those extractions read off disk
    skipped_covered: int = 0  # already satisfied by a cache entry
    skipped_blocked: int = 0  # refused by the breaker / governor / policy
    skipped_budget: int = 0  # dropped by the per-round byte budget
    errors: int = 0  # speculative extractions that failed (absorbed)


@_sync.guarded
class SessionPrefetcher:
    """Speculatively warms the ingestion cache between a session's queries.

    ``mounts`` is the session's :class:`~repro.core.mounting.MountService`
    (its ``_extract`` is thread-safe; the cache locks itself), and
    ``statistics`` a callable returning the current
    :class:`~repro.db.stats.StatisticsCatalog` — file time spans map a
    predicted window to the files overlapping it.

    By default one daemon worker drains a round queue so prefetching never
    blocks the explorer's next query; ``synchronous=True`` runs each round
    inline on the observing thread — the deterministic mode tests use.
    ``max_bytes_per_round`` bounds each round's speculative disk work.
    """

    def __init__(
        self,
        mounts: "MountService",
        statistics: Callable[[], "StatisticsCatalog"],
        table_name: str = "D",
        predictor: Optional[WorkloadPredictor] = None,
        max_bytes_per_round: int = 32 * 1024 * 1024,
        synchronous: bool = False,
    ) -> None:
        if max_bytes_per_round < 1:
            raise ValueError("max_bytes_per_round must be >= 1")
        self.mounts = mounts
        self.statistics = statistics
        self.table_name = table_name
        self.predictor = predictor or WorkloadPredictor()
        self.max_bytes_per_round = max_bytes_per_round
        self.synchronous = synchronous
        self.stats = PrefetchStats()  # guarded-by: _lock
        self._lock = _sync.create_lock("SessionPrefetcher._lock")
        # The wakeup condition shares _lock (same idiom as the scheduler).
        self._wakeup = _sync.create_condition(
            "SessionPrefetcher._wakeup", self._lock
        )
        self._pending: deque[PredictedWindow] = deque()  # guarded-by: _lock
        self._stop = False  # guarded-by: _lock
        self._active_rounds = 0  # guarded-by: _lock
        self._thread: Optional[threading.Thread] = None  # guarded-by: _lock

    # -- session-facing -------------------------------------------------------

    def observe(self, interval: Optional[Interval]) -> None:
        """Feed one query's realized window; maybe kick off a prefetch round."""
        with self._lock:
            self.stats.observed += 1
        predicted = self.predictor.observe_and_predict(interval)
        if predicted is None:
            return
        with self._lock:
            self.stats.predictions += 1
        if self.synchronous:
            self._run_round(predicted)
            return
        with self._wakeup:
            if self._stop:
                return
            self._pending.append(predicted)
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._worker_loop,
                    name="session-prefetch",
                    daemon=True,
                )
                self._thread.start()
            self._wakeup.notify_all()

    def flush(self, timeout: float = 10.0) -> bool:
        """Wait until every queued round has run (True if drained in time)."""
        deadline = threading.Event()  # used purely as a timed sleeper
        waited = 0.0
        while waited < timeout:
            with self._lock:
                if not self._pending and self._active_rounds == 0:
                    return True
            deadline.wait(0.01)
            waited += 0.01
        return False

    def close(self) -> None:
        """Stop the worker; queued-but-unrun rounds are dropped."""
        with self._wakeup:
            self._stop = True
            self._pending.clear()
            thread = self._thread
            self._thread = None
            self._wakeup.notify_all()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "SessionPrefetcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._stop and not self._pending:
                    self._wakeup.wait(0.1)
                if self._stop:
                    return
                predicted = self._pending.popleft()
                self._active_rounds += 1
            try:
                self._run_round(predicted)
            finally:
                with self._lock:
                    self._active_rounds -= 1

    def _run_round(self, predicted: PredictedWindow) -> None:
        """One speculative pass: warm every file overlapping the prediction.

        Every skip/outcome is counted; per-file failures are absorbed by
        :meth:`~repro.core.mounting.MountService.prefetch_into_cache` — a
        speculative miss must never surface as a session error.
        """
        with self._lock:
            self.stats.rounds += 1
        spent = 0
        catalog = self.statistics()
        for uri in sorted(catalog.files):
            span = catalog.files[uri].span
            if not overlaps(predicted.interval, span[0], span[1]):
                continue
            with self._lock:
                self.stats.files_considered += 1
                if self._stop:
                    return
            if spent >= self.max_bytes_per_round:
                with self._lock:
                    self.stats.skipped_budget += 1
                continue
            outcome, nbytes = self.mounts.prefetch_into_cache(
                uri, self.table_name, predicted.interval
            )
            spent += nbytes
            with self._lock:
                if outcome == "stored":
                    self.stats.files_prefetched += 1
                    self.stats.bytes_prefetched += nbytes
                elif outcome == "covered":
                    self.stats.skipped_covered += 1
                elif outcome == "error":
                    self.stats.errors += 1
                else:  # "blocked" / "budget" / "disabled"
                    self.stats.skipped_blocked += 1
