"""Small helpers shared by the executor, derived metadata, and multi-stage."""

from __future__ import annotations

from ..db.column import Column
from ..db.table import ColumnBatch
from ..db.types import DataType


def batch_from_rows(
    output: list[tuple[str, DataType]], rows: list[tuple]
) -> ColumnBatch:
    """Materialize Python rows in a plan node's output layout."""
    names = [name for name, _ in output]
    columns = [
        Column.from_pylist(dtype, [row[i] for row in rows])
        for i, (_, dtype) in enumerate(output)
    ]
    return ColumnBatch(names, columns)
