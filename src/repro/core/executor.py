"""The two-stage query executor — the paper's §3 "Physical Query Execution".

One query runs through four physical steps:

1. **compile-time optimization** — the classic pipeline plus metadata-first
   join reordering, then decomposition into ``Qf`` and ``Qs``;
2. **first stage** — execute ``Qf`` (metadata only) and collect the files of
   interest;
3. **run-time optimization** — estimate informativeness, consult the destiny
   policy, and apply rewrite rule (1), turning each actual scan into a union
   of mount / cache-scan access paths;
4. **second stage** — execute the rewritten ``Qs``; mounting happens here,
   transparently to the querying front-end.

The executor also implements the strategy choice §3 raises — bulk execution
(a) versus per-file partial aggregation then merge (b) — and the derived-
metadata fast path of §5.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..db.buffer import IoStats
from ..db.database import Database, QueryResult
from ..db.errors import QueryAbortedError
from ..db.plan.logical import (
    Aggregate,
    CacheScan,
    LogicalPlan,
    Mount,
    ResultScan,
    UnionAll,
)
from .. import _sync
from ..db.stats import StatisticsCatalog, collect_statistics
from ..ingest.formats import RecordSpan
from ..ingest.schema import FILE_TABLE, RECORD_TABLE, BindingSet, RepositoryBinding
from .breakpoint import BreakpointInfo
from .cache import INF, IngestionCache
from .decompose import Decomposition, decompose, _replace_subtree
from .executor_util import batch_from_rows
from .governor import (
    CancellationToken,
    CircuitBreaker,
    QueryBudget,
    QueryGovernor,
    TruncationReport,
)
from .informativeness import (
    CostModel,
    DestinyAction,
    DestinyPolicy,
    ProceedAlways,
    estimate_informativeness,
)
from .mounting import (
    FAIL_FAST,
    ON_ERROR_POLICIES,
    SKIP_AND_REPORT,
    MountFailureReport,
    MountService,
    interval_from_predicate,
)
from .mountpool import MountPool, MountPoolTimings
from .partial import PartialMerger, is_decomposable
from .rules import RewriteReport, apply_ali_rewrite
from .topn import TopNBranchMonitor, branch_hulls, find_top_n_target
from .verify import verify_ali_rewrite, verify_decomposition

BULK = "bulk"  # strategy (a): union everything, operate once
PER_FILE = "per_file"  # strategy (b): operate per file, merge results

_PARTIAL_TAG = "partial_agg"


@dataclass
class StageTimings:
    """Wall-clock CPU per physical step (simulated I/O tracked separately).

    The ``mount_*`` fields describe the stage-2 mount phase as seen by the
    :class:`~repro.core.mountpool.MountPool`: how many files were extracted,
    by how many workers, the serialized cost (sum over files of real extract
    time + simulated disk time) and the critical path (the busiest worker's
    chain). ``mount_speedup`` is the observable effect of ``mount_workers``.

    ``mount_failures`` is the degraded-answer disclosure: under the
    ``SKIP_AND_REPORT`` policy it lists every file the query was answered
    *without* (empty under ``FAIL_FAST``, which raises instead).
    """

    compile_seconds: float = 0.0
    stage1_seconds: float = 0.0
    runtime_opt_seconds: float = 0.0
    stage2_seconds: float = 0.0
    mount_workers: int = 1
    mount_files: int = 0
    mount_serial_seconds: float = 0.0
    mount_wall_seconds: float = 0.0
    mount_worker_seconds: dict[int, float] = field(default_factory=dict)
    mount_failures: MountFailureReport = field(
        default_factory=MountFailureReport
    )
    # Per-lock acquisition/contention/hold-time counters for this execution,
    # exported by the tracing layer. Empty unless REPRO_LOCK_TRACE=1 (the
    # zero-cost default); under a concurrent service the delta attributes
    # *service-wide* lock activity to this execution's window.
    lock_stats: dict[str, _sync.LockStats] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.compile_seconds
            + self.stage1_seconds
            + self.runtime_opt_seconds
            + self.stage2_seconds
        )

    @property
    def mount_speedup(self) -> float:
        """serialized mount cost / critical path (1.0 when nothing mounted)."""
        if self.mount_wall_seconds <= 0:
            return 1.0
        return self.mount_serial_seconds / self.mount_wall_seconds

    def record_mounts(self, workers: int, timings: MountPoolTimings) -> None:
        """Fold one mount pool's observations into these timings."""
        self.mount_workers = workers
        self.mount_files += timings.files
        self.mount_serial_seconds += timings.serial_seconds
        self.mount_wall_seconds += timings.wall_seconds
        for worker, busy in timings.worker_seconds.items():
            self.mount_worker_seconds[worker] = (
                self.mount_worker_seconds.get(worker, 0.0) + busy
            )


@dataclass
class TwoStageResult:
    """A query answer plus everything the breakpoint learned.

    ``truncation`` is non-None when an ``on_budget="partial"`` budget
    tripped mid-execution: the rows are the tuples produced before the
    trip, and the report says how much was left on the table.
    """

    result: QueryResult
    breakpoint: BreakpointInfo
    decomposition: Decomposition
    timings: StageTimings = field(default_factory=StageTimings)
    approximate: bool = False
    truncation: Optional[TruncationReport] = None

    @property
    def rows(self) -> list[tuple[Any, ...]]:
        return self.result.rows()

    @property
    def total_seconds(self) -> float:
        return self.result.total_seconds


def _merge_io(parts: list[IoStats]) -> IoStats:
    merged = IoStats()
    for part in parts:
        merged.objects_read += part.objects_read
        merged.bytes_read += part.bytes_read
        merged.simulated_seconds += part.simulated_seconds
        merged.touched |= part.touched
    return merged


class TwoStageExecutor:
    """Runs SQL with two-stage execution and automated lazy ingestion."""

    def __init__(
        self,
        db: Database,
        bindings: BindingSet | RepositoryBinding,
        cache: Optional[IngestionCache] = None,
        destiny: Optional[DestinyPolicy] = None,
        cost_model: Optional[CostModel] = None,
        strategy: str = BULK,
        derived=None,  # Optional[DerivedMetadataStore]
        estimate: bool = True,
        mount_workers: int = 1,
        mount_inflight: Optional[int] = None,
        on_mount_error: str = FAIL_FAST,
        verify_plans: Optional[bool] = None,
        selective_mounts: bool = True,
        budget: Optional[QueryBudget] = None,
        breaker: Optional[CircuitBreaker] = None,
        top_n_pushdown: bool = True,
    ) -> None:
        if isinstance(bindings, RepositoryBinding):
            bindings = BindingSet.single(bindings)
        if strategy not in (BULK, PER_FILE):
            raise ValueError(f"unknown strategy {strategy!r}")
        if mount_workers < 1:
            raise ValueError("mount_workers must be >= 1")
        if on_mount_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_mount_error must be one of {ON_ERROR_POLICIES}, "
                f"got {on_mount_error!r}"
            )
        self.db = db
        self.bindings = bindings
        # `cache or ...` would discard an *empty* cache (len() == 0 is falsy).
        self.cache = cache if cache is not None else IngestionCache()
        self.mounts = MountService(
            bindings,
            self.cache,
            buffers=db.buffers,
            on_error=on_mount_error,
            selective=selective_mounts,
        )
        # Selective mounts seek by the record byte map the metadata pass
        # recorded in R; the provider serves it per file, rebuilt only when
        # the R table's batch object changes (metadata loads replace it).
        self.mounts.record_map_provider = self._record_map
        self._record_spans: dict[str, tuple[RecordSpan, ...]] = {}
        self._record_spans_source: Optional[object] = None
        # Top-N/LIMIT pushdown: fuse Sort+Limit into TopN at compile time and
        # early-terminate provably non-contributing union branches at run
        # time. Off reproduces the exhaustive sort-then-slice pipeline (the
        # benchmark baseline).
        self.top_n_pushdown = top_n_pushdown
        # Statistics catalog (cost-based join orientation, branch hulls, the
        # mount access-path choice), rebuilt when the F batch it was
        # collected from is replaced by a metadata load.
        self._statistics: Optional[StatisticsCatalog] = None
        self._statistics_source: Optional[object] = None
        self.mounts.file_span_provider = (
            lambda uri: self.statistics().file_span(uri)
        )
        self.destiny = destiny or ProceedAlways()
        self.cost_model = cost_model or CostModel()
        self.strategy = strategy
        self.derived = derived
        self.estimate = estimate
        self.mount_workers = mount_workers
        self.mount_inflight = mount_inflight
        # None inherits the database's setting (itself REPRO_VERIFY_PLANS-
        # defaulted), so one env var flips the whole pipeline.
        self.verify_plans = (
            db.verify_plans if verify_plans is None else verify_plans
        )
        # Session defaults for governance: `budget` applies to every
        # execute() unless that call passes its own; the breaker is shared
        # by every query this executor runs (that is its whole point).
        self.budget = budget
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.mounts.breaker = self.breaker
        self._governor: Optional[QueryGovernor] = None
        # Service-layer seams. `pool_factory` replaces the per-query
        # MountPool with anything speaking its interface (prefetch / take /
        # close / timings / cancel_outstanding) — the query service plugs a
        # cross-query scheduler client in here, which is how single-flight
        # generalizes beyond one query without the executor knowing.
        # `charge_hook(bytes, records)` is handed to each execution's
        # governor as its on_charge callback (per-tenant accounting).
        self.pool_factory: Optional[
            Callable[[Optional[CancellationToken]], MountPool]
        ] = None
        self.charge_hook: Optional[Callable[[int, int], None]] = None
        # The last executed query's fused actual-data time interval (None
        # when unbounded or metadata-only) — the workload predictor's input.
        # unguarded-ok: written by the single executing thread between
        # queries; readers (session prefetch hooks) run on that same thread.
        self.last_query_interval: Optional[tuple[int, int]] = None
        if derived is not None:
            self.mounts.add_mount_callback(derived.on_mount)

    @property
    def on_mount_error(self) -> str:
        """The active degradation policy (``"fail"`` or ``"skip"``)."""
        return self.mounts.on_error

    @on_mount_error.setter
    def on_mount_error(self, policy: str) -> None:
        if policy not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_mount_error must be one of {ON_ERROR_POLICIES}, "
                f"got {policy!r}"
            )
        self.mounts.on_error = policy

    # -- compile-time ------------------------------------------------------------

    def _uri_column_of(self, table_name: str) -> str:
        binding = self.bindings.for_table(table_name)
        return binding.uri_column if binding is not None else "uri"

    def statistics(self) -> StatisticsCatalog:
        """The current statistics snapshot, rebuilt on metadata loads.

        Invalidation is keyed on the ``F`` table's batch object: lazy
        metadata ingestion replaces it (together with the other metadata
        batches), so identity tracks "has the metadata changed" without a
        version counter.
        """
        batch = (
            self.db.catalog.table(FILE_TABLE).batch
            if self.db.catalog.has_table(FILE_TABLE)
            else None
        )
        if self._statistics is None or self._statistics_source is not batch:
            self._statistics = collect_statistics(self.db.catalog, FILE_TABLE)
            self._statistics_source = batch
        return self._statistics

    def prepare(self, sql: str) -> Decomposition:
        """Steps 1: parse, bind, optimize metadata-first, decompose."""
        plan = self.db.bind_sql(sql)
        plan = self.db.optimize(
            plan,
            metadata_first=True,
            stats=self.statistics(),
            fuse_topn=self.top_n_pushdown,
        )
        decomposition = decompose(
            plan, self.db.catalog.is_metadata_table, self._uri_column_of
        )
        if self.verify_plans:
            verify_decomposition(
                decomposition, self.db.catalog.is_metadata_table
            )
        return decomposition

    def explain(self, sql: str) -> str:
        """The single optimized plan with the ``Qf`` branch marked."""
        return self.prepare(sql).explain()

    # -- execution ------------------------------------------------------------------

    def make_mount_pool(
        self, token: Optional[CancellationToken] = None
    ) -> MountPool:
        """A fresh per-query mount pool over this executor's mount service.

        :class:`~repro.core.multistage.MultiStageExecutor` reuses this so
        every stage of a multi-stage run shares one pool configuration.
        When a ``pool_factory`` is installed (the query service does this),
        it supplies the pool instead — same interface, shared-work backend.
        """
        if self.pool_factory is not None:
            return self.pool_factory(token)
        return MountPool(
            self.mounts._extract,
            max_workers=self.mount_workers,
            max_inflight=self.mount_inflight,
            fail_fast=self.mounts.on_error != SKIP_AND_REPORT,
            token=token,
        )

    def begin_governed(
        self,
        budget: Optional[QueryBudget],
        cancellation: Optional[CancellationToken],
    ) -> QueryGovernor:
        """Arm a governor for one execution and wire it into the mount path.

        Shared by :meth:`execute` and the multi-stage executor; pair with
        :meth:`end_governed` in a ``finally``.
        """
        governor = QueryGovernor(
            budget if budget is not None else self.budget,
            token=cancellation,
            on_charge=self.charge_hook,
        )
        self._governor = governor
        self.mounts.governor = governor
        self.mounts.cancellation = governor.token
        return governor

    def end_governed(self, governor: QueryGovernor) -> None:
        governor.close()
        self.mounts.governor = None
        self.mounts.cancellation = CancellationToken()
        self._governor = None

    def cancel(self, reason: str = "query cancelled by caller") -> bool:
        """Cancel the in-flight execution, if any; True when one was live.

        Thread-safe: meant to be called from another thread (a UI, a
        watchdog) while :meth:`execute` runs.
        """
        governor = self._governor
        if governor is None:
            return False
        governor.token.cancel(reason)
        return True

    def execute(
        self,
        sql: str,
        budget: Optional[QueryBudget] = None,
        cancellation: Optional[CancellationToken] = None,
    ) -> TwoStageResult:
        """Run one query under the governor.

        ``budget`` overrides the session default for this call;
        ``cancellation`` lets the caller hold the token (to cancel from
        another thread). Exceeding the budget raises
        :class:`~repro.db.errors.QueryBudgetExceeded`, or truncates with a
        report under ``on_budget="partial"``.
        """
        governor = self.begin_governed(budget, cancellation)
        lock_before = _sync.lock_snapshot()
        try:
            outcome = self._execute_governed(sql, governor)
            outcome.timings.lock_stats = _sync.lock_snapshot_delta(lock_before)
            return outcome
        finally:
            self.end_governed(governor)

    def _execute_governed(
        self, sql: str, governor: QueryGovernor
    ) -> TwoStageResult:
        timings = StageTimings()
        self.mounts.reset_failures()  # quarantine is per query
        started = time.perf_counter()
        decomposition = self.prepare(sql)
        timings.compile_seconds = time.perf_counter() - started
        self.last_query_interval = (
            self._query_interval(decomposition)
            if decomposition.qs is not None
            else None
        )

        ctx = self.db.make_context(mounter=self.mounts, governor=governor)
        breakpoint_info = BreakpointInfo()
        io_parts: list[IoStats] = []

        # A metadata-only query is answered entirely by stage 1 — "the first
        # stage of execution is naturally enough" (§3).
        if decomposition.metadata_only:
            result = self.db.execute_plan(decomposition.plan, ctx)
            timings.stage1_seconds = result.elapsed_cpu
            breakpoint_info.stage1_rows = result.num_rows
            breakpoint_info.stage1_seconds = result.elapsed_cpu
            return TwoStageResult(
                result, breakpoint_info, decomposition, timings,
                truncation=governor.truncation_report(),
            )

        # Stage 1: the metadata branch.
        if decomposition.qf is not None:
            stage1 = self.db.execute_plan(decomposition.qf, ctx)
            ctx.results[decomposition.result_tag] = stage1.batch
            timings.stage1_seconds = stage1.elapsed_cpu
            io_parts.append(stage1.io)
            breakpoint_info.stage1_rows = stage1.num_rows
            breakpoint_info.stage1_seconds = stage1.elapsed_cpu

        # Files of interest, per actual-table alias.
        opt_started = time.perf_counter()
        files_by_alias = self._files_of_interest(decomposition, ctx)
        files_by_alias, pruned_by_time = self._prune_by_time(
            decomposition, files_by_alias
        )
        breakpoint_info.files_by_alias = files_by_alias
        breakpoint_info.pruned_by_time = pruned_by_time

        if self.estimate:
            breakpoint_info.estimate = estimate_informativeness(
                self.db,
                breakpoint_info.files_of_interest,
                self._repository_file_count(decomposition),
                self.cache.cached_uris(),
                self.cost_model,
                interval=self._query_interval(decomposition),
            )
            decision = self.destiny.decide(breakpoint_info.estimate)
            breakpoint_info.decision = decision
            if decision.action is DestinyAction.ABORT:
                raise QueryAbortedError(
                    f"query aborted at breakpoint: {decision.reason}",
                    breakpoint_info,
                )
            approximate = False
            if decision.action is DestinyAction.LIMIT:
                assert decision.max_files is not None
                files_by_alias = {
                    alias: files[: decision.max_files]
                    for alias, files in files_by_alias.items()
                }
                breakpoint_info.files_by_alias = files_by_alias
                approximate = True
        else:
            approximate = False

        # Derived-metadata fast path (§5): answer summaries without mounting.
        if self.derived is not None:
            derived_result = self.derived.try_answer(
                decomposition, files_by_alias, ctx, self.db
            )
            if derived_result is not None:
                breakpoint_info.answered_from_derived = True
                timings.runtime_opt_seconds = time.perf_counter() - opt_started
                return TwoStageResult(
                    derived_result, breakpoint_info, decomposition, timings,
                    approximate=approximate,
                    truncation=governor.truncation_report(),
                )

        # Run-time optimization: rewrite rule (1).
        report = RewriteReport()
        assert decomposition.qs is not None
        rewritten = apply_ali_rewrite(
            decomposition.qs,
            files_by_alias,
            self.cache,
            time_column=self.mounts.time_column,
            report=report,
        )
        if self.verify_plans:
            verify_ali_rewrite(decomposition.qs, rewritten)
        breakpoint_info.rewrite = report
        timings.runtime_opt_seconds = time.perf_counter() - opt_started

        # Stage 2: mounts happen here, inside the plan. Both strategies
        # dispatch their mount branches through a MountPool — serial when
        # mount_workers == 1, fanned out to a thread pool otherwise.
        pool = self.make_mount_pool(token=governor.token)
        self.mounts.pool = pool
        termination = None
        if self.top_n_pushdown and self.strategy == BULK:
            termination = self._top_n_termination(rewritten, pool)
        try:
            if termination is not None:
                monitor, prefetch_mounts = termination
                ctx.branch_monitor = monitor
            else:
                monitor = None
                prefetch_mounts = [
                    node for node in rewritten.walk() if isinstance(node, Mount)
                ]
            pool.prefetch(
                [
                    (
                        node.table_name,
                        node.uri,
                        self.mounts.request_for(
                            node.uri, node.table_name, node.alias,
                            node.predicate,
                        ),
                    )
                    for node in prefetch_mounts
                    # Don't spend workers on files the breaker will refuse
                    # at mount time anyway (mount_file stays authoritative).
                    if not self.breaker.likely_blocked(node.uri)
                ]
            )
            if self.strategy == PER_FILE:
                stage2 = self._execute_per_file(rewritten, ctx)
            else:
                stage2 = self.db.execute_plan(rewritten, ctx)
                if monitor is not None and not monitor.safe():
                    # A skip the emitted rows do not justify (operators
                    # between the union and the TopN dropped part of the
                    # answer). Correctness wins: re-run exhaustively —
                    # released branches extract inline on this thread.
                    ctx.branch_monitor = None
                    stage2 = self.db.execute_plan(rewritten, ctx)
        finally:
            ctx.branch_monitor = None
            self.mounts.pool = None
            pool.close()
            timings.record_mounts(self.mount_workers, pool.timings)
            timings.mount_failures = self.mounts.failure_report
        timings.stage2_seconds = stage2.elapsed_cpu
        io_parts.append(stage2.io)

        combined = QueryResult(
            names=stage2.names,
            batch=stage2.batch,
            elapsed_cpu=timings.total_seconds,
            io=_merge_io(io_parts),
            stats=ctx.stats,
        )
        return TwoStageResult(
            combined, breakpoint_info, decomposition, timings,
            approximate=approximate,
            truncation=governor.truncation_report(),
        )

    # -- Top-N early termination -------------------------------------------------

    def _top_n_termination(
        self, rewritten: LogicalPlan, pool: MountPool
    ) -> Optional[tuple[TopNBranchMonitor, list[Mount]]]:
        """Arm branch skipping for one stage-2 execution, when sound.

        Returns the monitor (installed as the context's ``branch_monitor``)
        and the union's Mount branches in consumption-priority order — the
        prefetch order, so workers extract the most promising hulls first
        and the threshold tightens before the losers reach the front of the
        queue. None when the rewritten plan is not the recognized shape.
        """
        target = find_top_n_target(rewritten, self.mounts.time_column)
        if target is None:
            return None
        hulls = branch_hulls(target.union, self.statistics().file_span)
        branches = list(target.union.inputs)

        def on_skip(index: int) -> None:
            branch = branches[index]
            self.mounts.stats.early_terminated_branches += 1
            if isinstance(branch, Mount) and pool.release(
                branch.table_name, branch.uri
            ):
                self.mounts.stats.early_cancelled_mounts += 1

        monitor = TopNBranchMonitor(
            count=target.topn.count,
            ascending=target.ascending,
            key=target.key,
            hulls=hulls,
            on_skip=on_skip,
        )
        order = monitor.schedule(len(branches))
        prefetch_mounts = [
            branches[i] for i in order if isinstance(branches[i], Mount)
        ]
        return monitor, prefetch_mounts

    # -- breakpoint helpers ----------------------------------------------------------

    def _prune_by_time(
        self,
        decomposition: Decomposition,
        files_by_alias: dict[str, list[str]],
    ) -> tuple[dict[str, list[str]], int]:
        """Drop files whose metadata time span cannot satisfy the query's
        sample-time interval.

        A file's samples lie within ``[F.start_time, F.end_time]`` — that is
        what the metadata *means* — so when the actual-data predicate bounds
        ``sample_time`` to an interval disjoint from a file's span, that file
        contributes no rows and need not be mounted. This is metadata
        exploitation beyond the join structure (§5 "extending metadata"),
        and it is what keeps queries that constrain *only* D's time cheap.
        Disable per binding with ``prune_by_time=False``.
        """
        assert decomposition.qs is not None
        pruned_total = 0
        predicates = _actual_scan_predicates(decomposition.qs)
        result: dict[str, list[str]] = {}
        for info in decomposition.actual_scans:
            files = files_by_alias.get(info.alias, [])
            binding = self.bindings.for_table(info.table_name)
            predicate = predicates.get(info.alias)
            if (
                binding is None
                or not binding.prune_by_time
                or predicate is None
                or not files
            ):
                result[info.alias] = files
                continue
            time_key = f"{info.alias}.{binding.time_column}"
            lo, hi = interval_from_predicate(predicate, time_key)
            if lo == -INF and hi == INF:
                result[info.alias] = files
                continue
            spans = self._file_time_spans()
            kept = [
                uri
                for uri in files
                if uri not in spans
                or (spans[uri][0] <= hi and spans[uri][1] >= lo)
            ]
            pruned_total += len(files) - len(kept)
            result[info.alias] = kept
        return result, pruned_total

    def _query_interval(
        self, decomposition: Decomposition
    ) -> Optional[tuple[int, int]]:
        """The sample-time interval the query's actual-data predicate
        implies (None when unbounded) — used to estimate the answer size."""
        assert decomposition.qs is not None
        predicates = _actual_scan_predicates(decomposition.qs)
        for info in decomposition.actual_scans:
            binding = self.bindings.for_table(info.table_name)
            time_column = binding.time_column if binding else "sample_time"
            predicate = predicates.get(info.alias)
            if predicate is None:
                continue
            interval = interval_from_predicate(
                predicate, f"{info.alias}.{time_column}"
            )
            if interval != (-INF, INF):
                return interval
        return None

    def _file_time_spans(self) -> dict[str, tuple[int, int]]:
        """uri → (start_time, end_time) from the loaded ``F`` metadata."""
        return {
            uri: stats.span
            for uri, stats in self.statistics().files.items()
        }

    def _record_map(
        self, uri: str, table_name: str
    ) -> Optional[tuple[RecordSpan, ...]]:
        """One file's record byte map, served from the ``R`` metadata table.

        Returns None when R is absent, lacks the byte columns, or has no
        rows for the file — selective extraction then falls back to its own
        header walk. The map is rebuilt only when R's batch object changes
        (appends replace it), so repeated mounts in one query are O(1).
        """
        if not self.db.catalog.has_table(RECORD_TABLE):
            return None
        batch = self.db.catalog.table(RECORD_TABLE).batch
        if self._record_spans_source is not batch:
            required = (
                "uri", "record_id", "start_time", "end_time",
                "byte_offset", "byte_length",
            )
            if any(name not in batch.names for name in required):
                return None
            uris = batch.column("uri").to_pylist()
            record_ids = batch.column("record_id").to_pylist()
            starts = batch.column("start_time").to_pylist()
            ends = batch.column("end_time").to_pylist()
            offsets = batch.column("byte_offset").to_pylist()
            lengths = batch.column("byte_length").to_pylist()
            by_uri: dict[str, list[RecordSpan]] = {}
            for u, rid, st, et, off, ln in zip(
                uris, record_ids, starts, ends, offsets, lengths
            ):
                by_uri.setdefault(u, []).append(
                    RecordSpan(
                        record_id=int(rid),
                        byte_offset=int(off),
                        byte_length=int(ln),
                        start_time=int(st),
                        end_time=int(et),
                    )
                )
            self._record_spans = {
                u: tuple(sorted(spans, key=lambda s: s.record_id))
                for u, spans in by_uri.items()
            }
            self._record_spans_source = batch
        return self._record_spans.get(uri)

    def _repository_file_count(self, decomposition: Decomposition) -> int:
        tables = {info.table_name.lower() for info in decomposition.actual_scans}
        total = 0
        seen = set()
        for table in tables:
            binding = self.bindings.for_table(table)
            if binding is not None and id(binding) not in seen:
                seen.add(id(binding))
                total += len(binding.repository)
        return total

    def _files_of_interest(self, decomposition: Decomposition, ctx) -> dict[str, list[str]]:
        files_by_alias: dict[str, list[str]] = {}
        qf_batch = ctx.results.get(decomposition.result_tag)
        for info in decomposition.actual_scans:
            if info.link_key is not None and qf_batch is not None:
                values = qf_batch.column(info.link_key).to_pylist()
                files_by_alias[info.alias] = list(dict.fromkeys(values))
            else:
                # No metadata constraint: every file is of interest (§4's
                # worst case).
                binding = self.bindings.for_table(info.table_name)
                files_by_alias[info.alias] = (
                    binding.repository.uris() if binding is not None else []
                )
        return files_by_alias

    # -- strategy (b): per-file partials --------------------------------------------

    def _execute_per_file(self, rewritten: LogicalPlan, ctx) -> QueryResult:
        """Run higher operators per sub-table and merge (§3 choice (b)).

        Falls back to bulk execution when the plan shape does not decompose
        (no aggregate, non-decomposable aggregate, or several unions).
        """
        aggregate = next(
            (n for n in rewritten.walk() if isinstance(n, Aggregate)), None
        )
        unions = [n for n in rewritten.walk() if isinstance(n, UnionAll)]
        if (
            aggregate is None
            or len(unions) != 1
            or not is_decomposable(aggregate)
            or not _union_below(aggregate, unions[0])
            or not all(
                isinstance(b, (Mount, CacheScan)) for b in unions[0].inputs
            )
        ):
            return self.db.execute_plan(rewritten, ctx)

        union = unions[0]
        merger = PartialMerger(aggregate)
        for branch in union.inputs:
            child = _replace_subtree(
                aggregate.child, union, UnionAll([branch])
            )
            partial_plan = merger.partial_aggregate_node(child)
            partial = self.db.execute_plan(partial_plan, ctx)
            merger.merge(partial.rows(), partial.names)

        final_batch = batch_from_rows(aggregate.output, merger.finalized_rows())
        ctx.results[_PARTIAL_TAG] = final_batch
        remainder = _replace_subtree(
            rewritten, aggregate, ResultScan(_PARTIAL_TAG, list(aggregate.output))
        )
        return self.db.execute_plan(remainder, ctx)


def _union_below(root: LogicalPlan, union: UnionAll) -> bool:
    return any(node is union for node in root.walk())


def _actual_scan_predicates(qs: LogicalPlan) -> dict[str, object]:
    """alias → the selection predicate sitting directly on its scan.

    Only the fused ``Select(Scan)`` shape matters: that is the predicate
    rule (1) will push into every mount branch, and the one whose time
    bounds can prune files via metadata.
    """
    from ..db.plan.logical import Scan, Select

    predicates: dict[str, object] = {}
    for node in qs.walk():
        if isinstance(node, Select) and isinstance(node.child, Scan):
            predicates[node.child.alias] = node.predicate
    return predicates
