"""Query informativeness and query-destiny control (§5).

"Since we have a two-stage query execution paradigm and we gain some
knowledge in the first stage, we can also anticipate the query's
informativeness … let the explorer learn expected time and resource
consumption of his query at the breakpoint and let him even change the
destiny of his query."

The estimate needs no actual data: files of interest (stage-1 output) joined
with the file-level metadata already in ``F`` give tuple and byte counts,
and a calibrated cost model turns those into expected stage-2 seconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..db.buffer import DiskModel
from ..db.database import Database
from ..ingest.schema import FILE_TABLE


@dataclass
class CostModel:
    """Calibrated constants translating metadata into expected seconds."""

    disk: DiskModel = field(default_factory=DiskModel)
    extract_tuples_per_second: float = 4e6  # mount: decompress + transform
    process_tuples_per_second: float = 2e7  # stage-2 joins and aggregates

    def mount_seconds(self, nbytes: int, tuples: int) -> float:
        return self.disk.read_seconds(nbytes) + tuples / self.extract_tuples_per_second

    def stage2_seconds(self, nbytes: int, tuples: int) -> float:
        return self.mount_seconds(nbytes, tuples) + (
            tuples / self.process_tuples_per_second
        )


@dataclass
class InformativenessReport:
    """What the system can tell the explorer at the breakpoint."""

    files: int
    repository_files: int
    cached_files: int
    est_tuples: int
    est_bytes: int
    est_mount_seconds: float
    est_stage2_seconds: float
    selectivity: float  # fraction of the repository's files touched
    score: float  # in [0, 1]; higher = more informative per unit cost
    est_result_rows: Optional[int] = None  # retrieval-size estimate

    def summary(self) -> str:
        text = (
            f"{self.files}/{self.repository_files} files of interest "
            f"({self.selectivity:.1%} of repository, {self.cached_files} cached); "
            f"~{self.est_tuples:,} tuples / {self.est_bytes:,} bytes to ingest; "
            f"expected stage-2 time ~{self.est_stage2_seconds:.2f}s; "
            f"informativeness score {self.score:.3f}"
        )
        if self.est_result_rows is not None:
            text += f"; ~{self.est_result_rows:,} rows in the time window"
        return text


def _file_stats(db: Database) -> dict[str, tuple[int, int, int, int]]:
    """uri → (nsamples, size_bytes, start_time, end_time) from ``F``."""
    table = db.catalog.table(FILE_TABLE)
    batch = table.batch
    uris = batch.column("uri").to_pylist()
    nsamples = batch.column("nsamples").to_pylist()
    sizes = batch.column("size_bytes").to_pylist()
    starts = batch.column("start_time").to_pylist()
    ends = batch.column("end_time").to_pylist()
    return {
        u: (int(n), int(s), int(b), int(e))
        for u, n, s, b, e in zip(uris, nsamples, sizes, starts, ends)
    }


def _window_rows(
    stats: dict[str, tuple[int, int, int, int]],
    files: Sequence[str],
    interval: tuple[int, int],
) -> int:
    """Estimated tuples inside the requested time window, by assuming each
    file's samples are uniform over its metadata span (§5's "anticipate the
    query's informativeness" — here, the expected answer size)."""
    lo, hi = interval
    total = 0.0
    for uri in files:
        if uri not in stats:
            continue
        nsamples, _, start, end = stats[uri]
        span = max(end - start, 1)
        overlap = max(0, min(end, hi) - max(start, lo))
        total += nsamples * min(overlap / span, 1.0)
    return int(round(total))


def estimate_informativeness(
    db: Database,
    files_of_interest: Sequence[str],
    repository_files: int,
    cached_uris: set[str],
    cost_model: Optional[CostModel] = None,
    interval: Optional[tuple[int, int]] = None,
) -> InformativenessReport:
    """Estimate stage-2 cost and informativeness from metadata alone.

    The score is a documented heuristic: a query is informative when it
    narrows the data space (low selectivity) and is cheap to run —
    ``score = (1 - selectivity) / (1 + est_stage2_seconds)``, with an empty
    files-of-interest set scoring a full 1.0 (instant, decisive answer).
    ``interval`` (the sample-time bounds of the actual-data predicate)
    additionally yields an expected answer size, assuming samples uniform
    over each file's metadata time span.
    """
    cost_model = cost_model or CostModel()
    stats = _file_stats(db)
    to_mount = [u for u in files_of_interest if u not in cached_uris]
    est_tuples = sum(stats.get(u, (0, 0, 0, 0))[0] for u in files_of_interest)
    est_bytes = sum(stats.get(u, (0, 0, 0, 0))[1] for u in to_mount)
    mount_tuples = sum(stats.get(u, (0, 0, 0, 0))[0] for u in to_mount)
    est_mount = cost_model.mount_seconds(est_bytes, mount_tuples)
    est_stage2 = cost_model.stage2_seconds(est_bytes, est_tuples)
    selectivity = (
        len(files_of_interest) / repository_files if repository_files else 0.0
    )
    if not files_of_interest:
        score = 1.0
    else:
        score = max(0.0, (1.0 - selectivity) / (1.0 + est_stage2))
    est_result_rows = None
    if interval is not None:
        est_result_rows = _window_rows(stats, files_of_interest, interval)
    return InformativenessReport(
        files=len(files_of_interest),
        repository_files=repository_files,
        cached_files=len(files_of_interest) - len(to_mount),
        est_tuples=est_tuples,
        est_bytes=est_bytes,
        est_mount_seconds=est_mount,
        est_stage2_seconds=est_stage2,
        selectivity=selectivity,
        score=score,
        est_result_rows=est_result_rows,
    )


# -- query destiny -------------------------------------------------------------


class DestinyAction(enum.Enum):
    """What happens to the query at the breakpoint."""

    PROCEED = "proceed"
    ABORT = "abort"
    LIMIT = "limit"  # proceed, but over at most ``max_files`` files


@dataclass(frozen=True)
class DestinyDecision:
    action: DestinyAction
    max_files: Optional[int] = None
    reason: str = ""


class DestinyPolicy:
    """Decides a query's destiny from the breakpoint report."""

    def decide(self, report: InformativenessReport) -> DestinyDecision:
        raise NotImplementedError


class ProceedAlways(DestinyPolicy):
    """The default: never interfere (plain ALi behaviour)."""

    def decide(self, report: InformativenessReport) -> DestinyDecision:
        return DestinyDecision(DestinyAction.PROCEED)


@dataclass
class AbortAboveCost(DestinyPolicy):
    """Abort queries whose anticipated stage-2 cost exceeds a budget —
    the guard against "the worst case of ALi" (§5)."""

    max_seconds: Optional[float] = None
    max_files: Optional[int] = None
    max_tuples: Optional[int] = None

    def decide(self, report: InformativenessReport) -> DestinyDecision:
        if self.max_seconds is not None and report.est_stage2_seconds > self.max_seconds:
            return DestinyDecision(
                DestinyAction.ABORT,
                reason=(
                    f"expected stage-2 time {report.est_stage2_seconds:.2f}s "
                    f"exceeds budget {self.max_seconds:.2f}s"
                ),
            )
        if self.max_files is not None and report.files > self.max_files:
            return DestinyDecision(
                DestinyAction.ABORT,
                reason=f"{report.files} files of interest exceed budget "
                f"{self.max_files}",
            )
        if self.max_tuples is not None and report.est_tuples > self.max_tuples:
            return DestinyDecision(
                DestinyAction.ABORT,
                reason=f"~{report.est_tuples} tuples exceed budget "
                f"{self.max_tuples}",
            )
        return DestinyDecision(DestinyAction.PROCEED)


@dataclass
class LimitFilesAboveCost(DestinyPolicy):
    """Degrade to an approximate answer over the first ``keep_files`` files
    instead of aborting (queries-as-answers flavour)."""

    max_files: int
    keep_files: int

    def decide(self, report: InformativenessReport) -> DestinyDecision:
        if report.files > self.max_files:
            return DestinyDecision(
                DestinyAction.LIMIT,
                max_files=self.keep_files,
                reason=f"limited to first {self.keep_files} of "
                f"{report.files} files",
            )
        return DestinyDecision(DestinyAction.PROCEED)


@dataclass
class CallbackPolicy(DestinyPolicy):
    """Delegate the decision to user code — the interactive explorer hook."""

    callback: Callable[[InformativenessReport], DestinyDecision]

    def decide(self, report: InformativenessReport) -> DestinyDecision:
        return self.callback(report)
