"""The inter-stage breakpoint.

Two-stage execution "creates breakpoints within the queries" — this module
is what the system knows at that point: the files of interest computed by
``Qf``, what is already cached, the informativeness estimate, and the destiny
decision that was taken.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .informativeness import DestinyDecision, InformativenessReport
from .rules import RewriteReport


@dataclass
class BreakpointInfo:
    """Everything known between stage 1 and stage 2 of one query."""

    files_by_alias: dict[str, list[str]] = field(default_factory=dict)
    pruned_by_time: int = 0  # files dropped via metadata time spans
    stage1_rows: int = 0
    stage1_seconds: float = 0.0
    estimate: Optional[InformativenessReport] = None
    decision: Optional[DestinyDecision] = None
    rewrite: Optional[RewriteReport] = None
    answered_from_derived: bool = False

    @property
    def files_of_interest(self) -> list[str]:
        """Union of per-alias files, deterministic order."""
        seen: dict[str, None] = {}
        for files in self.files_by_alias.values():
            for uri in files:
                seen.setdefault(uri)
        return list(seen)

    @property
    def n_files(self) -> int:
        return len(self.files_of_interest)

    def summary(self) -> str:
        lines = [
            f"stage 1: {self.stage1_rows} metadata rows in "
            f"{self.stage1_seconds * 1000:.1f} ms; "
            f"{self.n_files} file(s) of interest"
        ]
        if self.pruned_by_time:
            lines.append(
                f"{self.pruned_by_time} file(s) pruned via metadata time spans"
            )
        if self.estimate is not None:
            lines.append(self.estimate.summary())
        if self.decision is not None and self.decision.reason:
            lines.append(
                f"destiny: {self.decision.action.value} ({self.decision.reason})"
            )
        if self.answered_from_derived:
            lines.append("answered from derived metadata — no files mounted")
        if self.rewrite is not None:
            lines.append(
                f"rule (1): {self.rewrite.mounts} mount(s), "
                f"{self.rewrite.cache_scans} cache-scan(s)"
            )
        return "\n".join(lines)
