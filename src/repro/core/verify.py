"""Two-stage-specific plan invariants (the paper's §3–4 soundness rules).

:mod:`repro.db.plan.verify` checks invariants any relational plan must hold;
this module adds the ones that make the ``Q = Qf ▷ Qs`` split and rule (1)
sound:

* ``Qf`` is a *metadata branch*: every leaf under it scans a metadata table
  (otherwise stage 1 would touch actual data before the files of interest
  are known),
* every result-scan feeding ``Qs`` carries exactly the stage-1 output —
  same keys, same types, same arity — so stage 2 reads precisely what
  stage 1 materialized,
* the run-time ALi rewrite (rule (1)) replaces each actual scan with a
  union whose branches all produce the scan's schema, without disturbing
  the rest of the plan's output.

Violations raise :class:`~repro.db.errors.PlanInvariantError` naming the
pass (``decompose`` or ``ali-rewrite``) and the offending node.
"""

from __future__ import annotations

from ..db.errors import PlanInvariantError
from ..db.plan.logical import LogicalPlan, ResultScan, Scan
from ..db.plan.verify import verify_plan
from .decompose import ClassifyFn, Decomposition

PASS_DECOMPOSE = "decompose"
PASS_ALI_REWRITE = "ali-rewrite"


def _schema_map(plan: LogicalPlan) -> dict[str, object]:
    return {key: dtype for key, dtype in plan.output}


def verify_decomposition(
    decomposition: Decomposition, classify: ClassifyFn
) -> Decomposition:
    """Check the two-stage soundness conditions of a ``Q = Qf ▷ Qs`` split."""
    qf = decomposition.qf
    qs = decomposition.qs

    if qf is not None:
        for node in qf.walk():
            if node.children():
                continue
            if not isinstance(node, Scan):
                raise PlanInvariantError(
                    PASS_DECOMPOSE,
                    "Qf contains a non-scan leaf; stage 1 may only read "
                    "stored tables",
                    node,
                )
            if not classify(node.table_name):
                raise PlanInvariantError(
                    PASS_DECOMPOSE,
                    f"Qf scans {node.table_name!r}, which is not a metadata "
                    "table — stage 1 must not touch actual data",
                    node,
                )
        verify_plan(qf, PASS_DECOMPOSE)

    if decomposition.metadata_only:
        if qs is not None:
            raise PlanInvariantError(
                PASS_DECOMPOSE,
                "metadata-only decomposition must not have a stage-2 plan",
                qs,
            )
        return decomposition

    if qs is None:
        raise PlanInvariantError(
            PASS_DECOMPOSE, "non-metadata-only decomposition is missing Qs"
        )
    verify_plan(qs, PASS_DECOMPOSE)

    result_scans = [
        node
        for node in qs.walk()
        if isinstance(node, ResultScan) and node.tag == decomposition.result_tag
    ]
    if qf is not None:
        if not result_scans:
            raise PlanInvariantError(
                PASS_DECOMPOSE,
                f"Qs never reads the stage-1 result (tag "
                f"{decomposition.result_tag!r}); the metadata work would be "
                "thrown away",
                qs,
            )
        for node in result_scans:
            if list(node.output) != list(qf.output):
                raise PlanInvariantError(
                    PASS_DECOMPOSE,
                    f"result-scan arity/schema mismatch: scan expects "
                    f"{node.output_keys()} but stage 1 produces "
                    f"{qf.output_keys()}",
                    node,
                )
    elif result_scans:
        raise PlanInvariantError(
            PASS_DECOMPOSE,
            "Qs reads a stage-1 result but the decomposition has no Qf",
            result_scans[0],
        )

    if _schema_map(qs) != _schema_map(decomposition.plan):
        raise PlanInvariantError(
            PASS_DECOMPOSE,
            "Qs output schema drifted from the original plan's",
            qs,
        )
    return decomposition


def verify_ali_rewrite(before: LogicalPlan, after: LogicalPlan) -> LogicalPlan:
    """Check rule (1)'s output: structurally sound, schema preserved.

    The per-branch invariants (every union branch produces the union's
    declared schema; fused predicates reference only the mounted file's own
    alias) live in the generic node checks of
    :func:`repro.db.plan.verify.verify_plan`.
    """
    verify_plan(after, PASS_ALI_REWRITE)
    if _schema_map(before) != _schema_map(after):
        raise PlanInvariantError(
            PASS_ALI_REWRITE,
            "rule (1) changed the stage-2 plan's output schema",
            after,
        )
    return after
