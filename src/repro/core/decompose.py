"""Plan decomposition: ``Q = Qf ▷ Qs`` (§3 "Relational Query Plan").

``Qf`` is the highest branch of the relational algebra tree whose leaves are
only metadata table scans; ``Qs`` is the rest of the plan. The compile-time
metadata-first join reordering (in :mod:`repro.db.plan.rewrite`) maximizes
that branch before decomposition runs.

``Qs`` accesses the stage-1 result through the result-scan access path, so
shared work is never re-executed ("the sub-plan is not replicated — we
enable Qs to access the result of the sub-plan").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..db.errors import PlanError
from ..db.expr import ColumnRef, Comparison, conjuncts
from ..db.plan.logical import Join, LogicalPlan, ResultScan, Scan

ClassifyFn = Callable[[str], bool]

QF_TAG = "qf"


@dataclass
class ActualScanInfo:
    """One actual-data scan in ``Qs`` and how it links to ``Qf``.

    ``link_key`` is the stage-1 output column whose distinct values identify
    this scan's files of interest (e.g. ``r.uri``); None means the query
    gives no metadata constraint for this table, so every repository file is
    of interest — the paper's worst case.
    """

    scan: Scan
    alias: str
    table_name: str
    uri_key: str  # e.g. "d.uri"
    link_key: Optional[str] = None


@dataclass
class Decomposition:
    """The two stages of one query plan."""

    plan: LogicalPlan  # the optimized single plan Q
    qf: Optional[LogicalPlan]  # metadata branch (stage 1); None if no metadata
    qs: Optional[LogicalPlan]  # the rest (stage 2); None if metadata-only
    metadata_only: bool
    actual_scans: list[ActualScanInfo] = field(default_factory=list)
    result_tag: str = QF_TAG

    def explain(self) -> str:
        """The full plan with the ``Qf`` branch marked (the paper's bold)."""
        return self.plan.explain(mark=self.qf)


def _is_metadata_subtree(node: LogicalPlan, classify: ClassifyFn) -> bool:
    """True when every leaf under ``node`` is a metadata-table scan."""
    has_scan = False
    for descendant in node.walk():
        if descendant.children():
            continue
        if not isinstance(descendant, Scan):
            return False
        if not classify(descendant.table_name):
            return False
        has_scan = True
    return has_scan


def _maximal_metadata_subtrees(
    node: LogicalPlan, classify: ClassifyFn
) -> list[LogicalPlan]:
    if _is_metadata_subtree(node, classify):
        return [node]
    found: list[LogicalPlan] = []
    for child in node.children():
        found.extend(_maximal_metadata_subtrees(child, classify))
    return found


def _scan_count(node: LogicalPlan) -> int:
    return sum(1 for n in node.walk() if isinstance(n, Scan))


def _replace_subtree(
    node: LogicalPlan, target: LogicalPlan, replacement: LogicalPlan
) -> LogicalPlan:
    if node is target:
        return replacement
    children = node.children()
    if not children:
        return node
    rebuilt = [_replace_subtree(child, target, replacement) for child in children]
    return node.with_children(rebuilt)


def _find_actual_scans(
    qs: LogicalPlan,
    qf: Optional[LogicalPlan],
    classify: ClassifyFn,
    uri_column_of: Callable[[str], str],
) -> list[ActualScanInfo]:
    qf_keys = set(qf.output_keys()) if qf is not None else set()
    join_pairs: list[tuple[str, str]] = []
    for node in qs.walk():
        if isinstance(node, Join) and node.condition is not None:
            for conj in conjuncts(node.condition):
                if (
                    isinstance(conj, Comparison)
                    and conj.op == "="
                    and isinstance(conj.left, ColumnRef)
                    and isinstance(conj.right, ColumnRef)
                ):
                    join_pairs.append((conj.left.key, conj.right.key))
                    join_pairs.append((conj.right.key, conj.left.key))

    infos: list[ActualScanInfo] = []
    for node in qs.walk():
        if not isinstance(node, Scan) or classify(node.table_name):
            continue
        uri_key = f"{node.alias}.{uri_column_of(node.table_name)}"
        link = None
        for left, right in join_pairs:
            if left == uri_key and right in qf_keys:
                link = right
                break
        infos.append(
            ActualScanInfo(
                scan=node,
                alias=node.alias,
                table_name=node.table_name,
                uri_key=uri_key,
                link_key=link,
            )
        )
    return infos


def decompose(
    plan: LogicalPlan,
    classify: ClassifyFn,
    uri_column_of: Callable[[str], str] = lambda table: "uri",
) -> Decomposition:
    """Split an optimized plan into ``Qf`` and ``Qs``.

    "It is not needed to form Qf and Qs unless the query refers to both
    metadata and actual data": a metadata-only plan comes back with
    ``metadata_only=True`` (the whole query runs as stage 1) and a plan with
    no metadata at all comes back with ``qf=None`` (stage 1 is empty and
    every repository file is of interest).
    """
    if _is_metadata_subtree(plan, classify):
        return Decomposition(plan=plan, qf=plan, qs=None, metadata_only=True)

    candidates = _maximal_metadata_subtrees(plan, classify)
    qf: Optional[LogicalPlan] = None
    if candidates:
        qf = max(candidates, key=_scan_count)

    if qf is None:
        qs = plan
    else:
        if not qf.output:
            raise PlanError("metadata branch produces no columns")
        qs = _replace_subtree(plan, qf, ResultScan(QF_TAG, list(qf.output)))

    actual_scans = _find_actual_scans(qs, qf, classify, uri_column_of)
    return Decomposition(
        plan=plan,
        qf=qf,
        qs=qs,
        metadata_only=False,
        actual_scans=actual_scans,
    )
