"""Derived metadata (§5 "Extending metadata").

"We can derive metadata as a side-effect of ALi or actual data processing,
without the explorer noticing, in order to address lack of metadata
exploitation and long exploration."

:class:`DerivedMetadataStore` hooks into the mount service: every mounted
file contributes per-record summaries (min/max/sum/count and gap counts) to
a derived-metadata table ``DR``. Because ``DR`` is classified as metadata,
later summary queries can be answered at the breakpoint **without mounting
anything** — :meth:`DerivedMetadataStore.try_answer` implements that fast
path for ungrouped decomposable aggregates over the sample values.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..db.database import Database, QueryResult
from ..db.expr import ColumnRef, Comparison, conjuncts
from ..db.plan.logical import (
    Aggregate,
    Join,
    ResultScan,
    Select,
)
from ..db.plan.physical import ExecutionContext
from ..db.schema import ColumnDef, TableKind, TableSchema
from ..db.table import ColumnBatch
from ..db.types import DataType
from .decompose import Decomposition, _replace_subtree
from .executor_util import batch_from_rows

DERIVED_TABLE = "DR"
_DERIVED_TAG = "derived_agg"


def derived_table_schema() -> TableSchema:
    return TableSchema(
        name=DERIVED_TABLE,
        columns=[
            ColumnDef("uri", DataType.STRING),
            ColumnDef("record_id", DataType.INT64),
            ColumnDef("min_value", DataType.FLOAT64),
            ColumnDef("max_value", DataType.FLOAT64),
            ColumnDef("sum_value", DataType.FLOAT64),
            ColumnDef("nsamples", DataType.INT64),
            ColumnDef("gap_count", DataType.INT64),
        ],
        kind=TableKind.DERIVED,
        primary_key=("uri", "record_id"),
    )


class DerivedMetadataStore:
    """Collects and serves derived metadata for one database."""

    def __init__(self, db: Database, value_column: str = "sample_value") -> None:
        self.db = db
        self.value_column = value_column
        if not db.catalog.has_table(DERIVED_TABLE):
            db.create_table(derived_table_schema())
        self._files_done: set[str] = set(
            db.catalog.table(DERIVED_TABLE).batch.column("uri").to_pylist()
        )

    # -- collection (the mount side-effect) ------------------------------------

    def on_mount(self, uri: str, batch: ColumnBatch) -> None:
        """Summarize one mounted file into ``DR`` (idempotent per file)."""
        if uri in self._files_done:
            return
        self._files_done.add(uri)
        record_ids = batch.column("record_id").values
        times = batch.column("sample_time").values
        values = batch.column("sample_value").values
        rows = []
        for rid in np.unique(record_ids):
            mask = record_ids == rid
            rows.append(
                (
                    uri,
                    int(rid),
                    float(values[mask].min()) if mask.any() else float("nan"),
                    float(values[mask].max()) if mask.any() else float("nan"),
                    float(values[mask].sum()),
                    int(mask.sum()),
                    _count_gaps(times[mask]),
                )
            )
        if rows:
            self.db.insert_rows(DERIVED_TABLE, rows)

    def has_file(self, uri: str) -> bool:
        return uri in self._files_done

    def coverage(self, uris: Iterable[str]) -> float:
        uris = list(uris)
        if not uris:
            return 1.0
        return sum(1 for u in uris if u in self._files_done) / len(uris)

    # -- exploitation (the breakpoint fast path) ---------------------------------

    def try_answer(
        self,
        decomposition: Decomposition,
        files_by_alias: dict[str, list[str]],
        ctx: ExecutionContext,
        db: Database,
    ) -> Optional[QueryResult]:
        """Answer an ungrouped summary aggregate from ``DR`` if possible.

        Conditions: a single actual scan; one ungrouped Aggregate whose
        functions are avg/sum/count/min/max over the value column (or
        COUNT(*)); the actual table's columns appear nowhere else except as
        equi-join keys on uri/record_id; and every file of interest has
        already contributed to ``DR``. Returns None when any condition
        fails, in which case normal stage-2 mounting proceeds.
        """
        if decomposition.qs is None or len(decomposition.actual_scans) != 1:
            return None
        info = decomposition.actual_scans[0]
        alias = info.alias
        files = files_by_alias.get(alias, [])
        if any(uri not in self._files_done for uri in files):
            return None

        aggregate = next(
            (n for n in decomposition.qs.walk() if isinstance(n, Aggregate)), None
        )
        if aggregate is None or aggregate.groups:
            return None
        value_key = f"{alias}.{self.value_column}"
        for spec in aggregate.aggs:
            if spec.distinct or spec.func not in ("avg", "sum", "count", "min", "max"):
                return None
            if spec.arg is not None and (
                not isinstance(spec.arg, ColumnRef) or spec.arg.key != value_key
            ):
                return None

        record_pairs = self._record_scope(decomposition, alias, ctx)
        if record_pairs is _INVALID:
            return None

        dr_rows = self._scoped_rows(files, record_pairs)
        values = _aggregate_from_summaries(aggregate, dr_rows)
        final_batch = batch_from_rows(aggregate.output, [values])
        ctx.results[_DERIVED_TAG] = final_batch
        remainder = _replace_subtree(
            decomposition.qs, aggregate,
            ResultScan(_DERIVED_TAG, list(aggregate.output)),
        )
        return db.execute_plan(remainder, ctx)

    def _record_scope(
        self, decomposition: Decomposition, alias: str, ctx
    ) -> "set[tuple[str, int]] | None | object":
        """The (uri, record_id) pairs the query touches, from stage 1.

        None = whole files; ``_INVALID`` = the query constrains the actual
        table in ways derived metadata cannot honor.
        """
        assert decomposition.qs is not None
        uri_partner = None
        record_partner = None
        for node in decomposition.qs.walk():
            if isinstance(node, Select):
                refs = node.predicate.references()
                if any(r.startswith(f"{alias}.") for r in refs):
                    return _INVALID
            if isinstance(node, Join) and node.condition is not None:
                for conj in conjuncts(node.condition):
                    refs = conj.references()
                    mine = [r for r in refs if r.startswith(f"{alias}.")]
                    if not mine:
                        continue
                    if (
                        isinstance(conj, Comparison)
                        and conj.op == "="
                        and isinstance(conj.left, ColumnRef)
                        and isinstance(conj.right, ColumnRef)
                    ):
                        own, other = (
                            (conj.left.key, conj.right.key)
                            if conj.left.key.startswith(f"{alias}.")
                            else (conj.right.key, conj.left.key)
                        )
                        column = own.split(".", 1)[1]
                        if column == "uri":
                            uri_partner = other
                            continue
                        if column == "record_id":
                            record_partner = other
                            continue
                    return _INVALID
        if record_partner is None:
            return None
        qf_batch = ctx.results.get(decomposition.result_tag)
        if qf_batch is None or uri_partner is None:
            return _INVALID
        uris = qf_batch.column(uri_partner).to_pylist()
        rids = qf_batch.column(record_partner).to_pylist()
        return set(zip(uris, (int(r) for r in rids)))

    def _scoped_rows(
        self, files: list[str], record_pairs
    ) -> list[tuple]:
        batch = self.db.catalog.table(DERIVED_TABLE).batch
        uris = batch.column("uri").to_pylist()
        rows = batch.rows()
        file_set = set(files)
        kept = []
        for uri, row in zip(uris, rows):
            if uri not in file_set:
                continue
            if record_pairs is not None and (uri, int(row[1])) not in record_pairs:
                continue
            kept.append(row)
        return kept


_INVALID = object()


def _count_gaps(times: np.ndarray) -> int:
    """Gaps = sampling steps more than 1.5× the typical step (§5's example
    of analyzed derived metadata)."""
    if len(times) < 3:
        return 0
    diffs = np.diff(np.sort(times))
    typical = np.median(diffs)
    if typical <= 0:
        return 0
    return int((diffs > 1.5 * typical).sum())


def _aggregate_from_summaries(aggregate: Aggregate, dr_rows: list[tuple]) -> tuple:
    """Evaluate the final aggregates from (uri, rid, min, max, sum, n, gaps)."""
    total_sum = sum(row[4] for row in dr_rows)
    total_n = sum(row[5] for row in dr_rows)
    mins = [row[2] for row in dr_rows if row[5] > 0]
    maxs = [row[3] for row in dr_rows if row[5] > 0]
    values = []
    for spec in aggregate.aggs:
        if spec.func == "count":
            values.append(int(total_n))
        elif spec.func == "sum":
            values.append(
                float(total_sum) if spec.dtype is DataType.FLOAT64 else int(total_sum)
            )
        elif spec.func == "avg":
            values.append(total_sum / total_n if total_n else float("nan"))
        elif spec.func == "min":
            values.append(min(mins) if mins else float("nan"))
        else:  # max
            values.append(max(maxs) if maxs else float("nan"))
    return tuple(values)
