"""Decomposable aggregation over per-file partial results.

§3 leaves a run-time strategy choice open: "(a) merge the actual data taken
from each file into comprehensive table(s) and then apply the higher
operators in bulk fashion or (b) run higher operators on sub-tables and then
merge the results". This module is the algebra behind (b): aggregates are
expanded into partial specs that distribute over union (AVG → SUM+COUNT),
computed per file, and merged.

The same machinery powers multi-stage execution (§5), where files are
ingested in batches with a running estimate available after every batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from ..db.errors import PlanError
from ..db.plan.logical import Aggregate, AggSpec, LogicalPlan
from ..db.types import DataType

DECOMPOSABLE_FUNCS = {"sum", "count", "min", "max", "avg"}


def is_decomposable(aggregate: Aggregate) -> bool:
    """Whether strategy (b) applies: every aggregate distributes over union."""
    return all(
        spec.func in DECOMPOSABLE_FUNCS and not spec.distinct
        for spec in aggregate.aggs
    )


@dataclass(frozen=True)
class _PartialPlanEntry:
    """How one final aggregate maps onto partial columns."""

    func: str
    partial_names: tuple[str, ...]  # columns of the partial aggregate
    dtype: DataType


def expand_partial_specs(
    aggs: Sequence[AggSpec],
) -> tuple[list[AggSpec], list[_PartialPlanEntry]]:
    """Expand final aggregates into per-file partial aggregates.

    AVG(x) becomes SUM(x) and COUNT(x); everything else keeps its function.
    Duplicate partials are shared (AVG(x) + SUM(x) compute SUM(x) once).
    """
    partials: list[AggSpec] = []
    keys: dict[tuple, str] = {}

    def partial_for(func: str, spec: AggSpec) -> str:
        signature = (func, "*" if spec.arg is None else repr(spec.arg))
        name = keys.get(signature)
        if name is None:
            name = f"partial_{len(partials)}"
            if func == "count":
                dtype = DataType.INT64
            elif func == "sum":
                dtype = (
                    DataType.FLOAT64
                    if spec.arg is not None and spec.arg.dtype is DataType.FLOAT64
                    else DataType.INT64
                )
            else:
                dtype = spec.arg.dtype if spec.arg is not None else DataType.INT64
            partials.append(AggSpec(func, spec.arg, name, False, dtype))
            keys[signature] = name
        return name

    plan: list[_PartialPlanEntry] = []
    for spec in aggs:
        if spec.func not in DECOMPOSABLE_FUNCS or spec.distinct:
            raise PlanError(f"aggregate {spec.label()} is not decomposable")
        if spec.func == "avg":
            names = (partial_for("sum", spec), partial_for("count", spec))
        else:
            names = (partial_for(spec.func, spec),)
        plan.append(_PartialPlanEntry(spec.func, names, spec.dtype))
    return partials, plan


def _merge_extremum(func: str, current: Any, value: Any) -> Any:
    """Fold one MIN/MAX partial into the running extremum.

    A file whose rows were all filtered away contributes the engine's
    empty-input marker (NaN for float MIN/MAX) — the identity of the merge,
    not a data value. Python's ``min``/``max`` would instead propagate a NaN
    that arrives first, so NaN partials must be skipped explicitly.
    """
    if value != value:  # NaN: empty partial
        return current
    if current != current:
        return value
    return min(current, value) if func == "min" else max(current, value)


class PartialMerger:
    """Accumulates per-file partial aggregate rows and finalizes them."""

    def __init__(self, aggregate: Aggregate) -> None:
        self.aggregate = aggregate
        self.partial_specs, self._plan = expand_partial_specs(aggregate.aggs)
        self.group_names = [name for name, _ in aggregate.groups]
        # group key tuple -> list of per-partial accumulated values
        self._state: dict[tuple, list[Any]] = {}
        self.files_merged = 0

    def partial_aggregate_node(self, child: LogicalPlan) -> Aggregate:
        """The Aggregate node to run over one file's sub-plan."""
        return Aggregate(child, self.aggregate.groups, self.partial_specs)

    def merge(self, rows: Sequence[tuple], names: Sequence[str]) -> None:
        """Fold one partial result (rows from the partial aggregate)."""
        name_idx = {n: i for i, n in enumerate(names)}
        group_idx = [name_idx[g] for g in self.group_names]
        partial_idx = [name_idx[s.out_name] for s in self.partial_specs]
        for row in rows:
            key = tuple(row[i] for i in group_idx)
            values = [row[i] for i in partial_idx]
            state = self._state.get(key)
            if state is None:
                self._state[key] = list(values)
                continue
            for i, (spec, value) in enumerate(zip(self.partial_specs, values)):
                if spec.func in ("sum", "count"):
                    state[i] = state[i] + value
                else:  # min / max
                    state[i] = _merge_extremum(spec.func, state[i], value)
        self.files_merged += 1

    def finalized_rows(self) -> list[tuple]:
        """Rows in the final Aggregate's output layout (groups then aggs)."""
        partial_pos = {
            spec.out_name: i for i, spec in enumerate(self.partial_specs)
        }
        out: list[tuple] = []
        for key in self._state:
            state = self._state[key]
            finals: list[Any] = []
            for entry in self._plan:
                values = [state[partial_pos[name]] for name in entry.partial_names]
                if entry.func == "avg":
                    total, count = values
                    finals.append(total / count if count else float("nan"))
                else:
                    finals.append(values[0])
            out.append(tuple(key) + tuple(finals))
        if not self.aggregate.groups and not out:
            # Scalar aggregation over zero files still yields one row, with
            # the engine's documented empty-input convention: COUNT and SUM
            # are 0, AVG is NaN, MIN/MAX are NaN for floats and 0 for ints.
            finals = []
            for entry in self._plan:
                if entry.func in ("count", "sum"):
                    finals.append(
                        0.0 if entry.dtype is DataType.FLOAT64 else 0
                    )
                elif entry.func == "avg":
                    finals.append(float("nan"))
                elif entry.dtype is DataType.FLOAT64:
                    finals.append(float("nan"))
                else:
                    finals.append(0)
            out.append(tuple(finals))
        return out

    def snapshot(self) -> Optional[list[tuple]]:
        """The current running answer (multi-stage's per-batch estimate)."""
        if not self._state and self.aggregate.groups:
            return None
        return self.finalized_rows()
