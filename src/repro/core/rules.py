"""Run-time query optimization: rewrite rule (1) of the paper.

Between the two stages, each actual-data scan is rewritten into a union of
per-file access paths::

    scan(a) → ∪_{f ∈ result-scan(Qf)}  cache-scan(f)   if f ∈ C
                                       mount(f)        otherwise

Selections sitting on the scan are pushed into every union branch and fused
with the mount/cache-scan ("combined selections with mounts and/or
cache-scans, creating two more access paths"). These rewrites can only run
once the files of interest are known, i.e. *after* stage 1 — which is what
makes this phase run-time optimization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..db.expr import ColumnRef, Comparison, Expr, Literal, conjuncts
from ..db.plan.logical import (
    CacheScan,
    LogicalPlan,
    Mount,
    Scan,
    Select,
    UnionAll,
)
from ..db.interval import is_empty
from ..db.types import DataType
from .cache import IngestionCache, Interval, WHOLE_FILE
from .mounting import interval_from_predicate


@dataclass
class RewriteReport:
    """What rule (1) did to one plan — surfaced at the breakpoint."""

    mounts: int = 0
    cache_scans: int = 0
    pruned_by_uri_predicate: int = 0
    # Branches never created because the fused predicate's time conjuncts
    # contradict each other: the empty interval proves the branch yields no
    # rows, so no mount (and no disk access) ever happens.
    pruned_by_empty_interval: int = 0


def uris_from_uri_predicate(
    predicate: Optional[Expr], uri_key: str, candidates: Sequence[str]
) -> list[str]:
    """Statically prune files using equality conjuncts on the uri column.

    A predicate like ``d.uri = 'x'`` restricts the files of interest without
    mounting anything; non-equality predicates leave the set unchanged.
    """
    if predicate is None:
        return list(candidates)
    allowed: Optional[set[str]] = None
    for conj in conjuncts(predicate):
        if (
            isinstance(conj, Comparison)
            and conj.op == "="
        ):
            column, literal = None, None
            if isinstance(conj.left, ColumnRef) and isinstance(conj.right, Literal):
                column, literal = conj.left, conj.right
            elif isinstance(conj.right, ColumnRef) and isinstance(conj.left, Literal):
                column, literal = conj.right, conj.left
            if (
                column is not None
                and column.key == uri_key
                and literal.dtype is DataType.STRING
            ):
                value = str(literal.value)
                allowed = {value} if allowed is None else allowed & {value}
    if allowed is None:
        return list(candidates)
    return [uri for uri in candidates if uri in allowed]


def rewrite_actual_scan(
    scan: Scan,
    predicate: Optional[Expr],
    files_of_interest: Sequence[str],
    cache: IngestionCache,
    time_column: str = "sample_time",
    report: Optional[RewriteReport] = None,
) -> UnionAll:
    """Apply rule (1) to one actual scan, fusing ``predicate`` into every
    branch. Returns the union access plan (possibly with zero branches)."""
    interval: Interval = WHOLE_FILE
    if predicate is not None:
        interval = interval_from_predicate(
            predicate, f"{scan.alias}.{time_column}"
        )
    if is_empty(interval):
        # Contradictory time conjuncts: no tuple can satisfy the predicate,
        # so rule (1) drops every branch — the paper's best case, nothing is
        # ever ingested.
        if report is not None:
            report.pruned_by_empty_interval += len(files_of_interest)
        return UnionAll([], declared_output=list(scan.output))
    # The node's pruning interval: whole-file predicates carry None (mount
    # everything); a bounded interval licenses record-granular skipping.
    node_interval = None if interval == WHOLE_FILE else interval
    node_interval_column = None if node_interval is None else time_column
    branches: list[LogicalPlan] = []
    for uri in files_of_interest:
        if cache.contains(uri, interval):
            branches.append(
                CacheScan(
                    uri=uri,
                    table_name=scan.table_name,
                    alias=scan.alias,
                    output=list(scan.output),
                    predicate=predicate,
                    interval=node_interval,
                    interval_column=node_interval_column,
                )
            )
            if report is not None:
                report.cache_scans += 1
        else:
            branches.append(
                Mount(
                    uri=uri,
                    table_name=scan.table_name,
                    alias=scan.alias,
                    output=list(scan.output),
                    predicate=predicate,
                    interval=node_interval,
                    interval_column=node_interval_column,
                )
            )
            if report is not None:
                report.mounts += 1
    return UnionAll(branches, declared_output=list(scan.output))


def apply_ali_rewrite(
    qs: LogicalPlan,
    files_by_alias: dict[str, list[str]],
    cache: IngestionCache,
    time_column: str = "sample_time",
    report: Optional[RewriteReport] = None,
) -> LogicalPlan:
    """Rewrite every actual scan in ``Qs`` whose alias has a files-of-interest
    entry. ``Select(Scan)`` shapes fuse their selection into the branches."""

    def rewrite(node: LogicalPlan) -> LogicalPlan:
        if isinstance(node, Select) and isinstance(node.child, Scan):
            scan = node.child
            if scan.alias in files_by_alias:
                uri_key = f"{scan.alias}.uri"
                files = uris_from_uri_predicate(
                    node.predicate, uri_key, files_by_alias[scan.alias]
                )
                if report is not None:
                    report.pruned_by_uri_predicate += (
                        len(files_by_alias[scan.alias]) - len(files)
                    )
                return rewrite_actual_scan(
                    scan, node.predicate, files, cache, time_column, report
                )
        if isinstance(node, Scan) and node.alias in files_by_alias:
            return rewrite_actual_scan(
                node, None, files_by_alias[node.alias], cache, time_column, report
            )
        children = node.children()
        if not children:
            return node
        return node.with_children([rewrite(child) for child in children])

    return rewrite(qs)
