"""Persistent metadata store: derived state that survives the session.

The paper's stage-1/stage-2 split makes the metadata pass the price of
admission — every fresh session walks every file's headers before the first
query can plan. DiNoDB's observation (PAPERS.md) is that the products of
that walk (positional maps, time hulls, statistics) *are metadata* and can
be persisted as such; NoDB adds that such structures should be refined by
the queries that use them, not rebuilt from scratch. This module is the
persistence half: a versioned JSON sidecar stored next to the repository
holding, per URI,

* the file's ``(st_mtime_ns, st_size)`` signature at extraction time,
* its ``F`` metadata row (time hull, record/sample counts, byte size),
* its ``R`` record rows **including the record byte map** — the offsets and
  lengths that make PR 4's selective mounting possible without re-walking
  headers,

plus the table row-counts that seed the cost-based planner's
:class:`~repro.db.stats.StatisticsCatalog`.

Correctness is signature-gated: :meth:`MetadataStore.lookup` returns stored
rows only when the caller's freshly-stat'ed signature matches the one
recorded at extraction time; any drift (or a corrupt, truncated or
version-skewed sidecar) degrades to live ingest — the store can make a cold
open cheaper, never wronger.

The sidecar is read through :func:`~repro.mseed.iohooks.open_volume` with a
``metastore:`` URI, so the deterministic fault harness can inject short
reads and I/O errors into loads exactly as it does for repository files.
Writes go to a temp file renamed into place, so a crashed save leaves the
previous sidecar intact. All in-memory state is lock-guarded (sessions may
save from one thread while another records); file I/O happens outside the
lock — serialization snapshots under the lock, the write itself does not
block other threads.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .. import _sync
from ..db.stats import FileStatistics, StatisticsCatalog
from ..ingest.formats import FileMetaRow, RecordMetaRow
from ..mseed.iohooks import open_volume

__all__ = [
    "METASTORE_BASENAME",
    "METASTORE_VERSION",
    "MetadataStore",
    "MetastoreStats",
    "StoredFileState",
]

#: Bump on any incompatible change to the sidecar layout. A mismatched
#: version is treated exactly like a corrupt sidecar: discard and re-ingest.
METASTORE_VERSION = 1

#: Default sidecar name inside the repository root. The leading dot keeps it
#: out of suffix-filtered repository walks (``*.xseed`` etc. never match).
METASTORE_BASENAME = ".repro-metastore.json"


@dataclass
class MetastoreStats:
    hits: int = 0  # lookups served from stored state
    misses: int = 0  # URIs the store had never seen
    stale: int = 0  # URIs whose on-disk signature drifted since extraction
    corrupt_loads: int = 0  # sidecar unreadable/unparsable → clean reset
    version_mismatches: int = 0  # sidecar from another layout version
    loaded_files: int = 0  # per-URI states read by the last successful load
    saved_files: int = 0  # per-URI states written by the last save
    saved_bytes: int = 0  # sidecar size written by the last save


@dataclass(frozen=True)
class StoredFileState:
    """Everything the metadata pass learned about one file, signed."""

    signature: tuple[int, int]  # (st_mtime_ns, st_size) at extraction time
    file_row: FileMetaRow
    record_rows: tuple[RecordMetaRow, ...]


def _encode_file(state: StoredFileState) -> dict[str, object]:
    f = state.file_row
    return {
        "signature": list(state.signature),
        # Positional arrays, not objects: the record list dominates sidecar
        # size (one entry per record), so field names are paid once here in
        # code rather than once per record on disk.
        "file": [
            f.network,
            f.station,
            f.location,
            f.channel,
            f.start_time,
            f.end_time,
            f.nrecords,
            f.nsamples,
            f.size_bytes,
        ],
        "records": [
            [
                r.record_id,
                r.start_time,
                r.end_time,
                r.sample_rate,
                r.nsamples,
                r.byte_offset,
                r.byte_length,
            ]
            for r in state.record_rows
        ],
    }


def _decode_file(uri: str, payload: dict[str, object]) -> StoredFileState:
    """Rebuild one URI's state; any malformed field raises (caught by load)."""
    sig_raw = payload["signature"]
    if not isinstance(sig_raw, list) or len(sig_raw) != 2:
        raise ValueError(f"bad signature for {uri}")
    signature = (int(sig_raw[0]), int(sig_raw[1]))
    f = payload["file"]
    if not isinstance(f, list) or len(f) != 9:
        raise ValueError(f"bad file row for {uri}")
    file_row = FileMetaRow(
        uri=uri,
        network=str(f[0]),
        station=str(f[1]),
        location=str(f[2]),
        channel=str(f[3]),
        start_time=int(f[4]),
        end_time=int(f[5]),
        nrecords=int(f[6]),
        nsamples=int(f[7]),
        size_bytes=int(f[8]),
    )
    records_raw = payload["records"]
    if not isinstance(records_raw, list):
        raise ValueError(f"bad record list for {uri}")
    record_rows = []
    for r in records_raw:
        if not isinstance(r, list) or len(r) != 7:
            raise ValueError(f"bad record row for {uri}")
        record_rows.append(
            RecordMetaRow(
                uri=uri,
                record_id=int(r[0]),
                start_time=int(r[1]),
                end_time=int(r[2]),
                sample_rate=float(r[3]),
                nsamples=int(r[4]),
                byte_offset=int(r[5]),
                byte_length=int(r[6]),
            )
        )
    return StoredFileState(
        signature=signature, file_row=file_row, record_rows=tuple(record_rows)
    )


@_sync.guarded
class MetadataStore:
    """The on-disk sidecar plus its in-memory image.

    Lifecycle: :meth:`load` at open (tolerant of every failure mode),
    :meth:`lookup` during the metadata pass (signature-gated),
    :meth:`record` for every freshly-extracted file, :meth:`save` once the
    pass completes. :meth:`statistics` rebuilds the planner's catalog from
    stored state alone, so a warm session costs one stat() per file.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.stats = MetastoreStats()  # guarded-by: _lock
        self._files: dict[str, StoredFileState] = {}  # guarded-by: _lock
        self._table_rows: dict[str, int] = {}  # guarded-by: _lock
        self._lock = _sync.create_rlock("MetadataStore._lock")

    @classmethod
    def for_repository(cls, root: str | Path) -> "MetadataStore":
        """The store at the conventional sidecar path inside ``root``."""
        return cls(Path(root) / METASTORE_BASENAME)

    # -- persistence -----------------------------------------------------------

    def load(self) -> int:
        """Read the sidecar; returns the number of per-URI states loaded.

        Every failure mode is absorbed: a missing sidecar is a clean cold
        start, a corrupt/truncated/short-read sidecar or a version mismatch
        resets to empty (counted separately) — the caller always proceeds,
        at worst with live ingest for everything.
        """
        # File I/O deliberately happens outside the lock (reads can be slow
        # and faulted); only the final state swap is locked.
        raw: Optional[bytes] = None
        try:
            with open_volume(self.path, f"metastore:{self.path.name}") as handle:
                raw = handle.read()
        except FileNotFoundError:
            with self._lock:
                self._files = {}
                self._table_rows = {}
                self.stats.loaded_files = 0
            return 0
        files: dict[str, StoredFileState] = {}
        table_rows: dict[str, int] = {}
        version_skew = False
        try:
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("sidecar root is not an object")
            if payload.get("version") != METASTORE_VERSION:
                version_skew = True
            else:
                files_raw = payload.get("files", {})
                if not isinstance(files_raw, dict):
                    raise ValueError("files section is not an object")
                for uri, state_raw in files_raw.items():
                    if not isinstance(state_raw, dict):
                        raise ValueError(f"bad state for {uri}")
                    files[str(uri)] = _decode_file(str(uri), state_raw)
                rows_raw = payload.get("table_rows", {})
                if not isinstance(rows_raw, dict):
                    raise ValueError("table_rows section is not an object")
                table_rows = {str(k): int(v) for k, v in rows_raw.items()}
        except (OSError, ValueError, KeyError, TypeError):
            with self._lock:
                self._files = {}
                self._table_rows = {}
                self.stats.corrupt_loads += 1
                self.stats.loaded_files = 0
            return 0
        with self._lock:
            if version_skew:
                self._files = {}
                self._table_rows = {}
                self.stats.version_mismatches += 1
                self.stats.loaded_files = 0
                return 0
            self._files = files
            self._table_rows = table_rows
            self.stats.loaded_files = len(files)
            return len(files)

    def save(self) -> int:
        """Write the sidecar atomically; returns the byte count written.

        Serialization snapshots the state under the lock; the actual write
        goes to ``<path>.tmp`` and is renamed into place, so a crash mid-save
        leaves the previous sidecar readable.
        """
        with self._lock:
            payload = {
                "version": METASTORE_VERSION,
                "files": {
                    uri: _encode_file(state)
                    for uri, state in self._files.items()
                },
                "table_rows": dict(self._table_rows),
            }
            saved_files = len(self._files)
        # Encode + write outside the lock: the snapshot above is immutable.
        encoded = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as handle:
            handle.write(encoded)
        os.replace(tmp, self.path)
        with self._lock:
            self.stats.saved_files = saved_files
            self.stats.saved_bytes = len(encoded)
        return len(encoded)

    # -- per-file state --------------------------------------------------------

    def lookup(
        self, uri: str, signature: tuple[int, int]
    ) -> Optional[StoredFileState]:
        """Stored state for ``uri`` iff its signature still matches.

        ``signature`` is the caller's *fresh* stat of the file; a mismatch
        means the file changed since extraction, so the stored rows are
        wrong and the caller must ingest live (counted as ``stale``).
        """
        with self._lock:
            state = self._files.get(uri)
            if state is None:
                self.stats.misses += 1
                return None
            if state.signature != signature:
                self.stats.stale += 1
                return None
            self.stats.hits += 1
            return state

    def record(
        self,
        uri: str,
        signature: tuple[int, int],
        file_row: FileMetaRow,
        record_rows: list[RecordMetaRow],
    ) -> None:
        """Remember one freshly-extracted file's metadata, signed."""
        state = StoredFileState(
            signature=signature,
            file_row=file_row,
            record_rows=tuple(record_rows),
        )
        with self._lock:
            self._files[uri] = state

    def record_table_rows(self, table_rows: dict[str, int]) -> None:
        """Remember table cardinalities for the planner's statistics."""
        with self._lock:
            self._table_rows.update(table_rows)

    def forget(self, uri: str) -> None:
        with self._lock:
            self._files.pop(uri, None)

    # -- derived state ---------------------------------------------------------

    def statistics(self) -> StatisticsCatalog:
        """A planner statistics catalog rebuilt purely from stored state."""
        with self._lock:
            files = {
                uri: FileStatistics(
                    uri=uri,
                    start_time=state.file_row.start_time,
                    end_time=state.file_row.end_time,
                    nrecords=state.file_row.nrecords,
                    size_bytes=state.file_row.size_bytes,
                )
                for uri, state in self._files.items()
            }
            return StatisticsCatalog(
                table_rows=dict(self._table_rows), files=files
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._files)
