"""On-disk persistence for databases.

Layout of a database directory::

    catalog.json                     # schemas, kinds, keys, index inventory
    <table>.<column>.bin             # raw little-endian numpy vector
    <table>.<column>.dict.json       # dictionary for string columns

Indexes are persisted as their definition only and rebuilt on load; the
rebuild cost is charged to the loader, mirroring how the paper charges index
construction to eager ingestion.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .catalog import Catalog
from .column import Column, StringDictionary
from .errors import StorageError
from .index import HashIndex
from .schema import TableSchema
from .table import ColumnBatch, Table
from .types import DataType

_CATALOG_FILE = "catalog.json"


def save_catalog(catalog: Catalog, directory: str | Path) -> int:
    """Write every table (and index definitions) under ``directory``.

    Returns the total bytes written (the on-disk database size).
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    total = 0
    manifest: dict = {"tables": [], "indexes": []}
    for table in catalog.tables():
        manifest["tables"].append(table.schema.to_dict())
        for col_def, column in zip(table.schema.columns, table.batch.columns):
            stem = f"{table.schema.name.lower()}.{col_def.name.lower()}"
            data_path = root / f"{stem}.bin"
            data_path.write_bytes(column.values.tobytes())
            total += data_path.stat().st_size
            if column.dictionary is not None:
                dict_path = root / f"{stem}.dict.json"
                dict_path.write_text(json.dumps(column.dictionary.values))
                total += dict_path.stat().st_size
    for (table_name, columns) in catalog.indexes():
        manifest["indexes"].append({"table": table_name, "columns": list(columns)})
    catalog_path = root / _CATALOG_FILE
    catalog_path.write_text(json.dumps(manifest, indent=1))
    total += catalog_path.stat().st_size
    return total


def load_catalog(directory: str | Path) -> Catalog:
    """Read a database directory back into a fresh catalog."""
    root = Path(directory)
    catalog_path = root / _CATALOG_FILE
    if not catalog_path.exists():
        raise StorageError(f"no catalog at {catalog_path}")
    manifest = json.loads(catalog_path.read_text())
    catalog = Catalog()
    for table_data in manifest["tables"]:
        schema = TableSchema.from_dict(table_data)
        columns = []
        for col_def in schema.columns:
            stem = f"{schema.name.lower()}.{col_def.name.lower()}"
            data_path = root / f"{stem}.bin"
            if not data_path.exists():
                raise StorageError(f"missing column file {data_path}")
            values = np.frombuffer(
                data_path.read_bytes(), dtype=col_def.dtype.numpy_dtype
            ).copy()
            dictionary = None
            if col_def.dtype is DataType.STRING:
                dict_path = root / f"{stem}.dict.json"
                if not dict_path.exists():
                    raise StorageError(f"missing dictionary file {dict_path}")
                dictionary = StringDictionary(json.loads(dict_path.read_text()))
            columns.append(Column(col_def.dtype, values, dictionary))
        batch = ColumnBatch(schema.column_names, columns)
        catalog.register_table(Table(schema, batch))
    for index_def in manifest["indexes"]:
        table = catalog.table(index_def["table"])
        columns = tuple(index_def["columns"])
        key_columns = [table.batch.column(c) for c in columns]
        index = HashIndex.build(index_def["table"], columns, key_columns)
        catalog.register_index(index_def["table"], columns, index)
    return catalog


def database_disk_bytes(directory: str | Path) -> int:
    """Total bytes of a saved database directory."""
    root = Path(directory)
    return sum(p.stat().st_size for p in root.glob("*") if p.is_file())
