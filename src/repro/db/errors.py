"""Error hierarchy for the repro database engine.

Every error raised on a user-visible path derives from :class:`DatabaseError`
so that callers can catch one type. Finer-grained subclasses distinguish the
layer that failed (parsing, binding, planning, execution, storage, catalog).
"""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for all errors raised by the repro database engine."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so front-ends can point at the problem.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class BindError(DatabaseError):
    """A name in the query could not be resolved against the catalog."""


class TypeError_(DatabaseError):
    """An expression combines values of incompatible types."""


class PlanError(DatabaseError):
    """The logical plan is malformed or cannot be optimized/decomposed."""


class ExecutionError(DatabaseError):
    """A physical operator failed while producing its result."""


class CatalogError(DatabaseError):
    """Catalog inconsistency: unknown/duplicate table, bad key definition."""


class StorageError(DatabaseError):
    """On-disk state is missing or corrupt."""


class IngestError(DatabaseError):
    """A repository file could not be extracted, transformed, or mounted."""


class QueryAbortedError(DatabaseError):
    """The explorer (or a destiny policy) aborted the query at a breakpoint."""

    def __init__(self, message: str, breakpoint_info: object | None = None) -> None:
        super().__init__(message)
        self.breakpoint_info = breakpoint_info
