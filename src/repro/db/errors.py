"""Error hierarchy for the repro database engine.

Every error raised on a user-visible path derives from :class:`DatabaseError`
so that callers can catch one type. Finer-grained subclasses distinguish the
layer that failed (parsing, binding, planning, execution, storage, catalog).
"""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for all errors raised by the repro database engine."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so front-ends can point at the problem.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class BindError(DatabaseError):
    """A name in the query could not be resolved against the catalog."""


class TypeError_(DatabaseError):
    """An expression combines values of incompatible types."""


class PlanError(DatabaseError):
    """The logical plan is malformed or cannot be optimized/decomposed."""


class PlanInvariantError(PlanError):
    """A plan pass produced (or received) a plan violating an invariant.

    Raised by the plan verifier (:mod:`repro.db.plan.verify` and
    :mod:`repro.core.verify`). Carries the name of the pass whose output was
    being checked and the offending plan node, so a bad rewrite is caught at
    rewrite time with a precise location instead of surfacing as a wrong
    answer deep in stage 2.
    """

    def __init__(
        self,
        pass_name: str,
        message: str,
        node: object | None = None,
    ) -> None:
        detail = f"[{pass_name}] {message}"
        if node is not None:
            label = getattr(node, "label", None)
            where = label() if callable(label) else type(node).__name__
            detail = f"{detail} (at {where})"
        super().__init__(detail)
        self.pass_name = pass_name
        self.node = node


class ExecutionError(DatabaseError):
    """A physical operator failed while producing its result."""


class CatalogError(DatabaseError):
    """Catalog inconsistency: unknown/duplicate table, bad key definition."""


class StorageError(DatabaseError):
    """On-disk state is missing or corrupt."""


class IngestError(DatabaseError):
    """A repository file could not be extracted, transformed, or mounted."""


class FileIngestError(IngestError):
    """An ingest failure attributable to one repository file.

    The taxonomy the resilient-mounting path relies on: every error carries
    the offending ``uri``, the byte ``offset`` where extraction failed (when
    known), and the low-level ``cause``. ``transient`` marks failures worth
    retrying before the file is quarantined (e.g. a concurrent rewrite).
    ``mount_uri`` mirrors ``uri`` — it is the attribute the mount pool
    annotates onto foreign exceptions, so callers can read one name for
    both taxonomy and wrapped errors.
    """

    def __init__(
        self,
        message: str,
        *,
        uri: str | None = None,
        offset: int | None = None,
        cause: BaseException | None = None,
        transient: bool = False,
    ) -> None:
        detail = f"{uri}: {message}" if uri else message
        if offset is not None:
            detail = f"{detail} (byte offset {offset})"
        super().__init__(detail)
        self.message = message
        self.uri = uri
        self.offset = offset
        self.cause = cause
        self.transient = transient
        if uri is not None:
            self.mount_uri = uri

    def with_uri(self, uri: str) -> "FileIngestError":
        """A copy of this error annotated with the offending file's URI.

        Extraction layers that only see raw bytes raise without context; the
        format extractor (which knows the URI) re-raises through this.
        """
        if self.uri is not None:
            return self
        return type(self)(
            self.message,
            uri=uri,
            offset=self.offset,
            cause=self.cause if self.cause is not None else self,
            transient=self.transient,
        )


class CorruptFileError(FileIngestError):
    """The file's bytes do not form a valid payload (bad magic, malformed
    lengths, failed integrity checks, unparseable content)."""


class TruncatedFileError(FileIngestError):
    """The file ends before the content its headers promise."""


class StaleFileError(FileIngestError):
    """The file changed on disk while it was being read or after it was
    cached. Transient by default: re-reading observes the new version."""

    def __init__(self, message: str, **kwargs: object) -> None:
        kwargs.setdefault("transient", True)
        super().__init__(message, **kwargs)  # type: ignore[arg-type]


class QueryAbortedError(DatabaseError):
    """The explorer (or a destiny policy) aborted the query at a breakpoint."""

    def __init__(self, message: str, breakpoint_info: object | None = None) -> None:
        super().__init__(message)
        self.breakpoint_info = breakpoint_info


class QueryInterruptedError(DatabaseError):
    """A running query was stopped by the governor mid-flight.

    Base of the two interruption flavours — caller-initiated cancellation
    and budget exhaustion — so front-ends can catch "the query did not run
    to completion, but nothing is broken" as one type. Deliberately *not*
    an :class:`IngestError`: interruptions must pass straight through the
    skip-and-report machinery instead of quarantining innocent files.
    """


class QueryCancelledError(QueryInterruptedError):
    """The caller cancelled the query through its cancellation token."""


class QueryBudgetExceeded(QueryInterruptedError):
    """A :class:`~repro.core.governor.QueryBudget` limit was exceeded.

    Raised under the ``on_budget="raise"`` policy (wall deadline, mounted
    bytes, or decoded records). ``truncation`` carries the structured
    :class:`~repro.core.governor.TruncationReport` when the governor had
    one at raise time.
    """

    def __init__(self, message: str, truncation: object | None = None) -> None:
        super().__init__(message)
        self.truncation = truncation


class QueryShedError(DatabaseError):
    """The query service refused to admit a query (per-tenant admission).

    Raised *before* any work happens — at submission time — when the
    tenant's queue depth is full or its aggregate mount-byte ledger is
    exhausted. Shedding at admission is what keeps one greedy tenant from
    queueing unbounded work against the shared scheduler; the caller can
    back off and resubmit. ``tenant`` names the tenant whose policy shed
    the query.
    """

    def __init__(self, message: str, tenant: str | None = None) -> None:
        if tenant is not None:
            message = f"tenant {tenant!r}: {message}"
        super().__init__(message)
        self.tenant = tenant


class CircuitOpenError(FileIngestError):
    """The cross-query circuit breaker refused to touch this file.

    Not transient: the whole point of the open state is to spend *zero*
    retry ladder on a URI that has repeatedly failed across queries. The
    breaker closes again via a half-open probe after its cooldown.

    ``endpoint`` is set when the refusing circuit guards a remote endpoint
    rather than a single file — the per-source attribution a federated
    :class:`~repro.core.mounting.MountFailureReport` carries.
    """

    def __init__(self, message: str, **kwargs: object) -> None:
        endpoint = kwargs.pop("endpoint", None)
        super().__init__(message, **kwargs)  # type: ignore[arg-type]
        self.endpoint = endpoint


class RemoteTransportError(FileIngestError):
    """A remote request failed in transit (refused, reset, timed out).

    Transient by default — connection churn, packet loss, and latency-model
    timeouts are exactly what the resilient transport's retry ladder and the
    mount service's own retries exist to absorb. ``endpoint`` names the
    remote endpoint for per-source degradation reporting.
    """

    def __init__(self, message: str, **kwargs: object) -> None:
        endpoint = kwargs.pop("endpoint", None)
        kwargs.setdefault("transient", True)
        super().__init__(message, **kwargs)  # type: ignore[arg-type]
        self.endpoint = endpoint


class RemoteObjectMissingError(RemoteTransportError):
    """The endpoint answered, but the requested object does not exist.

    *Not* transient: a missing object is a fact about the repository, not
    about the network — retrying cannot conjure it. (The remote analogue of
    a local ``FileNotFoundError`` at resolution time.)
    """

    def __init__(self, message: str, **kwargs: object) -> None:
        kwargs["transient"] = False
        super().__init__(message, **kwargs)
