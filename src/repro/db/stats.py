"""Statistics catalog: cardinality and per-file statistics for cost-based
optimization.

Two kinds of statistics feed the optimizer:

* **per-table row counts**, read straight off the catalog's loaded batches —
  these drive :func:`~repro.db.plan.rewrite.cost_based_join_order`'s choice
  of hash-join build side via :meth:`StatisticsCatalog.estimate_rows`;
* **per-file statistics** (time hull, record count, byte size), sourced from
  the already-ingested ``F`` metadata table — these drive Top-N early
  termination (a union branch whose time hull cannot beat the current
  heap threshold is never mounted) and the mount-vs-seek access-path choice
  (a request interval covering the whole file's span makes the seek ladder
  pure overhead).

Cardinality estimation uses the classic System R selectivity constants: no
histograms are kept, and the point is not precision — only that the relative
ordering of join inputs is usually right, and that every estimate is cheap
enough to run at compile time on every query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .catalog import Catalog
from .expr import BoolOp, Comparison, Expr, conjuncts
from .plan.logical import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Scan,
    Select,
    SemiJoin,
    TopN,
    UnionAll,
)

# System R (Selinger et al. 1979) default selectivities.
EQ_SELECTIVITY = 0.1
RANGE_SELECTIVITY = 0.3
DEFAULT_SELECTIVITY = 0.5

#: Assumed cardinality for relations with no statistics (e.g. a table the
#: catalog has not loaded yet). Deliberately large: an unknown relation
#: should not be mistaken for a small build side.
DEFAULT_TABLE_ROWS = 1_000_000

_RANGE_OPS = ("<", "<=", ">", ">=")


@dataclass(frozen=True)
class FileStatistics:
    """Per-file statistics from one ``F`` metadata row."""

    uri: str
    start_time: int
    end_time: int
    nrecords: int
    size_bytes: int

    @property
    def span(self) -> tuple[int, int]:
        return (self.start_time, self.end_time)


@dataclass
class StatisticsCatalog:
    """A snapshot of table cardinalities and per-file statistics.

    Build one with :func:`collect_statistics`; it is a plain value object so
    callers control its lifetime (the two-stage executor rebuilds it when the
    ``F`` batch it was collected from is replaced by a metadata load).
    """

    table_rows: dict[str, int] = field(default_factory=dict)
    files: dict[str, FileStatistics] = field(default_factory=dict)
    default_rows: int = DEFAULT_TABLE_ROWS

    # -- per-file lookups -------------------------------------------------------

    def file_span(self, uri: str) -> Optional[tuple[int, int]]:
        """``(start_time, end_time)`` hull of a file, or None if unknown."""
        stats = self.files.get(uri)
        return stats.span if stats is not None else None

    def file_bytes(self, uri: str) -> Optional[int]:
        stats = self.files.get(uri)
        return stats.size_bytes if stats is not None else None

    # -- cardinality estimation ------------------------------------------------

    def estimate_rows(self, plan: LogicalPlan) -> float:
        """Estimated output cardinality of ``plan`` (never negative)."""
        if isinstance(plan, Scan):
            return float(
                self.table_rows.get(plan.table_name.lower(), self.default_rows)
            )
        if isinstance(plan, Select):
            return self.estimate_rows(plan.child) * _selectivity(plan.predicate)
        if isinstance(plan, Join):
            left = self.estimate_rows(plan.left)
            right = self.estimate_rows(plan.right)
            if plan.condition is None:
                return left * right
            # Equi-join with the larger side treated as the key domain.
            return left * right / max(left, right, 1.0)
        if isinstance(plan, (Limit, TopN)):
            return min(float(plan.count), self.estimate_rows(plan.children()[0]))
        if isinstance(plan, UnionAll):
            return sum(self.estimate_rows(child) for child in plan.inputs)
        if isinstance(plan, Aggregate):
            if not plan.groups:
                return 1.0
            return max(1.0, self.estimate_rows(plan.child) * 0.1)
        if isinstance(plan, SemiJoin):
            return self.estimate_rows(plan.child) * DEFAULT_SELECTIVITY
        if isinstance(plan, Distinct):
            return max(1.0, self.estimate_rows(plan.child) * 0.1)
        children = plan.children()
        if len(children) == 1:
            # Project, Sort, and other row-preserving unary nodes.
            return self.estimate_rows(children[0])
        if not children:
            # ResultScan and other leaves without statistics.
            return float(self.default_rows)
        return sum(self.estimate_rows(child) for child in children)


def _selectivity(predicate: Expr) -> float:
    """System R-style selectivity of a (possibly conjunctive) predicate."""
    parts = conjuncts(predicate)
    if len(parts) > 1:
        factor = 1.0
        for part in parts:
            factor *= _selectivity(part)
        return factor
    part = parts[0]
    if isinstance(part, Comparison):
        if part.op == "=":
            return EQ_SELECTIVITY
        if part.op in _RANGE_OPS:
            return RANGE_SELECTIVITY
        return DEFAULT_SELECTIVITY
    if isinstance(part, BoolOp) and part.op == "or":
        # Independence: sel(a OR b) = 1 - (1-sel(a))(1-sel(b)).
        miss = 1.0
        for operand in part.operands:
            miss *= 1.0 - _selectivity(operand)
        return min(1.0, max(0.0, 1.0 - miss))
    return DEFAULT_SELECTIVITY


def collect_statistics(
    catalog: Catalog, file_table: Optional[str] = None
) -> StatisticsCatalog:
    """Snapshot table row counts (and per-file statistics from ``file_table``).

    ``file_table`` names the metadata table holding one row per repository
    file with ``uri`` / ``start_time`` / ``end_time`` columns (the ingest
    pipeline's ``F``); ``nrecords`` and ``size_bytes`` are read when present.
    Missing tables or columns degrade to empty statistics, never errors —
    the optimizer must work on a catalog that has not ingested anything yet.
    """
    stats = StatisticsCatalog()
    for table in catalog.tables():
        stats.table_rows[table.schema.name.lower()] = table.batch.num_rows
    if file_table is None or not catalog.has_table(file_table):
        return stats
    batch = catalog.table(file_table).batch
    required = ("uri", "start_time", "end_time")
    if any(name not in batch.names for name in required):
        return stats
    uris = batch.column("uri").to_pylist()
    starts = batch.column("start_time").to_pylist()
    ends = batch.column("end_time").to_pylist()
    nrecords = (
        batch.column("nrecords").to_pylist()
        if "nrecords" in batch.names
        else [0] * len(uris)
    )
    sizes = (
        batch.column("size_bytes").to_pylist()
        if "size_bytes" in batch.names
        else [0] * len(uris)
    )
    for uri, start, end, nrec, size in zip(uris, starts, ends, nrecords, sizes):
        stats.files[uri] = FileStatistics(
            uri=uri,
            start_time=int(start),
            end_time=int(end),
            nrecords=int(nrec),
            size_bytes=int(size),
        )
    return stats
