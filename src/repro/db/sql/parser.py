"""Recursive-descent parser for the SQL subset.

Grammar (EBNF, informal):

    select    := SELECT [DISTINCT] items FROM from_clause
                 [WHERE expr] [GROUP BY exprs] [HAVING expr]
                 [ORDER BY order_items] [LIMIT number]
    items     := item ("," item)*
    item      := "*" | ident "." "*" | expr [[AS] ident]
    from      := table ([","] table | join)*
    join      := [INNER|CROSS] JOIN table [ON expr]
    table     := ident [[AS] ident]
    expr      := or ; or := and (OR and)* ; and := not (AND not)*
    not       := [NOT] predicate
    predicate := additive [cmp additive | [NOT] BETWEEN ... | [NOT] IN (...)]
    additive  := multiplicative (("+"|"-") multiplicative)*
    mult      := unary (("*"|"/"|"%") unary)*
    unary     := ["-"] primary
    primary   := literal | func "(" args ")" | column | "(" expr ")"
"""

from __future__ import annotations

from typing import Optional

from ..errors import SqlSyntaxError
from .ast import (
    EBetween,
    EBinary,
    EColumn,
    EFunc,
    EIn,
    ELiteral,
    ENode,
    EStar,
    ESubqueryIn,
    EUnary,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStmt,
    TableRef,
)
from .lexer import Token, TokenType, tokenize

AGGREGATE_FUNCTIONS = {"avg", "sum", "min", "max", "count"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _expect_keyword(self, name: str) -> Token:
        if not self._current.is_keyword(name):
            raise SqlSyntaxError(
                f"expected {name.upper()}, found {self._current.value!r}",
                self._current.position,
            )
        return self._advance()

    def _expect_punct(self, char: str) -> Token:
        if self._current.type is not TokenType.PUNCT or self._current.value != char:
            raise SqlSyntaxError(
                f"expected {char!r}, found {self._current.value!r}",
                self._current.position,
            )
        return self._advance()

    def _accept_keyword(self, *names: str) -> Optional[Token]:
        if self._current.is_keyword(*names):
            return self._advance()
        return None

    def _accept_punct(self, char: str) -> bool:
        if self._current.type is TokenType.PUNCT and self._current.value == char:
            self._advance()
            return True
        return False

    def _expect_ident(self) -> str:
        if self._current.type is not TokenType.IDENT:
            raise SqlSyntaxError(
                f"expected identifier, found {self._current.value!r}",
                self._current.position,
            )
        return str(self._advance().value)

    # -- statement ----------------------------------------------------------

    def parse_select(self, top_level: bool = True) -> SelectStmt:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct") is not None
        items = self._parse_select_items()
        self._expect_keyword("from")
        from_tables, joins = self._parse_from_clause()
        where = None
        if self._accept_keyword("where"):
            where = self.parse_expr()
        group_by: list[ENode] = []
        having = None
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.parse_expr())
            while self._accept_punct(","):
                group_by.append(self.parse_expr())
            if self._accept_keyword("having"):
                having = self.parse_expr()
        order_by: list[OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_punct(","):
                order_by.append(self._parse_order_item())
        limit = None
        if self._accept_keyword("limit"):
            # Accept a sign so `LIMIT -5` gets the typed error below rather
            # than a generic complaint about an unexpected `-` token.
            negative = (
                self._current.type is TokenType.OPERATOR
                and self._current.value == "-"
            )
            if negative:
                self._advance()
            token = self._advance()
            if token.type is not TokenType.NUMBER or not isinstance(token.value, int):
                raise SqlSyntaxError("LIMIT requires an integer", token.position)
            if negative:
                raise SqlSyntaxError(
                    "LIMIT must be a non-negative integer, got "
                    f"-{token.value}",
                    token.position,
                )
            # LIMIT 0 is legal: an empty result with the query's schema.
            limit = token.value
        if top_level and self._current.type is not TokenType.END:
            raise SqlSyntaxError(
                f"unexpected trailing input {self._current.value!r}",
                self._current.position,
            )
        return SelectStmt(
            items=items,
            from_tables=from_tables,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_items(self) -> list[SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self._current.type is TokenType.PUNCT and self._current.value == "*":
            self._advance()
            return SelectItem(EStar())
        # alias.* requires two-token lookahead
        if (
            self._current.type is TokenType.IDENT
            and self._peek_is_punct(1, ".")
            and self._peek_is_punct(2, "*")
        ):
            table = self._expect_ident()
            self._expect_punct(".")
            self._expect_punct("*")
            return SelectItem(EStar(table))
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._current.type is TokenType.IDENT:
            alias = self._expect_ident()
        return SelectItem(expr, alias)

    def _peek_is_punct(self, offset: int, char: str) -> bool:
        idx = self._pos + offset
        if idx >= len(self._tokens):
            return False
        token = self._tokens[idx]
        return token.type is TokenType.PUNCT and token.value == char

    def _parse_from_clause(self) -> tuple[list[TableRef], list[JoinClause]]:
        tables = [self._parse_table_ref()]
        joins: list[JoinClause] = []
        while True:
            if self._accept_punct(","):
                tables.append(self._parse_table_ref())
                continue
            if self._current.is_keyword("inner", "cross", "join"):
                cross = self._accept_keyword("cross") is not None
                self._accept_keyword("inner")
                self._expect_keyword("join")
                table = self._parse_table_ref()
                condition = None
                if not cross and self._accept_keyword("on"):
                    condition = self.parse_expr()
                joins.append(JoinClause(table, condition))
                continue
            break
        return tables, joins

    def _parse_table_ref(self) -> TableRef:
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._current.type is TokenType.IDENT:
            alias = self._expect_ident()
        return TableRef(name, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self._accept_keyword("desc"):
            ascending = False
        else:
            self._accept_keyword("asc")
        return OrderItem(expr, ascending)

    # -- expressions -------------------------------------------------------

    def parse_expr(self) -> ENode:
        return self._parse_or()

    def _parse_or(self) -> ENode:
        left = self._parse_and()
        while self._accept_keyword("or"):
            right = self._parse_and()
            left = EBinary("or", left, right)
        return left

    def _parse_and(self) -> ENode:
        left = self._parse_not()
        while self._accept_keyword("and"):
            right = self._parse_not()
            left = EBinary("and", left, right)
        return left

    def _parse_not(self) -> ENode:
        if self._accept_keyword("not"):
            return EUnary("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ENode:
        left = self._parse_additive()
        if self._current.type is TokenType.OPERATOR and self._current.value in (
            "=", "<>", "<", "<=", ">", ">=",
        ):
            op = str(self._advance().value)
            right = self._parse_additive()
            return EBinary(op, left, right)
        negated = False
        if self._current.is_keyword("not"):
            # NOT BETWEEN / NOT IN
            nxt = self._tokens[self._pos + 1]
            if nxt.is_keyword("between", "in"):
                self._advance()
                negated = True
        if self._accept_keyword("between"):
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return EBetween(left, low, high, negated)
        if self._accept_keyword("in"):
            self._expect_punct("(")
            if self._current.is_keyword("select"):
                subquery = self.parse_select(top_level=False)
                self._expect_punct(")")
                return ESubqueryIn(left, subquery, negated)
            items = [self.parse_expr()]
            while self._accept_punct(","):
                items.append(self.parse_expr())
            self._expect_punct(")")
            return EIn(left, tuple(items), negated)
        if negated:
            raise SqlSyntaxError(
                "NOT must be followed by BETWEEN or IN here",
                self._current.position,
            )
        return left

    def _parse_additive(self) -> ENode:
        left = self._parse_multiplicative()
        while self._current.type is TokenType.OPERATOR and self._current.value in ("+", "-"):
            op = str(self._advance().value)
            right = self._parse_multiplicative()
            left = EBinary(op, left, right)
        return left

    def _parse_multiplicative(self) -> ENode:
        left = self._parse_unary()
        while (
            self._current.type is TokenType.OPERATOR and self._current.value in ("/", "%")
        ) or (self._current.type is TokenType.PUNCT and self._current.value == "*"):
            op = str(self._advance().value)
            right = self._parse_unary()
            left = EBinary(op, left, right)
        return left

    def _parse_unary(self) -> ENode:
        if self._current.type is TokenType.OPERATOR and self._current.value == "-":
            self._advance()
            return EUnary("-", self._parse_unary())
        if self._current.type is TokenType.OPERATOR and self._current.value == "+":
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ENode:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return ELiteral(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return ELiteral(token.value)
        if token.is_keyword("true"):
            self._advance()
            return ELiteral(True)
        if token.is_keyword("false"):
            self._advance()
            return ELiteral(False)
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            inner = self.parse_expr()
            self._expect_punct(")")
            return inner
        if token.type is TokenType.IDENT:
            name = self._expect_ident()
            if self._accept_punct("("):
                return self._parse_call(name)
            if self._accept_punct("."):
                column = self._expect_ident()
                return EColumn(name, column)
            return EColumn(None, name)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r}", token.position
        )

    def _parse_call(self, name: str) -> ENode:
        if self._current.type is TokenType.PUNCT and self._current.value == "*":
            self._advance()
            self._expect_punct(")")
            if name.lower() != "count":
                raise SqlSyntaxError(f"{name}(*) is only valid for COUNT")
            return EFunc("count", (), star=True)
        distinct = self._accept_keyword("distinct") is not None
        args = [self.parse_expr()]
        while self._accept_punct(","):
            args.append(self.parse_expr())
        self._expect_punct(")")
        return EFunc(name.lower(), tuple(args), distinct=distinct)


def parse_sql(text: str) -> SelectStmt:
    """Parse one SELECT statement; raises :class:`SqlSyntaxError` otherwise."""
    return _Parser(tokenize(text)).parse_select()
