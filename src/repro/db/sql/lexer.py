"""Hand-written SQL lexer.

Produces a flat token stream; the parser consumes it with one token of
lookahead. Keywords are case-insensitive; identifiers keep their spelling but
compare case-insensitively downstream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from ..errors import SqlSyntaxError

KEYWORDS = {
    "select", "distinct", "from", "join", "inner", "cross", "on", "where",
    "and", "or", "not", "group", "by", "having", "order", "asc", "desc",
    "limit", "as", "between", "in", "true", "false", "is", "null",
}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"  # ( ) , . *
    END = "end"


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: Any
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names


_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "/", "%")
_PUNCT = "(),.*"


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):  # line comment
            end = text.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # escaped quote
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(text[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(parts), i))
            i = j + 1
            continue
        # ASCII digits only: str.isdigit() accepts Unicode digits (e.g. '¹')
        # that int()/float() reject.
        ascii_digits = "0123456789"
        if ch in ascii_digits or (
            ch == "." and i + 1 < n and text[i + 1] in ascii_digits
        ):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c in ascii_digits:
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    # Only an exponent when digits actually follow.
                    k = j + 1
                    if k < n and text[k] in "+-":
                        k += 1
                    if k < n and text[k] in ascii_digits:
                        seen_exp = True
                        j = k
                    else:
                        break
                else:
                    break
            raw = text[i:j]
            value: Any
            try:
                if seen_dot or seen_exp:
                    value = float(raw)
                else:
                    value = int(raw)
            except ValueError as exc:  # pragma: no cover - defensive
                raise SqlSyntaxError(f"bad numeric literal {raw!r}", i) from exc
            tokens.append(Token(TokenType.NUMBER, value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, i))
            else:
                tokens.append(Token(TokenType.IDENT, word, i))
            i = j
            continue
        if ch == '"':  # quoted identifier
            end = text.find('"', i + 1)
            if end == -1:
                raise SqlSyntaxError("unterminated quoted identifier", i)
            tokens.append(Token(TokenType.IDENT, text[i + 1:end], i))
            i = end + 1
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, i):
                canonical = "<>" if op == "!=" else op
                tokens.append(Token(TokenType.OPERATOR, canonical, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        if ch == ";":
            i += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.END, None, n))
    return tokens
