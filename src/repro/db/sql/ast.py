"""Untyped SQL AST produced by the parser and consumed by the binder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


# -- expressions -----------------------------------------------------------


class ENode:
    """Base class for untyped expression AST nodes."""


@dataclass(frozen=True)
class EColumn(ENode):
    """A (possibly qualified) column reference: ``D.sample_value`` or ``uri``."""

    table: Optional[str]
    name: str


@dataclass(frozen=True)
class ELiteral(ENode):
    """A literal: number, string, or boolean."""

    value: Any


@dataclass(frozen=True)
class EBinary(ENode):
    """Binary operator: comparisons, AND/OR, arithmetic."""

    op: str
    left: ENode
    right: ENode


@dataclass(frozen=True)
class EUnary(ENode):
    """Unary operator: NOT or unary minus."""

    op: str
    operand: ENode


@dataclass(frozen=True)
class EFunc(ENode):
    """Function call — aggregate or scalar. ``COUNT(*)`` sets ``star``."""

    name: str
    args: tuple[ENode, ...]
    star: bool = False
    distinct: bool = False


@dataclass(frozen=True)
class EBetween(ENode):
    """``expr BETWEEN low AND high`` (inclusive)."""

    operand: ENode
    low: ENode
    high: ENode
    negated: bool = False


@dataclass(frozen=True)
class EIn(ENode):
    """``expr IN (v1, v2, ...)`` over literal lists."""

    operand: ENode
    items: tuple[ENode, ...]
    negated: bool = False


@dataclass(frozen=True)
class EStar(ENode):
    """``*`` or ``alias.*`` in a select list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class ESubqueryIn(ENode):
    """``expr [NOT] IN (SELECT ...)`` — an uncorrelated subquery membership
    test, lowered by the binder to a semi-join."""

    operand: ENode
    subquery: "SelectStmt"
    negated: bool = False


# -- statement structure -----------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expr: ENode
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A base table reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return (self.alias or self.name).lower()


@dataclass(frozen=True)
class JoinClause:
    """``JOIN <table> ON <cond>`` attached to the preceding from-item."""

    table: TableRef
    condition: Optional[ENode]  # None for CROSS JOIN


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: ENode
    ascending: bool = True


@dataclass
class SelectStmt:
    """A parsed SELECT statement."""

    items: list[SelectItem]
    from_tables: list[TableRef]
    joins: list[JoinClause] = field(default_factory=list)
    where: Optional[ENode] = None
    group_by: list[ENode] = field(default_factory=list)
    having: Optional[ENode] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    distinct: bool = False
