"""SQL front-end: lexer, untyped AST, and recursive-descent parser."""

from .ast import (
    EBetween,
    EBinary,
    EColumn,
    EFunc,
    EIn,
    ELiteral,
    EStar,
    EUnary,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStmt,
    TableRef,
)
from .parser import parse_sql

__all__ = [
    "parse_sql",
    "SelectStmt",
    "SelectItem",
    "TableRef",
    "JoinClause",
    "OrderItem",
    "EColumn",
    "ELiteral",
    "EBinary",
    "EUnary",
    "EFunc",
    "EBetween",
    "EIn",
    "EStar",
]
