"""Column type system for the repro engine.

The engine is columnar: every value in a column shares one of the types below.
Timestamps are stored as int64 microseconds since the Unix epoch (UTC), which
mirrors how analytical column stores materialize them and makes range
predicates plain integer comparisons.
"""

from __future__ import annotations

import datetime as _dt
import enum
import re

import numpy as np

from .errors import TypeError_


class DataType(enum.Enum):
    """The value types a column may hold."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    TIMESTAMP = "timestamp"  # int64 microseconds since epoch, UTC
    BOOL = "bool"

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype used for the physical vector of this type.

        STRING columns are dictionary encoded: the physical vector holds
        int32 codes into a per-column dictionary, so their numpy dtype is
        int32.
        """
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT64, DataType.FLOAT64)

    @property
    def is_orderable(self) -> bool:
        return self is not DataType.BOOL


_NUMPY_DTYPES = {
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.STRING: np.dtype(np.int32),
    DataType.TIMESTAMP: np.dtype(np.int64),
    DataType.BOOL: np.dtype(np.bool_),
}

_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)

# Accepts '2010-01-12', '2010-01-12T22:15:00', '2010-01-12 22:15:00.000'
_TIMESTAMP_RE = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})"
    r"(?:[T ](\d{2}):(\d{2}):(\d{2})(?:\.(\d{1,6}))?)?$"
)


def parse_timestamp(text: str) -> int:
    """Parse an ISO-8601-ish timestamp literal into epoch microseconds.

    Raises :class:`TypeError_` when the text is not a timestamp.
    """
    match = _TIMESTAMP_RE.match(text.strip())
    if match is None:
        raise TypeError_(f"invalid timestamp literal: {text!r}")
    year, month, day = int(match[1]), int(match[2]), int(match[3])
    hour = int(match[4]) if match[4] else 0
    minute = int(match[5]) if match[5] else 0
    second = int(match[6]) if match[6] else 0
    fraction = match[7] or ""
    micros = int(fraction.ljust(6, "0")) if fraction else 0
    try:
        moment = _dt.datetime(
            year, month, day, hour, minute, second, micros,
            tzinfo=_dt.timezone.utc,
        )
    except ValueError as exc:
        raise TypeError_(f"invalid timestamp literal: {text!r}: {exc}") from exc
    return int((moment - _EPOCH) / _dt.timedelta(microseconds=1))


def format_timestamp(micros: int) -> str:
    """Render epoch microseconds as an ISO-8601 string (inverse of parse)."""
    moment = _EPOCH + _dt.timedelta(microseconds=int(micros))
    if micros % 1_000_000:
        return moment.strftime("%Y-%m-%dT%H:%M:%S.%f")
    return moment.strftime("%Y-%m-%dT%H:%M:%S")


def looks_like_timestamp(text: str) -> bool:
    """True when a string literal matches the timestamp grammar."""
    return _TIMESTAMP_RE.match(text.strip()) is not None


def common_numeric_type(left: DataType, right: DataType) -> DataType:
    """The result type of an arithmetic combination of two numeric types."""
    if not (left.is_numeric and right.is_numeric):
        raise TypeError_(f"cannot combine {left.value} and {right.value} arithmetically")
    if DataType.FLOAT64 in (left, right):
        return DataType.FLOAT64
    return DataType.INT64


def comparable(left: DataType, right: DataType) -> bool:
    """Whether values of the two types may be compared with <, =, etc.

    Numerics compare with each other; timestamps compare with timestamps
    (and with strings, which front-ends pass as timestamp literals);
    strings with strings; bools only with bools for equality.
    """
    if left == right:
        return True
    if left.is_numeric and right.is_numeric:
        return True
    pair = {left, right}
    if pair == {DataType.TIMESTAMP, DataType.STRING}:
        return True
    return False
