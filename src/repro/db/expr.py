"""Scalar expressions: typed AST nodes with vectorized evaluation.

Expressions reference columns by *qualified key* (``alias.column``, lower
case); the binder guarantees every batch flowing through a plan carries its
columns under those keys. Evaluation is columnar: each node maps a
:class:`ColumnBatch` to a :class:`Column` using numpy kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from .column import Column
from .errors import TypeError_
from .table import ColumnBatch
from .types import (
    DataType,
    common_numeric_type,
    comparable,
    looks_like_timestamp,
    parse_timestamp,
)


class Expr:
    """Base class for scalar expression nodes."""

    dtype: DataType

    def evaluate(self, batch: ColumnBatch) -> Column:
        raise NotImplementedError

    def references(self) -> set[str]:
        """The qualified column keys this expression reads."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True, eq=False)
class ColumnRef(Expr):
    """A reference to a column by qualified key."""

    key: str
    dtype: DataType

    def evaluate(self, batch: ColumnBatch) -> Column:
        return batch.column(self.key)

    def references(self) -> set[str]:
        return {self.key}

    def __repr__(self) -> str:
        return self.key


@dataclass(frozen=True, eq=False)
class Literal(Expr):
    """A constant value."""

    value: Any
    dtype: DataType

    @classmethod
    def infer(cls, value: Any) -> "Literal":
        if isinstance(value, bool):
            return cls(value, DataType.BOOL)
        if isinstance(value, int):
            return cls(value, DataType.INT64)
        if isinstance(value, float):
            return cls(value, DataType.FLOAT64)
        if isinstance(value, str):
            return cls(value, DataType.STRING)
        raise TypeError_(f"unsupported literal: {value!r}")

    def as_timestamp(self) -> "Literal":
        """Reinterpret a string literal as a timestamp (front-end coercion)."""
        if self.dtype is DataType.TIMESTAMP:
            return self
        if self.dtype is DataType.STRING and looks_like_timestamp(self.value):
            return Literal(parse_timestamp(self.value), DataType.TIMESTAMP)
        raise TypeError_(f"literal {self.value!r} is not a timestamp")

    def evaluate(self, batch: ColumnBatch) -> Column:
        return Column.constant(self.dtype, self.value, batch.num_rows)

    def references(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        if self.dtype is DataType.STRING:
            return f"'{self.value}'"
        return str(self.value)


_COMPARE_OPS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}


class Comparison(Expr):
    """A binary comparison yielding a BOOL column."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARE_OPS:
            raise TypeError_(f"unknown comparison operator {op!r}")
        left, right = _coerce_comparison(left, right)
        if not comparable(left.dtype, right.dtype):
            raise TypeError_(
                f"cannot compare {left.dtype.value} with {right.dtype.value}"
            )
        self.op = op
        self.left = left
        self.right = right
        self.dtype = DataType.BOOL

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, batch: ColumnBatch) -> Column:
        kernel = _COMPARE_OPS[self.op]
        left_col = self.left.evaluate(batch)
        right_col = self.right.evaluate(batch)
        if DataType.STRING in (left_col.dtype, right_col.dtype):
            # Fast path: dictionary column against a constant string.
            fast = _string_constant_compare(self.op, self.left, self.right, batch)
            if fast is not None:
                return fast
            left_vals: np.ndarray = left_col.decoded()
            right_vals: np.ndarray = right_col.decoded()
        else:
            left_vals = left_col.values
            right_vals = right_col.values
        return Column(DataType.BOOL, kernel(left_vals, right_vals))

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


def _coerce_comparison(left: Expr, right: Expr) -> tuple[Expr, Expr]:
    """Coerce string literals compared against timestamps (SQL front-ends
    write ``R.start_time > '2010-01-12T00:00:00.000'``)."""
    if left.dtype is DataType.TIMESTAMP and isinstance(right, Literal) \
            and right.dtype is DataType.STRING:
        return left, right.as_timestamp()
    if right.dtype is DataType.TIMESTAMP and isinstance(left, Literal) \
            and left.dtype is DataType.STRING:
        return left.as_timestamp(), right
    return left, right


def _string_constant_compare(
    op: str, left: Expr, right: Expr, batch: ColumnBatch
) -> Column | None:
    """Equality/inequality of a dictionary column against a literal, done on
    codes without decoding. Returns None when the fast path does not apply."""
    if op not in ("=", "<>"):
        return None
    ref, lit = None, None
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        ref, lit = left, right
    elif isinstance(right, ColumnRef) and isinstance(left, Literal):
        ref, lit = right, left
    if ref is None or ref.dtype is not DataType.STRING \
            or lit.dtype is not DataType.STRING:
        return None
    col = batch.column(ref.key)
    assert col.dictionary is not None
    code = col.dictionary.lookup(str(lit.value))
    if code is None:
        mask = np.zeros(len(col), dtype=bool)
    else:
        mask = col.values == code
    if op == "<>":
        mask = ~mask
    return Column(DataType.BOOL, mask)


class BoolOp(Expr):
    """N-ary AND / OR over BOOL expressions."""

    def __init__(self, op: str, operands: list[Expr]) -> None:
        if op not in ("and", "or"):
            raise TypeError_(f"unknown boolean operator {op!r}")
        if not operands:
            raise TypeError_(f"{op} requires at least one operand")
        for operand in operands:
            if operand.dtype is not DataType.BOOL:
                raise TypeError_(
                    f"{op} operand has type {operand.dtype.value}, expected bool"
                )
        self.op = op
        self.operands = operands
        self.dtype = DataType.BOOL

    def children(self) -> tuple[Expr, ...]:
        return tuple(self.operands)

    def evaluate(self, batch: ColumnBatch) -> Column:
        kernel = np.logical_and if self.op == "and" else np.logical_or
        result = self.operands[0].evaluate(batch).values
        for operand in self.operands[1:]:
            result = kernel(result, operand.evaluate(batch).values)
        return Column(DataType.BOOL, result)

    def references(self) -> set[str]:
        refs: set[str] = set()
        for operand in self.operands:
            refs |= operand.references()
        return refs

    def __repr__(self) -> str:
        joiner = f" {self.op.upper()} "
        return "(" + joiner.join(repr(o) for o in self.operands) + ")"


class Not(Expr):
    """Boolean negation."""

    def __init__(self, operand: Expr) -> None:
        if operand.dtype is not DataType.BOOL:
            raise TypeError_("NOT requires a boolean operand")
        self.operand = operand
        self.dtype = DataType.BOOL

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: ColumnBatch) -> Column:
        return Column(DataType.BOOL, ~self.operand.evaluate(batch).values)

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"(NOT {self.operand!r})"


_ARITH_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "%": np.mod,
}


class Arithmetic(Expr):
    """Binary arithmetic over numeric (or timestamp ± int) operands."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITH_OPS:
            raise TypeError_(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        if left.dtype is DataType.TIMESTAMP or right.dtype is DataType.TIMESTAMP:
            self.dtype = self._timestamp_result(op, left.dtype, right.dtype)
        elif op == "/":
            common_numeric_type(left.dtype, right.dtype)
            self.dtype = DataType.FLOAT64
        else:
            self.dtype = common_numeric_type(left.dtype, right.dtype)

    @staticmethod
    def _timestamp_result(op: str, left: DataType, right: DataType) -> DataType:
        if op == "-" and left is DataType.TIMESTAMP and right is DataType.TIMESTAMP:
            return DataType.INT64  # microsecond difference
        if op in ("+", "-") and left is DataType.TIMESTAMP and right is DataType.INT64:
            return DataType.TIMESTAMP
        if op == "+" and left is DataType.INT64 and right is DataType.TIMESTAMP:
            return DataType.TIMESTAMP
        raise TypeError_(
            f"unsupported timestamp arithmetic: {left.value} {op} {right.value}"
        )

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, batch: ColumnBatch) -> Column:
        kernel = _ARITH_OPS[self.op]
        left_vals = self.left.evaluate(batch).values
        right_vals = self.right.evaluate(batch).values
        result = kernel(left_vals, right_vals)
        return Column(self.dtype, np.asarray(result))

    def references(self) -> set[str]:
        return self.left.references() | self.right.references()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


class Negate(Expr):
    """Unary minus."""

    def __init__(self, operand: Expr) -> None:
        if not operand.dtype.is_numeric:
            raise TypeError_("unary minus requires a numeric operand")
        self.operand = operand
        self.dtype = operand.dtype

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: ColumnBatch) -> Column:
        return Column(self.dtype, -self.operand.evaluate(batch).values)

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"(-{self.operand!r})"


_FUNCTIONS = {
    "abs": (np.abs, None),
    "sqrt": (np.sqrt, DataType.FLOAT64),
    "floor": (np.floor, DataType.FLOAT64),
    "ceil": (np.ceil, DataType.FLOAT64),
}


class FuncCall(Expr):
    """A scalar function call (abs, sqrt, floor, ceil)."""

    def __init__(self, name: str, operand: Expr) -> None:
        lowered = name.lower()
        if lowered not in _FUNCTIONS:
            raise TypeError_(f"unknown scalar function {name!r}")
        if not operand.dtype.is_numeric:
            raise TypeError_(f"{name} requires a numeric operand")
        self.name = lowered
        self.operand = operand
        kernel, forced = _FUNCTIONS[lowered]
        self._kernel = kernel
        self.dtype = forced or operand.dtype

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: ColumnBatch) -> Column:
        result = self._kernel(self.operand.evaluate(batch).values)
        return Column(self.dtype, np.asarray(result))

    def references(self) -> set[str]:
        return self.operand.references()

    def __repr__(self) -> str:
        return f"{self.name}({self.operand!r})"


def conjuncts(expression: Expr) -> list[Expr]:
    """Split a predicate into its top-level AND conjuncts."""
    if isinstance(expression, BoolOp) and expression.op == "and":
        parts: list[Expr] = []
        for operand in expression.operands:
            parts.extend(conjuncts(operand))
        return parts
    return [expression]


def conjoin(predicates: list[Expr]) -> Expr | None:
    """Combine predicates with AND; None for an empty list."""
    if not predicates:
        return None
    if len(predicates) == 1:
        return predicates[0]
    return BoolOp("and", predicates)
