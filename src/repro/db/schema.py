"""Table schemas and the metadata/actual-data distinction.

The paper partitions the schema ``T = M ∪ A`` into metadata tables ``M`` and
actual-data tables ``A`` (§3). That classification is first-class here: it is
what the two-stage decomposition keys on. Derived-metadata tables (§5) are a
third kind that behaves like metadata for planning purposes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import CatalogError
from .types import DataType


class TableKind(enum.Enum):
    """How the planner classifies a table (the paper's M vs A)."""

    METADATA = "metadata"
    ACTUAL = "actual"
    DERIVED = "derived"  # derived metadata (§5); plans like METADATA

    @property
    def counts_as_metadata(self) -> bool:
        return self in (TableKind.METADATA, TableKind.DERIVED)


@dataclass(frozen=True)
class ColumnDef:
    """One column of a table schema."""

    name: str
    dtype: DataType


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key relationship, used by Ei to build join indexes."""

    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]


@dataclass
class TableSchema:
    """The full definition of one table."""

    name: str
    columns: list[ColumnDef]
    kind: TableKind = TableKind.METADATA
    primary_key: tuple[str, ...] = ()
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            lowered = col.name.lower()
            if lowered in seen:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            seen.add(lowered)
        for key_col in self.primary_key:
            if not self.has_column(key_col):
                raise CatalogError(
                    f"primary key column {key_col!r} not in table {self.name!r}"
                )
        for fkey in self.foreign_keys:
            for key_col in fkey.columns:
                if not self.has_column(key_col):
                    raise CatalogError(
                        f"foreign key column {key_col!r} not in table {self.name!r}"
                    )

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(col.name.lower() == lowered for col in self.columns)

    def column(self, name: str) -> ColumnDef:
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        raise CatalogError(f"no column {name!r} in table {self.name!r}")

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == lowered:
                return i
        raise CatalogError(f"no column {name!r} in table {self.name!r}")

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    def to_dict(self) -> dict:
        """JSON-serializable form for catalog persistence."""
        return {
            "name": self.name,
            "kind": self.kind.value,
            "columns": [[c.name, c.dtype.value] for c in self.columns],
            "primary_key": list(self.primary_key),
            "foreign_keys": [
                {
                    "columns": list(fk.columns),
                    "ref_table": fk.ref_table,
                    "ref_columns": list(fk.ref_columns),
                }
                for fk in self.foreign_keys
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableSchema":
        return cls(
            name=data["name"],
            columns=[ColumnDef(n, DataType(t)) for n, t in data["columns"]],
            kind=TableKind(data["kind"]),
            primary_key=tuple(data["primary_key"]),
            foreign_keys=[
                ForeignKey(
                    tuple(fk["columns"]), fk["ref_table"], tuple(fk["ref_columns"])
                )
                for fk in data["foreign_keys"]
            ],
        )
