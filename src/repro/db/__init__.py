"""`repro.db` — a from-scratch columnar SQL engine.

This package is the MonetDB substitute of the reproduction: SQL parsing,
logical planning with rewrite rules, operator-at-a-time columnar execution
over numpy, key indexes, a buffer manager with an explicit disk model for
cold/hot experiments, and on-disk persistence.
"""

from .buffer import BufferManager, DiskModel, IoStats
from .catalog import Catalog
from .column import Column, StringDictionary
from .database import Database, QueryResult
from .errors import (
    BindError,
    CatalogError,
    CorruptFileError,
    DatabaseError,
    ExecutionError,
    FileIngestError,
    IngestError,
    PlanError,
    PlanInvariantError,
    QueryAbortedError,
    SqlSyntaxError,
    StaleFileError,
    StorageError,
    TruncatedFileError,
    TypeError_,
)
from .index import HashIndex
from .schema import ColumnDef, ForeignKey, TableKind, TableSchema
from .stats import FileStatistics, StatisticsCatalog, collect_statistics
from .table import ColumnBatch, Table, concat_batches
from .types import DataType, format_timestamp, parse_timestamp

__all__ = [
    "BufferManager",
    "DiskModel",
    "IoStats",
    "Catalog",
    "Column",
    "StringDictionary",
    "Database",
    "QueryResult",
    "DatabaseError",
    "SqlSyntaxError",
    "BindError",
    "TypeError_",
    "PlanError",
    "PlanInvariantError",
    "ExecutionError",
    "CatalogError",
    "StorageError",
    "IngestError",
    "FileIngestError",
    "CorruptFileError",
    "TruncatedFileError",
    "StaleFileError",
    "QueryAbortedError",
    "HashIndex",
    "ColumnDef",
    "ForeignKey",
    "TableKind",
    "TableSchema",
    "FileStatistics",
    "StatisticsCatalog",
    "collect_statistics",
    "ColumnBatch",
    "Table",
    "concat_batches",
    "DataType",
    "format_timestamp",
    "parse_timestamp",
]
