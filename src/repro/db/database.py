"""The `Database` facade: catalog + buffer manager + query pipeline.

This is the conventional single-stage execution path (what a normal
relational database does, and what the Ei baseline uses). Two-stage execution
wraps the same pieces — see :mod:`repro.core.executor`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from .buffer import BufferManager, DiskModel, IoStats, index_object_name, table_object_name
from .catalog import Catalog
from .column import Column
from .errors import CatalogError
from .index import HashIndex
from .plan.binder import Binder
from .plan.logical import LogicalPlan
from .plan.optimizer import PhysicalPlanner, optimize_logical
from .plan.physical import ExecStats, ExecutionContext, GovernorHook, Mounter
from .plan.verify import verify_enabled_default, verify_physical
from .schema import TableSchema
from .sql.parser import parse_sql
from .table import ColumnBatch, Table


@dataclass
class QueryResult:
    """The answer to one query, with execution accounting attached."""

    names: list[str]
    batch: ColumnBatch
    elapsed_cpu: float
    io: IoStats
    stats: ExecStats

    @property
    def num_rows(self) -> int:
        return self.batch.num_rows

    def rows(self) -> list[tuple[Any, ...]]:
        return self.batch.rows()

    def column(self, name: str) -> list[Any]:
        return self.batch.column(name).to_pylist()

    def scalar(self) -> Any:
        """The single value of a 1×1 result (e.g. ``SELECT AVG(...)``)."""
        rows = self.rows()
        if len(rows) != 1 or len(rows[0]) != 1:
            raise CatalogError(
                f"scalar() on a {len(rows)}x{len(rows[0]) if rows else 0} result"
            )
        return rows[0][0]

    @property
    def total_seconds(self) -> float:
        """CPU wall time plus simulated disk time — the reported metric."""
        return self.elapsed_cpu + self.io.simulated_seconds

    def pretty(self, limit: int = 20) -> str:
        """Simple fixed-width rendering for examples and demos."""
        rendered = [col.render() for col in self.batch.columns]
        widths = [
            max(len(name), *(len(v) for v in vals[:limit]), 1) if vals else len(name)
            for name, vals in zip(self.names, rendered)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(self.names, widths))
        rule = "-+-".join("-" * w for w in widths)
        lines = [header, rule]
        for i in range(min(self.num_rows, limit)):
            lines.append(
                " | ".join(vals[i].ljust(w) for vals, w in zip(rendered, widths))
            )
        if self.num_rows > limit:
            lines.append(f"... ({self.num_rows - limit} more rows)")
        return "\n".join(lines)


class Database:
    """An in-process columnar database with an explicit buffer manager."""

    def __init__(
        self,
        disk_model: Optional[DiskModel] = None,
        verify_plans: Optional[bool] = None,
    ) -> None:
        self.catalog = Catalog()
        self.buffers = BufferManager(disk_model)
        if verify_plans is None:
            verify_plans = verify_enabled_default()
        self.verify_plans = verify_plans

    # -- DDL / DML ------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        return self.catalog.create_table(schema)

    def insert_rows(self, table_name: str, rows: Sequence[Sequence[Any]]) -> None:
        """Append Python rows (tests and small examples)."""
        table = self.catalog.table(table_name)
        schema = table.schema
        columns = []
        for i, col_def in enumerate(schema.columns):
            columns.append(
                Column.from_pylist(col_def.dtype, [row[i] for row in rows])
            )
        table.append(ColumnBatch(schema.column_names, columns))

    def build_key_indexes(self, table_name: str) -> float:
        """Build the table's primary and foreign key indexes.

        Returns the build time in seconds (eager ingestion charges this to
        its up-front cost, as the paper does for Ei).
        """
        table = self.catalog.table(table_name)
        started = time.perf_counter()
        key_sets: list[tuple[str, ...]] = []
        if table.schema.primary_key:
            key_sets.append(table.schema.primary_key)
        for fkey in table.schema.foreign_keys:
            key_sets.append(fkey.columns)
        for columns in key_sets:
            normalized = tuple(c.lower() for c in columns)
            if self.catalog.index_for(table_name, normalized) is not None:
                continue
            key_columns = [table.batch.column(c) for c in normalized]
            index = HashIndex.build(table_name, normalized, key_columns)
            self.catalog.register_index(table_name, normalized, index)
        return time.perf_counter() - started

    # -- buffer state (cold/hot experiments) ------------------------------------

    def make_cold(self) -> None:
        """Flush all buffers — equivalent to the paper's server restart."""
        self.buffers.flush()

    def warm_all(self) -> None:
        """Mark every table column and index resident (hot-run setup)."""
        for table in self.catalog.tables():
            for col_def, column in zip(table.schema.columns, table.batch.columns):
                self.buffers.warm(
                    table_object_name(table.name, col_def.name), column.nbytes()
                )
        for (tname, columns), index in self.catalog.indexes().items():
            self.buffers.warm(index_object_name(tname, columns), index.nbytes())

    # -- query pipeline -----------------------------------------------------------

    def bind_sql(self, sql: str) -> LogicalPlan:
        return Binder(self.catalog).bind(parse_sql(sql))

    def optimize(
        self,
        plan: LogicalPlan,
        metadata_first: bool = False,
        stats=None,  # Optional[StatisticsCatalog]
        fuse_topn: bool = True,
    ) -> LogicalPlan:
        classify = self.catalog.is_metadata_table if metadata_first else None
        return optimize_logical(
            plan,
            classify,
            verify=self.verify_plans,
            stats=stats,
            fuse_topn=fuse_topn,
        )

    def make_context(
        self,
        mounter: Optional[Mounter] = None,
        governor: Optional[GovernorHook] = None,
    ) -> ExecutionContext:
        return ExecutionContext(
            catalog=self.catalog,
            buffers=self.buffers,
            mounter=mounter,
            governor=governor,
        )

    def execute_plan(
        self,
        plan: LogicalPlan,
        context: Optional[ExecutionContext] = None,
        use_indexes: bool = True,
    ) -> QueryResult:
        """Plan physically and run; accounting wraps the whole execution."""
        ctx = context or self.make_context()
        io_before = self.buffers.stats.copy()
        started = time.perf_counter()
        physical = PhysicalPlanner(self.catalog, use_indexes=use_indexes).plan(plan)
        if self.verify_plans:
            verify_physical(physical, plan)
        batch = physical.execute(ctx)
        elapsed = time.perf_counter() - started
        io_after = self.buffers.stats
        io_delta = IoStats(
            objects_read=io_after.objects_read - io_before.objects_read,
            bytes_read=io_after.bytes_read - io_before.bytes_read,
            simulated_seconds=(
                io_after.simulated_seconds - io_before.simulated_seconds
            ),
            touched=io_after.touched - io_before.touched,
        )
        return QueryResult(
            names=list(batch.names),
            batch=batch,
            elapsed_cpu=elapsed,
            io=io_delta,
            stats=ctx.stats,
        )

    def execute(self, sql: str, use_indexes: bool = True) -> QueryResult:
        """Parse, bind, optimize (classic pipeline), and run one query."""
        plan = self.optimize(self.bind_sql(sql))
        return self.execute_plan(plan, use_indexes=use_indexes)

    def profile(self, sql: str, use_indexes: bool = True) -> QueryResult:
        """Like :meth:`execute`, with per-operator profiling enabled; render
        the tree with ``result.stats.render_profile()``."""
        plan = self.optimize(self.bind_sql(sql))
        ctx = self.make_context()
        ctx.profiling = True
        return self.execute_plan(plan, ctx, use_indexes=use_indexes)

    # -- persistence ----------------------------------------------------------------

    def save(self, directory: str) -> int:
        """Persist every table and index definition to ``directory``.

        Returns the bytes written. Reopen with :meth:`Database.open`.
        """
        from .storage import save_catalog

        return save_catalog(self.catalog, directory)

    @classmethod
    def open(
        cls, directory: str, disk_model: Optional[DiskModel] = None
    ) -> "Database":
        """Load a database previously written by :meth:`save`.

        The new connection starts cold: nothing is resident in the buffer
        manager until queries touch it.
        """
        from .storage import load_catalog

        db = cls(disk_model)
        db.catalog = load_catalog(directory)
        return db

    # -- introspection ----------------------------------------------------------

    def explain(self, sql: str, metadata_first: bool = False) -> str:
        plan = self.optimize(self.bind_sql(sql), metadata_first=metadata_first)
        return plan.explain()

    def data_nbytes(self) -> int:
        return self.catalog.data_nbytes()

    def index_nbytes(self) -> int:
        return self.catalog.index_nbytes()
