"""Optimizer pipeline: logical rewrites and logical→physical planning.

The compile-time phase mirrors §3 of the paper: usual optimizations
(selection pushdown, cross-product→join, column pruning) plus the additional
metadata-first join reordering that shapes the plan for two-stage execution.

Physical planning chooses access paths: table scans, hash joins, and — when
eager ingestion has built a key index matching the join columns — index
joins, which is what makes Ei pay for index residency on cold runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - type-only (stats imports plan.logical)
    from ..stats import StatisticsCatalog

from ..catalog import Catalog
from ..errors import PlanError
from ..expr import ColumnRef, Comparison, Expr, conjoin, conjuncts
from ..index import HashIndex
from .logical import (
    Aggregate,
    CacheScan,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Mount,
    Project,
    ResultScan,
    Scan,
    Select,
    SemiJoin,
    Sort,
    TopN,
    UnionAll,
)
from .physical import (
    PAggregate,
    PCacheScan,
    PDistinct,
    PFilter,
    PHashJoin,
    PIndexJoin,
    PIndexScan,
    PLimit,
    PMount,
    PNestedLoopJoin,
    PProject,
    PResultScan,
    PSemiJoin,
    PSort,
    PTableScan,
    PTopN,
    PUnionAll,
    PhysicalOp,
)
from .rewrite import (
    ClassifyFn,
    cost_based_join_order,
    fuse_top_n,
    metadata_first_join_order,
    prune_columns,
    push_down_selections,
)
from .verify import verify_pass, verify_plan


def optimize_logical(
    plan: LogicalPlan,
    classify: Optional[ClassifyFn] = None,
    verify: bool = False,
    stats: Optional["StatisticsCatalog"] = None,
    fuse_topn: bool = True,
) -> LogicalPlan:
    """Run the compile-time rewrite pipeline.

    ``classify`` enables the metadata-first reordering; passing None gives
    the classic optimizer a conventional database would run. ``verify``
    checks the binder's output and every pass against the structural
    invariants in :mod:`repro.db.plan.verify`, raising
    :class:`~repro.db.errors.PlanInvariantError` on the first violation.
    ``stats`` (a :class:`~repro.db.stats.StatisticsCatalog`) enables the
    cost-based join orientation pass; ``fuse_topn`` controls Sort+Limit
    fusion into :class:`~repro.db.plan.logical.TopN` (off reproduces the
    exhaustive sort-then-slice plan, the baseline the benchmarks compare
    against).
    """
    if verify:
        verify_plan(plan, "bind")
    stages: list[tuple[str, LogicalPlan]] = [("bind", plan)]
    plan = push_down_selections(plan)
    stages.append(("push-down-selections", plan))
    if classify is not None:
        plan = metadata_first_join_order(plan, classify)
        stages.append(("metadata-first-join-order", plan))
        plan = push_down_selections(plan)
        stages.append(("push-down-selections", plan))
    if fuse_topn:
        plan = fuse_top_n(plan)
        stages.append(("fuse-top-n", plan))
    if stats is not None and classify is not None:
        plan = cost_based_join_order(plan, stats, classify)
        stages.append(("cost-based-join-order", plan))
    plan = prune_columns(plan)
    stages.append(("prune-columns", plan))
    if verify:
        for (_, before), (pass_name, after) in zip(stages, stages[1:]):
            verify_pass(before, after, pass_name)
    return plan


def _split_equi_condition(
    condition: Optional[Expr], left_keys: set[str], right_keys: set[str]
) -> tuple[list[tuple[str, str]], Optional[Expr]]:
    """Separate ``left.col = right.col`` conjuncts from the rest."""
    if condition is None:
        return [], None
    pairs: list[tuple[str, str]] = []
    residual: list[Expr] = []
    for conj in conjuncts(condition):
        if (
            isinstance(conj, Comparison)
            and conj.op == "="
            and isinstance(conj.left, ColumnRef)
            and isinstance(conj.right, ColumnRef)
        ):
            lkey, rkey = conj.left.key, conj.right.key
            if lkey in left_keys and rkey in right_keys:
                pairs.append((lkey, rkey))
                continue
            if rkey in left_keys and lkey in right_keys:
                pairs.append((rkey, lkey))
                continue
        residual.append(conj)
    return pairs, conjoin(residual)


def _as_filtered_scan(plan: LogicalPlan) -> Optional[tuple[Scan, Optional[Expr]]]:
    """Match ``Scan`` or ``Select(Scan)`` — the shapes whose key indexes a
    join can consult."""
    if isinstance(plan, Scan):
        return plan, None
    if isinstance(plan, Select) and isinstance(plan.child, Scan):
        return plan.child, plan.predicate
    return None


class PhysicalPlanner:
    """Translate an optimized logical plan into a physical operator tree."""

    def __init__(self, catalog: Catalog, use_indexes: bool = True) -> None:
        self.catalog = catalog
        self.use_indexes = use_indexes

    def plan(self, node: LogicalPlan) -> PhysicalOp:
        if isinstance(node, Scan):
            return self._plan_scan(node)
        if isinstance(node, Select):
            if self.use_indexes and isinstance(node.child, Scan):
                indexed = self._try_index_scan(node.child, node.predicate)
                if indexed is not None:
                    return indexed
            return PFilter(self.plan(node.child), node.predicate)
        if isinstance(node, Project):
            return PProject(self.plan(node.child), node.items)
        if isinstance(node, Join):
            return self._plan_join(node)
        if isinstance(node, SemiJoin):
            return PSemiJoin(
                self.plan(node.child),
                node.operand,
                self.plan(node.subplan),
                node.negated,
            )
        if isinstance(node, Aggregate):
            return PAggregate(self.plan(node.child), node.groups, node.aggs)
        if isinstance(node, Sort):
            return PSort(self.plan(node.child), node.keys)
        if isinstance(node, TopN):
            return PTopN(
                self.plan(node.child),
                node.keys,
                node.count,
                [key for key, _ in node.output],
                [dtype for _, dtype in node.output],
            )
        if isinstance(node, Limit):
            return PLimit(
                self.plan(node.child),
                node.count,
                [key for key, _ in node.output],
                [dtype for _, dtype in node.output],
            )
        if isinstance(node, Distinct):
            return PDistinct(self.plan(node.child))
        if isinstance(node, UnionAll):
            return PUnionAll(
                [self.plan(child) for child in node.inputs],
                [key for key, _ in node.output],
                [dtype for _, dtype in node.output],
            )
        if isinstance(node, ResultScan):
            return PResultScan(node.tag, node.output_keys())
        if isinstance(node, Mount):
            return PMount(
                node.uri, node.table_name, node.alias,
                node.predicate, node.output_keys(),
            )
        if isinstance(node, CacheScan):
            return PCacheScan(
                node.uri, node.table_name, node.alias,
                node.predicate, node.output_keys(),
            )
        raise PlanError(f"no physical translation for {type(node).__name__}")

    def _plan_scan(self, node: Scan) -> PTableScan:
        columns = [
            (key.split(".", 1)[1], key, dtype) for key, dtype in node.output
        ]
        return PTableScan(node.table_name, node.alias, columns)

    def _try_index_scan(
        self, scan: Scan, predicate: Expr
    ) -> Optional[PhysicalOp]:
        """Serve ``σ(scan)`` through a key index when equality conjuncts pin
        every column of some index on the table."""
        from ..expr import Literal

        equalities: dict[str, object] = {}
        for conj in conjuncts(predicate):
            if (
                isinstance(conj, Comparison)
                and conj.op == "="
            ):
                ref, lit = None, None
                if isinstance(conj.left, ColumnRef) and isinstance(conj.right, Literal):
                    ref, lit = conj.left, conj.right
                elif isinstance(conj.right, ColumnRef) and isinstance(conj.left, Literal):
                    ref, lit = conj.right, conj.left
                if ref is not None and ref.key.startswith(f"{scan.alias}."):
                    column = ref.key.split(".", 1)[1]
                    equalities.setdefault(column, lit.value)
        if not equalities:
            return None
        best: Optional[tuple[tuple[str, ...], HashIndex]] = None
        for (tname, columns), index in self.catalog.indexes().items():
            if tname != scan.table_name.lower():
                continue
            if set(columns) <= equalities.keys():
                if best is None or len(columns) > len(best[0]):
                    best = (columns, index)
        if best is None:
            return None
        index_columns, index = best
        if len(index_columns) == 1:
            key: object = equalities[index_columns[0]]
        else:
            key = tuple(equalities[c] for c in index_columns)
        # The full predicate stays as residual: re-checking the equality
        # conjuncts on the (small) matched rows is cheap and keeps the
        # rewrite trivially sound.
        columns = [
            (out_key.split(".", 1)[1], out_key, dtype)
            for out_key, dtype in scan.output
        ]
        return PIndexScan(
            table_name=scan.table_name,
            alias=scan.alias,
            columns=columns,
            index=index,
            key=key,
            residual=predicate,
        )

    def _plan_join(self, node: Join) -> PhysicalOp:
        left_keys = set(node.left.output_keys())
        right_keys = set(node.right.output_keys())
        pairs, residual = _split_equi_condition(
            node.condition, left_keys, right_keys
        )
        if not pairs:
            return PNestedLoopJoin(
                self.plan(node.left), self.plan(node.right), node.condition
            )
        if self.use_indexes:
            indexed = self._try_index_join(node, pairs, residual)
            if indexed is not None:
                return indexed
        return PHashJoin(
            self.plan(node.left),
            self.plan(node.right),
            [lk for lk, _ in pairs],
            [rk for _, rk in pairs],
            residual,
            index_sideload=self._sideload_indexes(node, pairs),
        )

    def _sideload_indexes(
        self, node: Join, pairs: list[tuple[str, str]]
    ) -> list[HashIndex]:
        """Key indexes the engine consults for a hash join over base scans.

        This models MonetDB's behaviour in the paper's Ei baseline: joins
        over eagerly loaded tables bring the matching primary/foreign key
        indexes into memory (charged on cold runs) even though our hash join
        does not need them for correctness.
        """
        if not self.use_indexes:
            return []
        sideload: list[HashIndex] = []
        for side, own_keys in (
            (node.left, [lk for lk, _ in pairs]),
            (node.right, [rk for _, rk in pairs]),
        ):
            match = _as_filtered_scan(side)
            if match is None:
                continue
            scan, _ = match
            columns = {key.split(".", 1)[1] for key in own_keys}
            found = self._find_index(scan.table_name, columns)
            if found is not None:
                sideload.append(found[1])
        return sideload

    def _find_index(
        self, table_name: str, column_set: set[str]
    ) -> Optional[tuple[tuple[str, ...], HashIndex]]:
        for (tname, columns), index in self.catalog.indexes().items():
            if tname == table_name.lower() and set(columns) == column_set:
                return columns, index
        return None

    def _try_index_join(
        self,
        node: Join,
        pairs: list[tuple[str, str]],
        residual: Optional[Expr],
    ) -> Optional[PhysicalOp]:
        """Use a stored key index when one join side is a (filtered) base scan
        whose equi-key columns exactly match an existing index."""
        for side, probe_on_left in ((node.right, True), (node.left, False)):
            # Index joins only serve *pure* scans: a selection on the stored
            # side means the engine must scan its columns anyway (MonetDB
            # evaluates such selections by full column scan), so the planner
            # keeps the hash join and only sideloads the key index.
            if not isinstance(side, Scan):
                continue
            match = _as_filtered_scan(side)
            if match is None:
                continue
            scan, stored_predicate = match
            if probe_on_left:
                side_pairs = pairs  # (probe key, stored key)
            else:
                side_pairs = [(rk, lk) for lk, rk in pairs]
            stored_cols = {key.split(".", 1)[1] for _, key in side_pairs}
            found = self._find_index(scan.table_name, stored_cols)
            if found is None:
                continue
            index_columns, index = found
            by_col = {key.split(".", 1)[1]: probe for probe, key in side_pairs}
            probe_keys = [by_col[col] for col in index_columns]
            probe_side = node.left if probe_on_left else node.right
            stored_columns = [
                (key.split(".", 1)[1], key, dtype) for key, dtype in scan.output
            ]
            return PIndexJoin(
                probe=self.plan(probe_side),
                probe_keys=probe_keys,
                table_name=scan.table_name,
                alias=scan.alias,
                stored_columns=stored_columns,
                index=index,
                stored_predicate=stored_predicate,
                residual=residual,
                probe_on_left=probe_on_left,
            )
        return None
