"""Shared columnar kernels: factorization, grouping, stable distinct.

These helpers reduce heterogeneous key columns (including dictionary-encoded
strings) to dense int64 codes whose sort order matches the value order, which
lets group-by, sort, and distinct all run on plain numpy integer arrays.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..column import Column


def factorize(column: Column) -> tuple[np.ndarray, int]:
    """Map a column to dense int64 codes preserving value order.

    Returns ``(codes, cardinality)``; equal values share a code and
    ``value_a < value_b`` implies ``code_a < code_b``.
    """
    values = column.key_values()
    uniques, inverse = np.unique(values, return_inverse=True)
    return inverse.astype(np.int64), len(uniques)


def combined_codes(columns: Sequence[Column]) -> np.ndarray:
    """Collapse several key columns into one int64 code per row.

    Row equality on the combined code is equivalent to tuple equality on the
    original keys; ordering follows the left-to-right tuple order.
    """
    if not columns:
        raise ValueError("combined_codes requires at least one column")
    codes, card = factorize(columns[0])
    for column in columns[1:]:
        next_codes, next_card = factorize(column)
        if next_card == 0:
            return codes
        codes = codes * np.int64(next_card) + next_codes
    return codes


def group_by_codes(codes: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Group rows by code.

    Returns ``(group_ids, representatives, num_groups)`` where ``group_ids``
    assigns each row its group (dense, ordered by first key order) and
    ``representatives`` holds the first row index of each group.
    """
    uniques, first_pos, inverse = np.unique(
        codes, return_index=True, return_inverse=True
    )
    return inverse.astype(np.int64), first_pos.astype(np.int64), len(uniques)


def first_occurrence_indices(codes: np.ndarray) -> np.ndarray:
    """Indices of the first occurrence of each distinct code, in row order
    (the kernel behind a *stable* DISTINCT)."""
    _, first_pos = np.unique(codes, return_index=True)
    return np.sort(first_pos)


def join_codes(
    left_columns: Sequence[Column], right_columns: Sequence[Column]
) -> tuple[np.ndarray, np.ndarray]:
    """Jointly factorize both sides of an equi-join.

    Per-column factorization is local to a column, so codes from two columns
    are not comparable; this factorizes each key position over the
    concatenation of both sides, then combines positions. Equal key tuples on
    the two sides receive equal combined codes.
    """
    if len(left_columns) != len(right_columns):
        raise ValueError("join key arity mismatch")
    n_left = len(left_columns[0]) if left_columns else 0
    left_codes = np.zeros(n_left, dtype=np.int64)
    n_right = len(right_columns[0]) if right_columns else 0
    right_codes = np.zeros(n_right, dtype=np.int64)
    for left_col, right_col in zip(left_columns, right_columns):
        both = np.concatenate([left_col.key_values(), right_col.key_values()])
        uniques, inverse = np.unique(both, return_inverse=True)
        card = max(len(uniques), 1)
        inverse = inverse.astype(np.int64)
        left_codes = left_codes * card + inverse[:n_left]
        right_codes = right_codes * card + inverse[n_left:]
    return left_codes, right_codes


def sort_indices(
    key_columns: Sequence[Column], ascending: Sequence[bool]
) -> np.ndarray:
    """Stable multi-key sort; per-key direction via code negation."""
    if not key_columns:
        raise ValueError("sort_indices requires at least one key")
    arrays = []
    for column, asc in zip(key_columns, ascending):
        codes, _ = factorize(column)
        arrays.append(codes if asc else -codes)
    # np.lexsort sorts by the last key first; our first key is primary.
    return np.lexsort(arrays[::-1])


def top_n_indices(
    key_columns: Sequence[Column],
    ascending: Sequence[bool],
    count: int,
    chunk_rows: int = 4096,
) -> np.ndarray:
    """The first ``count`` indices of the stable multi-key sort order.

    Equivalent to ``sort_indices(key_columns, ascending)[:count]`` — stable
    tie-breaking by row position included — but computed as a heap-style
    selection: rows stream through in chunks, and only the current best
    ``count`` candidates are ever re-sorted, so per-step work is bounded by
    ``count + chunk_rows`` rather than the input size.
    """
    if not key_columns:
        raise ValueError("top_n_indices requires at least one key")
    if count < 0:
        raise ValueError(f"top_n_indices requires count >= 0, got {count}")
    if chunk_rows < 1:
        raise ValueError(f"top_n_indices requires chunk_rows >= 1, got {chunk_rows}")
    if count == 0:
        return np.empty(0, dtype=np.int64)
    arrays = []
    for column, asc in zip(key_columns, ascending):
        codes, _ = factorize(column)
        arrays.append(codes if asc else -codes)
    n = len(key_columns[0])
    # Invariant: ``kept`` holds the best <= count row indices seen so far,
    # already in stable sort order. Appending the next chunk (whose indices
    # all exceed kept's ties, in row order) and re-sorting stably preserves
    # global stability by induction.
    kept = np.empty(0, dtype=np.int64)
    for start in range(0, n, chunk_rows):
        candidates = np.concatenate(
            [kept, np.arange(start, min(start + chunk_rows, n), dtype=np.int64)]
        )
        keys = [codes[candidates] for codes in arrays]
        order = np.lexsort(keys[::-1])
        kept = candidates[order[:count]]
    return kept
