"""Relational algebra plan nodes.

Besides the classic operators, this module defines the paper's three extra
access paths (§3 "Access Paths"):

* :class:`ResultScan` — re-reads the materialized result of a sub-plan
  (used to feed the stage-1 result ``Q_f`` into ``Q_s``),
* :class:`CacheScan` — reads a previously ingested file from the cache,
* :class:`Mount` — automated lazy ingestion of one external file as a
  dangling partial table, optionally fused with a selection (the paper's
  "combined selections with mounts" access path).

Every node knows its output schema as a list of ``(qualified_key, DataType)``
pairs; qualified keys are ``alias.column`` strings assigned by the binder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..expr import Expr
from ..types import DataType

OutputSchema = list[tuple[str, DataType]]


class LogicalPlan:
    """Base class for logical plan nodes."""

    output: OutputSchema

    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def with_children(self, children: Sequence["LogicalPlan"]) -> "LogicalPlan":
        """Rebuild this node with new children (rewrite-rule plumbing)."""
        raise NotImplementedError

    def output_keys(self) -> list[str]:
        return [key for key, _ in self.output]

    # -- pretty printing -----------------------------------------------------

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0, mark: Optional["LogicalPlan"] = None) -> str:
        """Render the plan tree; the subtree rooted at ``mark`` (the metadata
        branch ``Q_f``) is tagged with ``*`` the way the paper bold-faces it."""
        tag = " [Qf]" if self is mark else ""
        lines = ["  " * indent + self.label() + tag]
        for child in self.children():
            lines.append(child.explain(indent + 1, mark))
        return "\n".join(lines)

    def walk(self) -> Iterator["LogicalPlan"]:
        """Yield every node in the subtree, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(eq=False)
class Scan(LogicalPlan):
    """Full scan of a base table, binding its columns under ``alias.*``."""

    table_name: str
    alias: str
    output: OutputSchema

    def with_children(self, children: Sequence[LogicalPlan]) -> "Scan":
        assert not children
        return self

    def label(self) -> str:
        if self.alias != self.table_name.lower():
            return f"Scan({self.table_name} AS {self.alias})"
        return f"Scan({self.table_name})"


@dataclass(eq=False)
class Select(LogicalPlan):
    """σ — filter rows by a boolean predicate."""

    child: LogicalPlan
    predicate: Expr

    def __post_init__(self) -> None:
        self.output = self.child.output

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def label(self) -> str:
        return f"Select[{self.predicate!r}]"


@dataclass(eq=False)
class Project(LogicalPlan):
    """π — compute named output expressions."""

    child: LogicalPlan
    items: list[tuple[str, Expr]]  # (output name, expression)

    def __post_init__(self) -> None:
        self.output = [(name.lower(), expr.dtype) for name, expr in self.items]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Project":
        (child,) = children
        return Project(child, self.items)

    def label(self) -> str:
        cols = ", ".join(name for name, _ in self.items)
        return f"Project[{cols}]"


@dataclass(eq=False)
class Join(LogicalPlan):
    """⋈ — inner join; ``condition`` None means a cartesian product."""

    left: LogicalPlan
    right: LogicalPlan
    condition: Optional[Expr]

    def __post_init__(self) -> None:
        self.output = list(self.left.output) + list(self.right.output)

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Join":
        left, right = children
        return Join(left, right, self.condition)

    def label(self) -> str:
        if self.condition is None:
            return "CrossProduct"
        return f"Join[{self.condition!r}]"


@dataclass(eq=False)
class AggSpec:
    """One aggregate computation: ``func(arg) AS out_name``."""

    func: str  # avg | sum | min | max | count
    arg: Optional[Expr]  # None for COUNT(*)
    out_name: str
    distinct: bool = False
    dtype: DataType = DataType.FLOAT64

    def label(self) -> str:
        inner = "*" if self.arg is None else repr(self.arg)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.func.upper()}({prefix}{inner})"


@dataclass(eq=False)
class Aggregate(LogicalPlan):
    """γ — grouped aggregation. Empty ``groups`` = scalar aggregation."""

    child: LogicalPlan
    groups: list[tuple[str, Expr]]  # (output key, expression)
    aggs: list[AggSpec]

    def __post_init__(self) -> None:
        self.output = [(name.lower(), expr.dtype) for name, expr in self.groups]
        self.output += [(spec.out_name.lower(), spec.dtype) for spec in self.aggs]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.groups, self.aggs)

    def label(self) -> str:
        parts = [name for name, _ in self.groups]
        parts += [spec.label() for spec in self.aggs]
        return f"Aggregate[{', '.join(parts)}]"


@dataclass(eq=False)
class Sort(LogicalPlan):
    """Order rows by one or more key expressions."""

    child: LogicalPlan
    keys: list[tuple[Expr, bool]]  # (expression, ascending)

    def __post_init__(self) -> None:
        self.output = self.child.output

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        (child,) = children
        return Sort(child, self.keys)

    def label(self) -> str:
        keys = ", ".join(
            f"{expr!r} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )
        return f"Sort[{keys}]"


@dataclass(eq=False)
class Limit(LogicalPlan):
    """Keep the first ``count`` rows."""

    child: LogicalPlan
    count: int

    def __post_init__(self) -> None:
        self.output = self.child.output

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        (child,) = children
        return Limit(child, self.count)

    def label(self) -> str:
        return f"Limit[{self.count}]"


@dataclass(eq=False)
class TopN(LogicalPlan):
    """Fused Sort + Limit: the ``count`` first rows of the sorted child.

    Produced by the ``fuse-top-n`` optimizer pass from ``Limit(Sort(...))``
    shapes (possibly through a projection). Carrying both the keys and the
    count in one node is what lets the physical layer run a bounded-memory
    heap selection and lets the executor terminate union branches early once
    the current threshold proves a branch's time hull cannot contribute.
    """

    child: LogicalPlan
    keys: list[tuple[Expr, bool]]  # (expression, ascending)
    count: int

    def __post_init__(self) -> None:
        self.output = self.child.output

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "TopN":
        (child,) = children
        return TopN(child, self.keys, self.count)

    def label(self) -> str:
        keys = ", ".join(
            f"{expr!r} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )
        return f"TopN[{keys}, limit={self.count}]"


@dataclass(eq=False)
class Distinct(LogicalPlan):
    """Drop duplicate rows, keeping first occurrences (stable)."""

    child: LogicalPlan

    def __post_init__(self) -> None:
        self.output = self.child.output

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalPlan]) -> "Distinct":
        (child,) = children
        return Distinct(child)


@dataclass(eq=False)
class UnionAll(LogicalPlan):
    """Bag union of children with identical output schemas.

    ``declared_output`` keeps the schema well-defined even with zero inputs
    (an empty files-of-interest set rewrites an actual scan into an empty
    union — the paper's best case, where nothing is ever ingested).
    """

    inputs: list[LogicalPlan]
    declared_output: Optional[OutputSchema] = None

    def __post_init__(self) -> None:
        if self.declared_output is not None:
            self.output = list(self.declared_output)
        elif self.inputs:
            self.output = self.inputs[0].output
        else:
            raise ValueError("UnionAll with no inputs requires declared_output")

    def children(self) -> tuple[LogicalPlan, ...]:
        return tuple(self.inputs)

    def with_children(self, children: Sequence[LogicalPlan]) -> "UnionAll":
        return UnionAll(list(children), self.declared_output or self.output)

    def label(self) -> str:
        return f"UnionAll[{len(self.inputs)}]"


@dataclass(eq=False)
class SemiJoin(LogicalPlan):
    """⋉ — keep child rows whose ``operand`` value appears in (or, negated,
    is absent from) the single-column result of an uncorrelated sub-plan.

    The lowering target for ``expr [NOT] IN (SELECT ...)``.
    """

    child: LogicalPlan
    operand: Expr
    subplan: LogicalPlan
    negated: bool = False

    def __post_init__(self) -> None:
        self.output = self.child.output

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child, self.subplan)

    def with_children(self, children: Sequence[LogicalPlan]) -> "SemiJoin":
        child, subplan = children
        return SemiJoin(child, self.operand, subplan, self.negated)

    def label(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"SemiJoin[{self.operand!r} {op} (subquery)]"


# -- the paper's access paths -------------------------------------------------


@dataclass(eq=False)
class ResultScan(LogicalPlan):
    """Access the materialized result of a previously executed sub-plan.

    The executor stores stage-1 results in its run context under ``tag``.
    """

    tag: str
    output: OutputSchema

    def with_children(self, children: Sequence[LogicalPlan]) -> "ResultScan":
        assert not children
        return self

    def label(self) -> str:
        return f"ResultScan[{self.tag}]"


@dataclass(eq=False)
class CacheScan(LogicalPlan):
    """Read one file's previously ingested tuples from the ingestion cache.

    ``predicate`` non-None is the fused "combined selection with cache-scan"
    access path; with a tuple-granular cache it enables tuple-level reuse.
    """

    uri: str
    table_name: str
    alias: str
    output: OutputSchema
    predicate: Optional[Expr] = None
    # The branch's pruning interval: the closed [lo, hi] µs interval the
    # fused predicate implies on ``interval_column`` (None = whole file).
    # Selective mounting and interval-granular cache lookups key off it;
    # the plan verifier checks it covers the predicate's hull.
    interval: Optional[tuple[int, int]] = None
    interval_column: Optional[str] = None  # unqualified time column name

    def with_children(self, children: Sequence[LogicalPlan]) -> "CacheScan":
        assert not children
        return self

    def label(self) -> str:
        suffix = f" σ[{self.predicate!r}]" if self.predicate is not None else ""
        return f"CacheScan[{self.uri}]{suffix}"


@dataclass(eq=False)
class Mount(LogicalPlan):
    """Automated lazy ingestion of one external file (the ALi access path).

    Extracts, transforms to the actual-data table's schema, and exposes the
    file's tuples as a dangling partial table for the duration of the query.
    ``predicate`` non-None is the fused "combined selection with mount" path.
    """

    uri: str
    table_name: str
    alias: str
    output: OutputSchema
    predicate: Optional[Expr] = None
    # Pruning interval + time column, same semantics as CacheScan's: records
    # outside it may be skipped at extraction, so the verifier demands it be
    # no narrower than the fused predicate's hull.
    interval: Optional[tuple[int, int]] = None
    interval_column: Optional[str] = None

    def with_children(self, children: Sequence[LogicalPlan]) -> "Mount":
        assert not children
        return self

    def label(self) -> str:
        suffix = f" σ[{self.predicate!r}]" if self.predicate is not None else ""
        return f"Mount[{self.uri}]{suffix}"
