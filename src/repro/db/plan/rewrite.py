"""Compile-time logical rewrite rules.

Three families of rules run before execution:

* classic normalization — selection splitting/pushdown, turning cartesian
  products plus predicates into joins ("combine selections and cross-products
  into joins, push down selections" — §3),
* the paper's **metadata-first join reordering**: flatten the join tree and
  rebuild it right-deep in the pattern
  ``a1 ⋈ (a2 ⋈ (… (ay ⋈ (m1 ⋈ (m2 ⋈ (… ⋈ mx))))))``
  so the metadata branch ``Q_f`` is a connected subtree that can be cut off
  and run as stage 1,
* column pruning, so scans only materialize (and charge I/O for) columns the
  query needs.
"""

from __future__ import annotations

from typing import Callable

from ..expr import Expr, conjoin, conjuncts
from .logical import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Select,
    SemiJoin,
    Sort,
    UnionAll,
)

ClassifyFn = Callable[[str], bool]  # table name -> is metadata table


# -- selection pushdown ------------------------------------------------------------


def push_down_selections(plan: LogicalPlan) -> LogicalPlan:
    """Sink selection conjuncts as far down the tree as their columns allow."""
    return _push(plan, [])


def _push(plan: LogicalPlan, pending: list[Expr]) -> LogicalPlan:
    """Rebuild ``plan`` with ``pending`` predicates applied as low as possible."""
    if isinstance(plan, Select):
        return _push(plan.child, pending + conjuncts(plan.predicate))
    if isinstance(plan, Join):
        available_left = set(plan.left.output_keys())
        available_right = set(plan.right.output_keys())
        left_preds: list[Expr] = []
        right_preds: list[Expr] = []
        join_preds: list[Expr] = list(
            conjuncts(plan.condition) if plan.condition is not None else []
        )
        for pred in pending:
            refs = pred.references()
            if refs <= available_left:
                left_preds.append(pred)
            elif refs <= available_right:
                right_preds.append(pred)
            else:
                join_preds.append(pred)
        # Join-condition conjuncts that turn out to be single-sided sink too.
        sunk_condition: list[Expr] = []
        for pred in join_preds:
            refs = pred.references()
            if refs <= available_left:
                left_preds.append(pred)
            elif refs <= available_right:
                right_preds.append(pred)
            else:
                sunk_condition.append(pred)
        left = _push(plan.left, left_preds)
        right = _push(plan.right, right_preds)
        return Join(left, right, conjoin(sunk_condition))
    if isinstance(plan, UnionAll):
        inputs = [_push(child, list(pending)) for child in plan.inputs]
        # Keep the declared schema: a zero-branch union (empty files of
        # interest) has no input to infer it from.
        return UnionAll(inputs, plan.declared_output or list(plan.output))
    if isinstance(plan, (Sort, Limit, Distinct)):
        # Filters commute with ordering and (for bag semantics) with limit only
        # when limit is above them — keep predicates above these operators.
        child = _push(plan.children()[0], [])
        rebuilt = plan.with_children([child])
        return _apply_pending(rebuilt, pending)
    # Project, Aggregate, scans, access paths: stop sinking here.
    children = [_push(child, []) for child in plan.children()]
    rebuilt = plan.with_children(children) if children else plan
    return _apply_pending(rebuilt, pending)


def _apply_pending(plan: LogicalPlan, pending: list[Expr]) -> LogicalPlan:
    predicate = conjoin(pending)
    if predicate is None:
        return plan
    return Select(plan, predicate)


# -- metadata-first join reordering ----------------------------------------------


def _is_join_tree(plan: LogicalPlan) -> bool:
    return isinstance(plan, Join)


def _flatten_join_tree(
    plan: LogicalPlan,
) -> tuple[list[LogicalPlan], list[Expr]]:
    """Split a tree of inner joins into base relations and join predicates."""
    if isinstance(plan, Join):
        left_rels, left_preds = _flatten_join_tree(plan.left)
        right_rels, right_preds = _flatten_join_tree(plan.right)
        predicates = left_preds + right_preds
        if plan.condition is not None:
            predicates.extend(conjuncts(plan.condition))
        return left_rels + right_rels, predicates
    return [plan], []


def _is_metadata_relation(relation: LogicalPlan, classify: ClassifyFn) -> bool:
    """A relation is metadata when every Scan leaf is a metadata table."""
    scans = [node for node in relation.walk() if isinstance(node, Scan)]
    if not scans:
        return False
    return all(classify(scan.table_name) for scan in scans)


def metadata_first_join_order(
    plan: LogicalPlan, classify: ClassifyFn
) -> LogicalPlan:
    """Apply the paper's join reordering recursively over the plan.

    Joins between metadata tables are collected together and pushed down
    (made innermost) so that the highest metadata-only branch — the future
    ``Q_f`` — is as large as possible.
    """
    if _is_join_tree(plan):
        relations, predicates = _flatten_join_tree(plan)
        relations = [
            metadata_first_join_order_children(rel, classify) for rel in relations
        ]
        return _rebuild_right_deep(relations, predicates, classify)
    return metadata_first_join_order_children(plan, classify)


def metadata_first_join_order_children(
    plan: LogicalPlan, classify: ClassifyFn
) -> LogicalPlan:
    children = [metadata_first_join_order(c, classify) for c in plan.children()]
    return plan.with_children(children) if children else plan


def _rebuild_right_deep(
    relations: list[LogicalPlan],
    predicates: list[Expr],
    classify: ClassifyFn,
) -> LogicalPlan:
    """Rebuild ``a1 ⋈ (a2 ⋈ (… (m1 ⋈ (… ⋈ mx))))`` placing each predicate at
    the lowest join where its columns are all in scope."""
    metadata_rels = [r for r in relations if _is_metadata_relation(r, classify)]
    actual_rels = [r for r in relations if not _is_metadata_relation(r, classify)]
    ordered = actual_rels + metadata_rels  # innermost = last
    remaining = list(predicates)

    current = ordered[-1]
    available = set(current.output_keys())
    for relation in reversed(ordered[:-1]):
        available |= set(relation.output_keys())
        applicable = [p for p in remaining if p.references() <= available]
        remaining = [p for p in remaining if p not in applicable]
        current = Join(relation, current, conjoin(applicable))
    if remaining:
        # Predicates referencing columns outside the join tree (defensive).
        current = Select(current, conjoin(remaining))
    return current


# -- column pruning -----------------------------------------------------------


def prune_columns(plan: LogicalPlan) -> LogicalPlan:
    """Trim Scan outputs to the columns the rest of the plan references."""
    return _prune(plan, set(plan.output_keys()))


def _prune(plan: LogicalPlan, required: set[str]) -> LogicalPlan:
    if isinstance(plan, Scan):
        kept = [(key, dtype) for key, dtype in plan.output if key in required]
        if not kept:  # e.g. COUNT(*) needs some column to count rows
            kept = [plan.output[0]]
        return Scan(plan.table_name, plan.alias, kept)
    if isinstance(plan, Select):
        child = _prune(plan.child, required | plan.predicate.references())
        return Select(child, plan.predicate)
    if isinstance(plan, Project):
        needed: set[str] = set()
        for _, expr in plan.items:
            needed |= expr.references()
        return Project(_prune(plan.child, needed), plan.items)
    if isinstance(plan, Join):
        needed = set(required)
        if plan.condition is not None:
            needed |= plan.condition.references()
        left_keys = set(plan.left.output_keys())
        right_keys = set(plan.right.output_keys())
        left = _prune(plan.left, needed & left_keys)
        right = _prune(plan.right, needed & right_keys)
        return Join(left, right, plan.condition)
    if isinstance(plan, Aggregate):
        needed = set()
        for _, expr in plan.groups:
            needed |= expr.references()
        for spec in plan.aggs:
            if spec.arg is not None:
                needed |= spec.arg.references()
        if not needed and isinstance(plan.child, LogicalPlan):
            # COUNT(*) with no groups: child still must produce its row count.
            needed = set(plan.child.output_keys()[:1])
        return Aggregate(_prune(plan.child, needed), plan.groups, plan.aggs)
    if isinstance(plan, Sort):
        needed = set(required)
        for expr, _ in plan.keys:
            needed |= expr.references()
        return Sort(_prune(plan.child, needed), plan.keys)
    if isinstance(plan, (Limit, Distinct)):
        child = _prune(plan.children()[0], required)
        return plan.with_children([child])
    if isinstance(plan, SemiJoin):
        child = _prune(plan.child, required | plan.operand.references())
        subplan = _prune(plan.subplan, set(plan.subplan.output_keys()))
        return SemiJoin(child, plan.operand, subplan, plan.negated)
    if isinstance(plan, UnionAll):
        # Branch outputs must stay aligned with the union's schema, so prune
        # with the union's own keys (not the caller's subset) and keep the
        # declared schema for the zero-branch case.
        union_keys = set(plan.output_keys())
        inputs = [_prune(child, union_keys) for child in plan.inputs]
        return UnionAll(inputs, plan.declared_output or list(plan.output))
    # Access paths (ResultScan/CacheScan/Mount) keep their full output.
    children = [
        _prune(child, set(child.output_keys())) for child in plan.children()
    ]
    return plan.with_children(children) if children else plan
