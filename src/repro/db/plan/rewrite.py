"""Compile-time logical rewrite rules.

Three families of rules run before execution:

* classic normalization — selection splitting/pushdown, turning cartesian
  products plus predicates into joins ("combine selections and cross-products
  into joins, push down selections" — §3),
* the paper's **metadata-first join reordering**: flatten the join tree and
  rebuild it right-deep in the pattern
  ``a1 ⋈ (a2 ⋈ (… (ay ⋈ (m1 ⋈ (m2 ⋈ (… ⋈ mx))))))``
  so the metadata branch ``Q_f`` is a connected subtree that can be cut off
  and run as stage 1,
* column pruning, so scans only materialize (and charge I/O for) columns the
  query needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..expr import Expr, conjoin, conjuncts

if TYPE_CHECKING:  # pragma: no cover - type-only (stats imports plan.logical)
    from ..stats import StatisticsCatalog
from .logical import (
    Aggregate,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Select,
    SemiJoin,
    Sort,
    TopN,
    UnionAll,
)

ClassifyFn = Callable[[str], bool]  # table name -> is metadata table


# -- selection pushdown ------------------------------------------------------------


def push_down_selections(plan: LogicalPlan) -> LogicalPlan:
    """Sink selection conjuncts as far down the tree as their columns allow."""
    return _push(plan, [])


def _push(plan: LogicalPlan, pending: list[Expr]) -> LogicalPlan:
    """Rebuild ``plan`` with ``pending`` predicates applied as low as possible."""
    if isinstance(plan, Select):
        return _push(plan.child, pending + conjuncts(plan.predicate))
    if isinstance(plan, Join):
        available_left = set(plan.left.output_keys())
        available_right = set(plan.right.output_keys())
        left_preds: list[Expr] = []
        right_preds: list[Expr] = []
        join_preds: list[Expr] = list(
            conjuncts(plan.condition) if plan.condition is not None else []
        )
        for pred in pending:
            refs = pred.references()
            if refs <= available_left:
                left_preds.append(pred)
            elif refs <= available_right:
                right_preds.append(pred)
            else:
                join_preds.append(pred)
        # Join-condition conjuncts that turn out to be single-sided sink too.
        sunk_condition: list[Expr] = []
        for pred in join_preds:
            refs = pred.references()
            if refs <= available_left:
                left_preds.append(pred)
            elif refs <= available_right:
                right_preds.append(pred)
            else:
                sunk_condition.append(pred)
        left = _push(plan.left, left_preds)
        right = _push(plan.right, right_preds)
        return Join(left, right, conjoin(sunk_condition))
    if isinstance(plan, UnionAll):
        inputs = [_push(child, list(pending)) for child in plan.inputs]
        # Keep the declared schema: a zero-branch union (empty files of
        # interest) has no input to infer it from.
        return UnionAll(inputs, plan.declared_output or list(plan.output))
    if isinstance(plan, (Sort, Distinct)):
        # σ commutes with ordering and with duplicate elimination (both are
        # row-preserving on the filtered columns), so predicates keep sinking.
        # Keeping them above here would strand the fused predicate above the
        # eventual mounts, degrading selective mounting to full-file reads.
        child = _push(plan.children()[0], pending)
        return plan.with_children([child])
    if isinstance(plan, (Limit, TopN)):
        # Limit (and its fused TopN form) picks rows by position: filtering
        # before it changes *which* rows survive, so it is a hard barrier.
        child = _push(plan.children()[0], [])
        rebuilt = plan.with_children([child])
        return _apply_pending(rebuilt, pending)
    # Project, Aggregate, scans, access paths: stop sinking here.
    children = [_push(child, []) for child in plan.children()]
    rebuilt = plan.with_children(children) if children else plan
    return _apply_pending(rebuilt, pending)


def _apply_pending(plan: LogicalPlan, pending: list[Expr]) -> LogicalPlan:
    predicate = conjoin(pending)
    if predicate is None:
        return plan
    return Select(plan, predicate)


# -- metadata-first join reordering ----------------------------------------------


def _is_join_tree(plan: LogicalPlan) -> bool:
    return isinstance(plan, Join)


def _flatten_join_tree(
    plan: LogicalPlan,
) -> tuple[list[LogicalPlan], list[Expr]]:
    """Split a tree of inner joins into base relations and join predicates."""
    if isinstance(plan, Join):
        left_rels, left_preds = _flatten_join_tree(plan.left)
        right_rels, right_preds = _flatten_join_tree(plan.right)
        predicates = left_preds + right_preds
        if plan.condition is not None:
            predicates.extend(conjuncts(plan.condition))
        return left_rels + right_rels, predicates
    return [plan], []


def _is_metadata_relation(relation: LogicalPlan, classify: ClassifyFn) -> bool:
    """A relation is metadata when every Scan leaf is a metadata table."""
    scans = [node for node in relation.walk() if isinstance(node, Scan)]
    if not scans:
        return False
    return all(classify(scan.table_name) for scan in scans)


def metadata_first_join_order(
    plan: LogicalPlan, classify: ClassifyFn
) -> LogicalPlan:
    """Apply the paper's join reordering recursively over the plan.

    Joins between metadata tables are collected together and pushed down
    (made innermost) so that the highest metadata-only branch — the future
    ``Q_f`` — is as large as possible.
    """
    if _is_join_tree(plan):
        relations, predicates = _flatten_join_tree(plan)
        relations = [
            metadata_first_join_order_children(rel, classify) for rel in relations
        ]
        return _rebuild_right_deep(relations, predicates, classify)
    return metadata_first_join_order_children(plan, classify)


def metadata_first_join_order_children(
    plan: LogicalPlan, classify: ClassifyFn
) -> LogicalPlan:
    children = [metadata_first_join_order(c, classify) for c in plan.children()]
    return plan.with_children(children) if children else plan


def _rebuild_right_deep(
    relations: list[LogicalPlan],
    predicates: list[Expr],
    classify: ClassifyFn,
) -> LogicalPlan:
    """Rebuild ``a1 ⋈ (a2 ⋈ (… (m1 ⋈ (… ⋈ mx))))`` placing each predicate at
    the lowest join where its columns are all in scope."""
    metadata_rels = [r for r in relations if _is_metadata_relation(r, classify)]
    actual_rels = [r for r in relations if not _is_metadata_relation(r, classify)]
    ordered = actual_rels + metadata_rels  # innermost = last
    remaining = list(predicates)

    current = ordered[-1]
    available = set(current.output_keys())
    for relation in reversed(ordered[:-1]):
        available |= set(relation.output_keys())
        applicable = [p for p in remaining if p.references() <= available]
        remaining = [p for p in remaining if p not in applicable]
        current = Join(relation, current, conjoin(applicable))
    if remaining:
        # Predicates referencing columns outside the join tree (defensive).
        current = Select(current, conjoin(remaining))
    return current


# -- Top-N fusion -------------------------------------------------------------


def fuse_top_n(plan: LogicalPlan) -> LogicalPlan:
    """Fuse ``Limit(Sort(…))`` (optionally through a Project) into ``TopN``.

    The binder stacks ``Limit(Project(Sort(child)))`` for an
    ``ORDER BY … LIMIT k`` query. Project is 1:1 row-preserving, so the limit
    commutes with it, and the sort keys reference pre-projection columns and
    therefore stay valid directly on the sort's child. ``LIMIT 0`` is left
    alone: :class:`~repro.db.plan.physical.PLimit` short-circuits it without
    executing the child at all, which a TopN operator would not.
    """
    children = [fuse_top_n(child) for child in plan.children()]
    rebuilt = plan.with_children(children) if children else plan
    if not isinstance(rebuilt, Limit) or rebuilt.count <= 0:
        return rebuilt
    child = rebuilt.child
    if isinstance(child, Sort):
        return TopN(child.child, child.keys, rebuilt.count)
    if isinstance(child, Project) and isinstance(child.child, Sort):
        sort = child.child
        return Project(TopN(sort.child, sort.keys, rebuilt.count), child.items)
    return rebuilt


# -- cost-based join orientation ----------------------------------------------


def cost_based_join_order(
    plan: LogicalPlan,
    stats: "StatisticsCatalog",
    classify: ClassifyFn,
) -> LogicalPlan:
    """Orient each join so the estimated-smaller side is the hash build side.

    The hash join builds on its *right* input (``_match_codes`` sorts the
    right side's codes and binary-searches left probes into them), so when
    cardinality estimates say the left side is smaller the join is flipped.
    Swaps only happen between sides with the same metadata classification:
    flipping an actual side past a metadata side would undo the paper's
    metadata-first ordering that stage decomposition cuts on.
    """
    children = [
        cost_based_join_order(child, stats, classify)
        for child in plan.children()
    ]
    rebuilt = plan.with_children(children) if children else plan
    if not isinstance(rebuilt, Join):
        return rebuilt
    left_meta = _is_metadata_relation(rebuilt.left, classify)
    right_meta = _is_metadata_relation(rebuilt.right, classify)
    if left_meta != right_meta:
        return rebuilt
    left_rows = stats.estimate_rows(rebuilt.left)
    right_rows = stats.estimate_rows(rebuilt.right)
    if left_rows < right_rows:
        return Join(rebuilt.right, rebuilt.left, rebuilt.condition)
    return rebuilt


# -- column pruning -----------------------------------------------------------


def prune_columns(plan: LogicalPlan) -> LogicalPlan:
    """Trim Scan outputs to the columns the rest of the plan references."""
    return _prune(plan, set(plan.output_keys()))


def _prune(plan: LogicalPlan, required: set[str]) -> LogicalPlan:
    if isinstance(plan, Scan):
        kept = [(key, dtype) for key, dtype in plan.output if key in required]
        if not kept:  # e.g. COUNT(*) needs some column to count rows
            kept = [plan.output[0]]
        return Scan(plan.table_name, plan.alias, kept)
    if isinstance(plan, Select):
        child = _prune(plan.child, required | plan.predicate.references())
        return Select(child, plan.predicate)
    if isinstance(plan, Project):
        needed: set[str] = set()
        for _, expr in plan.items:
            needed |= expr.references()
        return Project(_prune(plan.child, needed), plan.items)
    if isinstance(plan, Join):
        needed = set(required)
        if plan.condition is not None:
            needed |= plan.condition.references()
        left_keys = set(plan.left.output_keys())
        right_keys = set(plan.right.output_keys())
        left = _prune(plan.left, needed & left_keys)
        right = _prune(plan.right, needed & right_keys)
        return Join(left, right, plan.condition)
    if isinstance(plan, Aggregate):
        needed = set()
        for _, expr in plan.groups:
            needed |= expr.references()
        for spec in plan.aggs:
            if spec.arg is not None:
                needed |= spec.arg.references()
        if not needed and isinstance(plan.child, LogicalPlan):
            # COUNT(*) with no groups: child still must produce its row count.
            needed = set(plan.child.output_keys()[:1])
        return Aggregate(_prune(plan.child, needed), plan.groups, plan.aggs)
    if isinstance(plan, Sort):
        needed = set(required)
        for expr, _ in plan.keys:
            needed |= expr.references()
        return Sort(_prune(plan.child, needed), plan.keys)
    if isinstance(plan, TopN):
        needed = set(required)
        for expr, _ in plan.keys:
            needed |= expr.references()
        return TopN(_prune(plan.child, needed), plan.keys, plan.count)
    if isinstance(plan, (Limit, Distinct)):
        child = _prune(plan.children()[0], required)
        return plan.with_children([child])
    if isinstance(plan, SemiJoin):
        child = _prune(plan.child, required | plan.operand.references())
        subplan = _prune(plan.subplan, set(plan.subplan.output_keys()))
        return SemiJoin(child, plan.operand, subplan, plan.negated)
    if isinstance(plan, UnionAll):
        # Branch outputs must stay aligned with the union's schema, so prune
        # with the union's own keys (not the caller's subset) and keep the
        # declared schema for the zero-branch case.
        union_keys = set(plan.output_keys())
        inputs = [_prune(child, union_keys) for child in plan.inputs]
        return UnionAll(inputs, plan.declared_output or list(plan.output))
    # Access paths (ResultScan/CacheScan/Mount) keep their full output.
    children = [
        _prune(child, set(child.output_keys())) for child in plan.children()
    ]
    return plan.with_children(children) if children else plan
