"""Name resolution: untyped SQL AST → typed logical plan.

The binder assigns every base-table column a *qualified key* of the form
``alias.column`` (lower case). All plan expressions reference columns by
those keys, so batches flowing through the executor are self-describing and
join outputs never collide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..catalog import Catalog
from ..errors import BindError
from ..expr import (
    Arithmetic,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    FuncCall,
    Literal,
    Negate,
    Not,
)
from ..sql.ast import (
    EBetween,
    EBinary,
    EColumn,
    EFunc,
    EIn,
    ELiteral,
    ENode,
    EStar,
    ESubqueryIn,
    EUnary,
    OrderItem,
    SelectStmt,
    TableRef,
)
from ..sql.parser import AGGREGATE_FUNCTIONS
from ..types import DataType
from .logical import (
    Aggregate,
    AggSpec,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Select,
    SemiJoin,
    Sort,
)
from ..types import comparable


@dataclass
class Scope:
    """Visible column bindings at some point in the plan."""

    qualified: dict[str, DataType] = field(default_factory=dict)
    unqualified: dict[str, list[str]] = field(default_factory=dict)
    binding_order: list[tuple[str, list[tuple[str, DataType]]]] = field(
        default_factory=list
    )

    def add_binding(self, alias: str, columns: list[tuple[str, DataType]]) -> None:
        alias = alias.lower()
        self.binding_order.append((alias, columns))
        for name, dtype in columns:
            key = f"{alias}.{name.lower()}"
            self.qualified[key] = dtype
            self.unqualified.setdefault(name.lower(), []).append(key)

    def resolve(self, table: Optional[str], name: str) -> tuple[str, DataType]:
        if table is not None:
            key = f"{table.lower()}.{name.lower()}"
            dtype = self.qualified.get(key)
            if dtype is None:
                raise BindError(f"unknown column {table}.{name}")
            return key, dtype
        keys = self.unqualified.get(name.lower(), [])
        if not keys:
            raise BindError(f"unknown column {name}")
        if len(keys) > 1:
            raise BindError(
                f"ambiguous column {name}: could be any of {sorted(keys)}"
            )
        return keys[0], self.qualified[keys[0]]

    def columns_of(self, alias: str) -> list[tuple[str, DataType]]:
        alias = alias.lower()
        for bound_alias, columns in self.binding_order:
            if bound_alias == alias:
                return columns
        raise BindError(f"unknown table alias {alias}")


AggResolver = Callable[[ENode], Optional[Expr]]


def bind_scalar(
    node: ENode, scope: Scope, agg_resolver: Optional[AggResolver] = None
) -> Expr:
    """Bind one expression AST into a typed :class:`Expr`.

    ``agg_resolver`` intercepts sub-ASTs that must map to aggregate outputs
    or group keys when binding above an Aggregate node.
    """
    if agg_resolver is not None:
        resolved = agg_resolver(node)
        if resolved is not None:
            return resolved
    if isinstance(node, ELiteral):
        return Literal.infer(node.value)
    if isinstance(node, EColumn):
        key, dtype = scope.resolve(node.table, node.name)
        return ColumnRef(key, dtype)
    if isinstance(node, EBinary):
        left = bind_scalar(node.left, scope, agg_resolver)
        right = bind_scalar(node.right, scope, agg_resolver)
        if node.op in ("and", "or"):
            return BoolOp(node.op, [left, right])
        if node.op in ("=", "<>", "<", "<=", ">", ">="):
            return Comparison(node.op, left, right)
        return Arithmetic(node.op, left, right)
    if isinstance(node, EUnary):
        operand = bind_scalar(node.operand, scope, agg_resolver)
        if node.op == "not":
            return Not(operand)
        if isinstance(operand, Literal) and operand.dtype.is_numeric:
            return Literal(-operand.value, operand.dtype)
        return Negate(operand)
    if isinstance(node, EBetween):
        operand = bind_scalar(node.operand, scope, agg_resolver)
        low = bind_scalar(node.low, scope, agg_resolver)
        high = bind_scalar(node.high, scope, agg_resolver)
        bound: Expr = BoolOp(
            "and",
            [Comparison(">=", operand, low), Comparison("<=", operand, high)],
        )
        return Not(bound) if node.negated else bound
    if isinstance(node, EIn):
        operand = bind_scalar(node.operand, scope, agg_resolver)
        comparisons: list[Expr] = [
            Comparison("=", operand, bind_scalar(item, scope, agg_resolver))
            for item in node.items
        ]
        bound = comparisons[0] if len(comparisons) == 1 else BoolOp("or", comparisons)
        return Not(bound) if node.negated else bound
    if isinstance(node, EFunc):
        if node.name in AGGREGATE_FUNCTIONS:
            raise BindError(
                f"aggregate {node.name.upper()} is not allowed in this context"
            )
        if len(node.args) != 1:
            raise BindError(f"{node.name} takes exactly one argument")
        return FuncCall(node.name, bind_scalar(node.args[0], scope, agg_resolver))
    if isinstance(node, EStar):
        raise BindError("* is only allowed in the select list")
    if isinstance(node, ESubqueryIn):
        raise BindError(
            "IN (SELECT ...) is only supported as a top-level WHERE conjunct"
        )
    raise BindError(f"cannot bind expression node {node!r}")


def _contains_aggregate(node: ENode) -> bool:
    if isinstance(node, EFunc):
        if node.name in AGGREGATE_FUNCTIONS:
            return True
        return any(_contains_aggregate(arg) for arg in node.args)
    if isinstance(node, EBinary):
        return _contains_aggregate(node.left) or _contains_aggregate(node.right)
    if isinstance(node, EUnary):
        return _contains_aggregate(node.operand)
    if isinstance(node, EBetween):
        return any(
            _contains_aggregate(x) for x in (node.operand, node.low, node.high)
        )
    if isinstance(node, EIn):
        return _contains_aggregate(node.operand) or any(
            _contains_aggregate(item) for item in node.items
        )
    return False


def _agg_result_type(func: str, arg: Optional[Expr]) -> DataType:
    if func == "count":
        return DataType.INT64
    assert arg is not None
    if func == "avg":
        return DataType.FLOAT64
    if func == "sum":
        return DataType.FLOAT64 if arg.dtype is DataType.FLOAT64 else DataType.INT64
    # min / max keep their argument's type
    return arg.dtype


class _AggregationContext:
    """Collects group keys and aggregate specs while binding a grouped query."""

    def __init__(self, scope: Scope, group_asts: list[ENode]) -> None:
        self.scope = scope
        self.group_items: list[tuple[ENode, str, Expr]] = []
        self.aggs: list[AggSpec] = []
        self._agg_keys: dict[tuple, str] = {}
        for i, ast in enumerate(group_asts):
            expr = bind_scalar(ast, scope)
            if isinstance(expr, ColumnRef):
                key = expr.key
            else:
                key = f"group_{i}"
            self.group_items.append((ast, key, expr))

    def resolver(self) -> AggResolver:
        def resolve(node: ENode) -> Optional[Expr]:
            for ast, key, expr in self.group_items:
                if node == ast:
                    return ColumnRef(key, expr.dtype)
            if isinstance(node, EColumn):
                key_name, dtype = self.scope.resolve(node.table, node.name)
                for _, key, expr in self.group_items:
                    if key == key_name:
                        return ColumnRef(key, expr.dtype)
                raise BindError(
                    f"column {node.name} must appear in GROUP BY or an aggregate"
                )
            if isinstance(node, EFunc) and node.name in AGGREGATE_FUNCTIONS:
                return self._bind_aggregate(node)
            return None

        return resolve

    def _bind_aggregate(self, node: EFunc) -> Expr:
        if node.star:
            arg: Optional[Expr] = None
            signature = (node.name, "*", node.distinct)
        else:
            if len(node.args) != 1:
                raise BindError(f"{node.name} takes exactly one argument")
            arg = bind_scalar(node.args[0], self.scope)
            signature = (node.name, repr(arg), node.distinct)
        existing = self._agg_keys.get(signature)
        if existing is not None:
            spec = next(s for s in self.aggs if s.out_name == existing)
            return ColumnRef(existing, spec.dtype)
        out_name = f"agg_{len(self.aggs)}"
        dtype = _agg_result_type(node.name, arg)
        self.aggs.append(AggSpec(node.name, arg, out_name, node.distinct, dtype))
        self._agg_keys[signature] = out_name
        return ColumnRef(out_name, dtype)


def _output_name(node: ENode, alias: Optional[str], position: int) -> str:
    if alias:
        return alias.lower()
    if isinstance(node, EColumn):
        return node.name.lower()
    if isinstance(node, EFunc):
        return node.name.lower()
    return f"col{position}"


def _split_subquery_conjuncts(
    node: ENode,
) -> tuple[Optional[ENode], list[ESubqueryIn]]:
    """Separate top-level ``IN (SELECT ...)`` conjuncts from the rest of a
    WHERE expression."""
    if isinstance(node, ESubqueryIn):
        return None, [node]
    if isinstance(node, EBinary) and node.op == "and":
        left_plain, left_subs = _split_subquery_conjuncts(node.left)
        right_plain, right_subs = _split_subquery_conjuncts(node.right)
        if left_plain is None:
            plain = right_plain
        elif right_plain is None:
            plain = left_plain
        else:
            plain = EBinary("and", left_plain, right_plain)
        return plain, left_subs + right_subs
    return node, []


class Binder:
    """Binds SELECT statements against a catalog."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    def bind(self, stmt: SelectStmt) -> LogicalPlan:
        scope = Scope()
        plan = self._bind_from(stmt, scope)
        if stmt.where is not None:
            plain, subquery_tests = _split_subquery_conjuncts(stmt.where)
            if plain is not None:
                predicate = bind_scalar(plain, scope)
                if predicate.dtype is not DataType.BOOL:
                    raise BindError("WHERE predicate must be boolean")
                plan = Select(plan, predicate)
            for test in subquery_tests:
                plan = self._bind_subquery_in(plan, test, scope)

        aggregated = bool(stmt.group_by) or any(
            _contains_aggregate(item.expr)
            for item in stmt.items
            if not isinstance(item.expr, EStar)
        ) or (stmt.having is not None)

        agg_resolver: Optional[AggResolver] = None
        if aggregated:
            context = _AggregationContext(scope, stmt.group_by)
            agg_resolver = context.resolver()
            items = self._bind_items(stmt, scope, agg_resolver)
            having_expr = None
            if stmt.having is not None:
                having_expr = bind_scalar(stmt.having, scope, agg_resolver)
                if having_expr.dtype is not DataType.BOOL:
                    raise BindError("HAVING predicate must be boolean")
            order_keys = self._bind_order(stmt, scope, agg_resolver, items)
            plan = Aggregate(
                plan,
                [(key, expr) for _, key, expr in context.group_items],
                context.aggs,
            )
            if having_expr is not None:
                plan = Select(plan, having_expr)
        else:
            items = self._bind_items(stmt, scope, None)
            order_keys = self._bind_order(stmt, scope, None, items)

        if order_keys:
            plan = Sort(plan, order_keys)
        plan = Project(plan, items)
        if stmt.distinct:
            plan = Distinct(plan)
        if stmt.limit is not None:
            # The parser already rejects a negative literal; this guards
            # programmatically built statements. LIMIT 0 is a legal empty
            # result carrying the query's schema.
            if stmt.limit < 0:
                raise BindError(
                    f"LIMIT must be a non-negative integer, got {stmt.limit}"
                )
            plan = Limit(plan, stmt.limit)
        return plan

    def _bind_subquery_in(
        self, plan: LogicalPlan, test: ESubqueryIn, scope: Scope
    ) -> SemiJoin:
        operand = bind_scalar(test.operand, scope)
        subplan = Binder(self.catalog).bind(test.subquery)
        if len(subplan.output) != 1:
            raise BindError(
                "IN subquery must select exactly one column, got "
                f"{len(subplan.output)}"
            )
        sub_dtype = subplan.output[0][1]
        if not comparable(operand.dtype, sub_dtype):
            raise BindError(
                f"cannot test {operand.dtype.value} membership in a "
                f"{sub_dtype.value} subquery"
            )
        return SemiJoin(plan, operand, subplan, test.negated)

    # -- FROM clause ------------------------------------------------------------

    def _make_scan(self, ref: TableRef, scope: Scope) -> Scan:
        table = self.catalog.table(ref.name)
        alias = ref.binding
        if any(alias == bound for bound, _ in scope.binding_order):
            raise BindError(f"duplicate table alias {alias!r}")
        columns = [
            (col.name.lower(), col.dtype) for col in table.schema.columns
        ]
        scope.add_binding(alias, columns)
        output = [
            (f"{alias}.{name}", dtype) for name, dtype in columns
        ]
        return Scan(table.schema.name, alias, output)

    def _bind_from(self, stmt: SelectStmt, scope: Scope) -> LogicalPlan:
        if not stmt.from_tables:
            raise BindError("FROM clause is required")
        plan: LogicalPlan = self._make_scan(stmt.from_tables[0], scope)
        for ref in stmt.from_tables[1:]:
            scan = self._make_scan(ref, scope)
            plan = Join(plan, scan, None)
        for join in stmt.joins:
            scan = self._make_scan(join.table, scope)
            condition = None
            if join.condition is not None:
                condition = bind_scalar(join.condition, scope)
                if condition.dtype is not DataType.BOOL:
                    raise BindError("JOIN condition must be boolean")
            plan = Join(plan, scan, condition)
        return plan

    # -- select list ---------------------------------------------------------

    def _bind_items(
        self,
        stmt: SelectStmt,
        scope: Scope,
        agg_resolver: Optional[AggResolver],
    ) -> list[tuple[str, Expr]]:
        items: list[tuple[str, Expr]] = []
        for position, item in enumerate(stmt.items):
            if isinstance(item.expr, EStar):
                items.extend(self._expand_star(item.expr, scope, agg_resolver))
                continue
            bound = bind_scalar(item.expr, scope, agg_resolver)
            items.append((_output_name(item.expr, item.alias, position), bound))
        # Disambiguate duplicate output names deterministically.
        seen: dict[str, int] = {}
        unique: list[tuple[str, Expr]] = []
        for name, expr in items:
            count = seen.get(name, 0)
            seen[name] = count + 1
            unique.append((name if count == 0 else f"{name}_{count}", expr))
        return unique

    def _expand_star(
        self,
        star: EStar,
        scope: Scope,
        agg_resolver: Optional[AggResolver],
    ) -> list[tuple[str, Expr]]:
        if agg_resolver is not None:
            raise BindError("* cannot be combined with GROUP BY or aggregates")
        bindings = scope.binding_order
        if star.table is not None:
            bindings = [(star.table.lower(), scope.columns_of(star.table))]
        multiple = len(bindings) > 1
        expanded: list[tuple[str, Expr]] = []
        for alias, columns in bindings:
            for name, dtype in columns:
                key = f"{alias}.{name}"
                ambiguous = multiple and len(scope.unqualified.get(name, [])) > 1
                out = f"{alias}.{name}" if ambiguous else name
                expanded.append((out, ColumnRef(key, dtype)))
        return expanded

    # -- ORDER BY ----------------------------------------------------------------

    def _bind_order(
        self,
        stmt: SelectStmt,
        scope: Scope,
        agg_resolver: Optional[AggResolver],
        items: list[tuple[str, Expr]],
    ) -> list[tuple[Expr, bool]]:
        keys: list[tuple[Expr, bool]] = []
        by_alias = {name: expr for name, expr in items}
        for order in stmt.order_by:
            expr = self._bind_order_expr(order, scope, agg_resolver, by_alias)
            keys.append((expr, order.ascending))
        return keys

    def _bind_order_expr(
        self,
        order: OrderItem,
        scope: Scope,
        agg_resolver: Optional[AggResolver],
        by_alias: dict[str, Expr],
    ) -> Expr:
        node = order.expr
        if isinstance(node, EColumn) and node.table is None:
            alias_match = by_alias.get(node.name.lower())
            if alias_match is not None:
                return alias_match
        return bind_scalar(node, scope, agg_resolver)
