"""Logical planning, rewriting, and physical execution."""
