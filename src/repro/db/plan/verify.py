"""Structural plan verification — machine-checked invariants per pass.

Every rewrite pass in the optimizer pipeline (and the run-time ALi rewrite,
see :mod:`repro.core.verify`) is expected to preserve a small set of
invariants; this module checks them and raises
:class:`~repro.db.errors.PlanInvariantError` naming the offending pass and
node when one is violated:

* **column resolution** — every column an expression references is produced
  by the node's children (a pushed-down selection, for example, may only
  reference columns available at its new position),
* **type consistency** — a :class:`~repro.db.expr.ColumnRef`'s declared type
  matches the type the child schema assigns that key,
* **schema shape** — node outputs are well-formed ``(key, DataType)`` lists
  with no duplicate keys, and structural nodes (Select/Sort/Limit/Distinct)
  pass their child schema through unchanged,
* **union alignment** — every :class:`~repro.db.plan.logical.UnionAll`
  branch produces exactly the union's declared schema (rule (1)'s per-file
  branches must agree before they are concatenated),
* **access-path locality** — a fused Mount/CacheScan predicate references
  only the mounted file's own alias,
* **interval covering** — a Mount/CacheScan pruning interval must be no
  narrower than the hull its fused predicate implies on the time column
  (selective mounting skips records outside the interval, so a narrower one
  would silently drop admissible rows),
* **pass-level schema preservation** — a rewrite pass must not change the
  (key → type) mapping of the plan root (:func:`verify_pass`),
* **lowering fidelity** — the physical operator tree produces exactly the
  logical root's output keys (:func:`verify_physical`).

Verification is opt-in via the ``verify_plans`` flag on
:class:`~repro.db.database.Database` / the two-stage executors / the CLI's
``--verify-plans``; the ``REPRO_VERIFY_PLANS`` environment variable flips
the default (CI runs the whole test suite with it on).
"""

from __future__ import annotations

import os

from ..errors import PlanInvariantError
from ..expr import ColumnRef, Expr
from ..interval import covers, interval_from_predicate
from ..types import DataType
from .logical import (
    Aggregate,
    CacheScan,
    Distinct,
    Join,
    Limit,
    LogicalPlan,
    Mount,
    OutputSchema,
    Project,
    ResultScan,
    Scan,
    Select,
    SemiJoin,
    Sort,
    TopN,
    UnionAll,
)
from .physical import (
    PAggregate,
    PCacheScan,
    PDistinct,
    PFilter,
    PHashJoin,
    PIndexJoin,
    PIndexScan,
    PLimit,
    PMount,
    PNestedLoopJoin,
    PProject,
    PResultScan,
    PSemiJoin,
    PSort,
    PTableScan,
    PTopN,
    PUnionAll,
    PhysicalOp,
)

ENV_FLAG = "REPRO_VERIFY_PLANS"


def verify_enabled_default() -> bool:
    """Whether plan verification defaults to on (``REPRO_VERIFY_PLANS``)."""
    value = os.environ.get(ENV_FLAG, "").strip().lower()
    return value not in ("", "0", "false", "no", "off")


# -- expression checks ---------------------------------------------------------


def _walk_expr(expr: Expr):
    yield expr
    for child in expr.children():
        yield from _walk_expr(child)


def _check_expr(
    expr: Expr,
    scope: dict[str, DataType],
    pass_name: str,
    node: LogicalPlan,
    role: str,
) -> None:
    """Every ColumnRef in ``expr`` must resolve in ``scope`` with its type."""
    for part in _walk_expr(expr):
        if not isinstance(part, ColumnRef):
            continue
        produced = scope.get(part.key)
        if produced is None:
            raise PlanInvariantError(
                pass_name,
                f"{role} references column {part.key!r} which no child "
                f"produces (available: {sorted(scope)})",
                node,
            )
        if produced is not part.dtype:
            raise PlanInvariantError(
                pass_name,
                f"{role} references {part.key!r} as {part.dtype.value} but "
                f"the child schema declares {produced.value}",
                node,
            )


def _scope_of(*schemas: OutputSchema) -> dict[str, DataType]:
    scope: dict[str, DataType] = {}
    for schema in schemas:
        for key, dtype in schema:
            scope[key] = dtype
    return scope


# -- node checks -------------------------------------------------------------


def _check_output_shape(node: LogicalPlan, pass_name: str) -> None:
    output = getattr(node, "output", None)
    if not isinstance(output, list) or not output:
        raise PlanInvariantError(
            pass_name, "node has no output schema", node
        )
    seen: set[str] = set()
    for entry in output:
        if (
            not isinstance(entry, tuple)
            or len(entry) != 2
            or not isinstance(entry[0], str)
            or not isinstance(entry[1], DataType)
        ):
            raise PlanInvariantError(
                pass_name,
                f"malformed output entry {entry!r} (want (key, DataType))",
                node,
            )
        key = entry[0]
        if key in seen:
            raise PlanInvariantError(
                pass_name, f"duplicate output key {key!r}", node
            )
        seen.add(key)


def _require_same_schema(
    node: LogicalPlan,
    actual: OutputSchema,
    expected: OutputSchema,
    pass_name: str,
    what: str,
) -> None:
    if list(actual) != list(expected):
        raise PlanInvariantError(
            pass_name,
            f"{what}: schema {_fmt(actual)} != expected {_fmt(expected)}",
            node,
        )


def _fmt(schema: OutputSchema) -> str:
    return "[" + ", ".join(f"{k}:{t.value}" for k, t in schema) + "]"


def _check_node(node: LogicalPlan, pass_name: str) -> None:
    for child in node.children():
        _check_node(child, pass_name)
    _check_output_shape(node, pass_name)

    if isinstance(node, Select):
        scope = _scope_of(node.child.output)
        _check_expr(node.predicate, scope, pass_name, node, "selection")
        if node.predicate.dtype is not DataType.BOOL:
            raise PlanInvariantError(
                pass_name,
                f"selection predicate has type {node.predicate.dtype.value}, "
                "expected bool",
                node,
            )
        _require_same_schema(
            node, node.output, node.child.output, pass_name,
            "Select must pass its child schema through",
        )
    elif isinstance(node, Project):
        scope = _scope_of(node.child.output)
        for name, expr in node.items:
            _check_expr(expr, scope, pass_name, node, f"projection {name!r}")
    elif isinstance(node, Join):
        left, right = node.left.output, node.right.output
        overlap = {k for k, _ in left} & {k for k, _ in right}
        if overlap:
            raise PlanInvariantError(
                pass_name,
                f"join sides both produce {sorted(overlap)}",
                node,
            )
        if node.condition is not None:
            _check_expr(
                node.condition, _scope_of(left, right), pass_name, node,
                "join condition",
            )
            if node.condition.dtype is not DataType.BOOL:
                raise PlanInvariantError(
                    pass_name, "join condition must be boolean", node
                )
        _require_same_schema(
            node, node.output, list(left) + list(right), pass_name,
            "Join output must be left schema + right schema",
        )
    elif isinstance(node, Aggregate):
        scope = _scope_of(node.child.output)
        for name, expr in node.groups:
            _check_expr(expr, scope, pass_name, node, f"group key {name!r}")
        for spec in node.aggs:
            if spec.arg is not None:
                _check_expr(
                    spec.arg, scope, pass_name, node,
                    f"aggregate {spec.label()}",
                )
    elif isinstance(node, Sort):
        scope = _scope_of(node.child.output)
        for expr, _asc in node.keys:
            _check_expr(expr, scope, pass_name, node, "sort key")
        _require_same_schema(
            node, node.output, node.child.output, pass_name,
            "Sort must pass its child schema through",
        )
    elif isinstance(node, TopN):
        scope = _scope_of(node.child.output)
        for expr, _asc in node.keys:
            _check_expr(expr, scope, pass_name, node, "top-n key")
        if not node.keys:
            raise PlanInvariantError(
                pass_name, "TopN requires at least one sort key", node
            )
        if node.count < 0:
            raise PlanInvariantError(
                pass_name, f"TopN count must be >= 0, got {node.count}", node
            )
        _require_same_schema(
            node, node.output, node.child.output, pass_name,
            "TopN must pass its child schema through",
        )
    elif isinstance(node, (Limit, Distinct)):
        (child,) = node.children()
        if isinstance(node, Limit) and node.count < 0:
            raise PlanInvariantError(
                pass_name, f"Limit count must be >= 0, got {node.count}", node
            )
        _require_same_schema(
            node, node.output, child.output, pass_name,
            f"{type(node).__name__} must pass its child schema through",
        )
    elif isinstance(node, SemiJoin):
        scope = _scope_of(node.child.output)
        _check_expr(node.operand, scope, pass_name, node, "semi-join operand")
        if len(node.subplan.output) != 1:
            raise PlanInvariantError(
                pass_name,
                "semi-join subplan must produce exactly one column, got "
                f"{len(node.subplan.output)}",
                node,
            )
        _require_same_schema(
            node, node.output, node.child.output, pass_name,
            "SemiJoin must pass its child schema through",
        )
    elif isinstance(node, UnionAll):
        for i, branch in enumerate(node.inputs):
            _require_same_schema(
                node, branch.output, node.output, pass_name,
                f"union branch {i} schema drifted from the union's",
            )
    elif isinstance(node, (Mount, CacheScan)):
        if node.predicate is not None:
            prefix = f"{node.alias}."
            for part in _walk_expr(node.predicate):
                if isinstance(part, ColumnRef) and not part.key.startswith(prefix):
                    raise PlanInvariantError(
                        pass_name,
                        f"fused predicate references {part.key!r}, outside "
                        f"the mounted file's alias {node.alias!r}",
                        node,
                    )
            if node.predicate.dtype is not DataType.BOOL:
                raise PlanInvariantError(
                    pass_name, "fused predicate must be boolean", node
                )
        if node.interval is not None:
            # Selective mounting skips records outside the pruning interval,
            # so an interval narrower than the fused predicate's hull would
            # silently drop rows the query is entitled to. The hull is
            # recomputed here, independently of the rewrite that attached it.
            if node.interval_column is None:
                raise PlanInvariantError(
                    pass_name,
                    "pruning interval set without interval_column",
                    node,
                )
            hull = interval_from_predicate(
                node.predicate, f"{node.alias}.{node.interval_column}"
            )
            if not covers(node.interval, hull):
                raise PlanInvariantError(
                    pass_name,
                    f"pruning interval {node.interval} is narrower than the "
                    f"fused predicate's hull {hull}: selective extraction "
                    "would skip records the predicate admits",
                    node,
                )
    elif isinstance(node, (Scan, ResultScan)):
        pass  # output-shape check above is all a leaf needs
    # Unknown node types: structural checks above still apply to children.


def verify_plan(plan: LogicalPlan, pass_name: str) -> LogicalPlan:
    """Check every structural invariant of ``plan``; returns it unchanged.

    Raises :class:`~repro.db.errors.PlanInvariantError` naming ``pass_name``
    and the offending node on the first violation.
    """
    _check_node(plan, pass_name)
    return plan


def verify_pass(
    before: LogicalPlan, after: LogicalPlan, pass_name: str
) -> LogicalPlan:
    """Check ``after`` structurally *and* that the pass preserved the root
    schema: same keys mapped to the same types (order may change below a
    projection, e.g. join reordering; the key→type mapping may not).
    """
    verify_plan(after, pass_name)
    before_map = _scope_of(before.output)
    after_map = _scope_of(after.output)
    if before_map != after_map:
        raise PlanInvariantError(
            pass_name,
            "pass changed the plan's output schema: "
            f"{_fmt(before.output)} -> {_fmt(after.output)}",
            after,
        )
    return after


# -- physical lowering ---------------------------------------------------------


def physical_output_keys(op: PhysicalOp) -> list[str]:
    """The qualified keys the physical operator's result batch carries."""
    if isinstance(op, (PTableScan, PIndexScan)):
        return [key for _, key, _ in op.columns]
    if isinstance(op, (PFilter, PSort, PLimit, PDistinct)):
        return physical_output_keys(op.child)
    if isinstance(op, PTopN):
        return list(op.output_names)
    if isinstance(op, PProject):
        return [name for name, _ in op.items]
    if isinstance(op, (PHashJoin, PNestedLoopJoin)):
        return physical_output_keys(op.left) + physical_output_keys(op.right)
    if isinstance(op, PIndexJoin):
        probe = physical_output_keys(op.probe)
        stored = [key for _, key, _ in op.stored_columns]
        return probe + stored if op.probe_on_left else stored + probe
    if isinstance(op, PSemiJoin):
        return physical_output_keys(op.child)
    if isinstance(op, PAggregate):
        keys = [name for name, _ in op.groups]
        keys += [spec.out_name for spec in op.aggs]
        return keys
    if isinstance(op, PUnionAll):
        return list(op.output_names)
    if isinstance(op, PResultScan):
        return list(op.expected_keys)
    if isinstance(op, (PMount, PCacheScan)):
        return list(op.output_names)
    raise PlanInvariantError(
        "physical-lowering",
        f"unknown physical operator {type(op).__name__}",
        op,
    )


def verify_physical(
    physical: PhysicalOp,
    logical: LogicalPlan,
    pass_name: str = "physical-lowering",
) -> PhysicalOp:
    """The lowered operator tree must produce exactly the logical output."""
    produced = physical_output_keys(physical)
    expected = logical.output_keys()
    if produced != expected:
        raise PlanInvariantError(
            pass_name,
            f"physical plan produces {produced}, logical plan declares "
            f"{expected}",
            physical,
        )
    return physical
