"""Physical operators (operator-at-a-time, MonetDB style).

Each operator materializes its full result as a :class:`ColumnBatch`. Base
table and index accesses go through the :class:`BufferManager` so cold/hot
experiments can charge simulated disk reads.

The mount and cache-scan access paths delegate to a :class:`Mounter`
implementation supplied by the two-stage layer, keeping the engine itself
ignorant of file formats and cache policies.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Optional, Protocol

import numpy as np

from ..buffer import BufferManager, index_object_name, table_object_name
from ..catalog import Catalog
from ..column import Column
from ..errors import ExecutionError
from ..expr import Expr
from ..index import HashIndex
from ..table import ColumnBatch, concat_batches
from ..types import DataType
from .kernels import (
    combined_codes,
    first_occurrence_indices,
    group_by_codes,
    join_codes,
    sort_indices,
    top_n_indices,
)
from .logical import AggSpec


class GovernorHook(Protocol):
    """The two-stage layer's budget/cancellation hook.

    :meth:`checkpoint` is called between physical operators (the kernel
    loop's safe points); it raises a typed error to stop the query. The
    engine knows nothing about budgets — only that a checkpoint may abort.
    """

    def checkpoint(self) -> None:
        ...


class Mounter(Protocol):
    """The two-stage layer's hook for ALi access paths."""

    def mount_file(
        self,
        uri: str,
        table_name: str,
        alias: str,
        predicate: Optional[Expr],
    ) -> ColumnBatch:
        """Extract/transform/ingest one file; return its (filtered) tuples."""
        ...

    def cache_scan(
        self,
        uri: str,
        table_name: str,
        alias: str,
        predicate: Optional[Expr],
    ) -> ColumnBatch:
        """Serve one file's (filtered) tuples from the ingestion cache."""
        ...


class BranchMonitor(Protocol):
    """The two-stage layer's Top-N early-termination hook.

    A union whose branches are per-file access paths consults the monitor:
    ``schedule`` picks the consumption order (most promising time hull
    first), ``should_skip`` asks whether a branch provably cannot contribute
    to the running Top-N threshold, ``observe`` feeds each produced branch
    into the threshold, and ``note_result`` lets the Top-N operator report
    its final rows so the skips can be re-verified against the true answer.
    """

    def schedule(self, n: int) -> list[int]:
        ...

    def should_skip(self, index: int) -> bool:
        ...

    def observe(self, index: int, batch: ColumnBatch) -> None:
        ...

    def note_result(self, primary: Expr, batch: ColumnBatch) -> None:
        ...


@dataclass
class OpProfile:
    """One operator's contribution to a query (EXPLAIN-ANALYZE style)."""

    op: str
    detail: str
    rows: int
    seconds: float  # inclusive of children
    depth: int


@dataclass
class ExecStats:
    """Counters accumulated while executing one plan."""

    rows_scanned: int = 0
    rows_joined: int = 0
    files_mounted: int = 0
    cache_scans: int = 0
    operators_run: int = 0
    profile: list[OpProfile] = field(default_factory=list)

    def render_profile(self) -> str:
        """The operator tree with per-node rows and inclusive times."""
        lines = []
        for entry in self.profile:
            indent = "  " * entry.depth
            lines.append(
                f"{indent}{entry.op}{entry.detail}  "
                f"[{entry.rows} rows, {entry.seconds * 1000:.2f} ms]"
            )
        return "\n".join(lines)


@dataclass
class ExecutionContext:
    """Everything operators need at run time."""

    catalog: Catalog
    buffers: Optional[BufferManager] = None
    mounter: Optional[Mounter] = None
    governor: Optional[GovernorHook] = None
    results: dict[str, ColumnBatch] = field(default_factory=dict)
    stats: ExecStats = field(default_factory=ExecStats)
    profiling: bool = False
    # Installed by the two-stage executor for Top-N queries over a rule-(1)
    # union; None means unions execute every branch in plan order.
    branch_monitor: Optional[BranchMonitor] = None
    _profile_depth: int = 0

    def touch(self, name: str, nbytes: int) -> None:
        if self.buffers is not None:
            self.buffers.touch(name, nbytes)


class PhysicalOp:
    """Base class; ``execute`` returns the operator's full result.

    When the context has ``profiling`` on, every operator contributes an
    :class:`OpProfile` entry (pre-order, with depth) so the full executed
    tree can be rendered with rows and inclusive wall times.
    """

    def execute(self, ctx: ExecutionContext) -> ColumnBatch:
        if ctx.governor is not None:
            # Kernel-loop safe point: between materializations is the one
            # place every operator passes through, so deadline/cancellation
            # latency is bounded by a single operator, not a whole stage.
            ctx.governor.checkpoint()
        ctx.stats.operators_run += 1
        if not ctx.profiling:
            return self._run(ctx)
        entry = OpProfile(
            op=type(self).__name__,
            detail=self._profile_detail(),
            rows=0,
            seconds=0.0,
            depth=ctx._profile_depth,
        )
        ctx.stats.profile.append(entry)
        ctx._profile_depth += 1
        started = _time.perf_counter()
        try:
            batch = self._run(ctx)
        finally:
            ctx._profile_depth -= 1
        entry.seconds = _time.perf_counter() - started
        entry.rows = batch.num_rows
        return batch

    def _profile_detail(self) -> str:
        for attr in ("table_name", "uri", "tag"):
            value = getattr(self, attr, None)
            if value is not None:
                return f"({value})"
        return ""

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        raise NotImplementedError


@dataclass
class PTableScan(PhysicalOp):
    """Scan a base table, producing columns under qualified keys."""

    table_name: str
    alias: str
    columns: list[tuple[str, str, DataType]]  # (column, qualified key, dtype)

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        table = ctx.catalog.table(self.table_name)
        names: list[str] = []
        cols: list[Column] = []
        for column_name, key, _ in self.columns:
            column = table.batch.column(column_name)
            ctx.touch(
                table_object_name(self.table_name, column_name), column.nbytes()
            )
            names.append(key)
            cols.append(column)
        batch = ColumnBatch(names, cols)
        ctx.stats.rows_scanned += batch.num_rows
        return batch


@dataclass
class PIndexScan(PhysicalOp):
    """Index scan: fetch the rows matching an equality key via a key index.

    One of the two classic access paths the paper starts from ("an access
    path is either a scan or an index-scan", §3). The residual predicate
    holds whatever conjuncts the index key did not absorb.
    """

    table_name: str
    alias: str
    columns: list[tuple[str, str, DataType]]  # (column, qualified key, dtype)
    index: HashIndex
    key: object
    residual: Optional[Expr] = None

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        ctx.touch(
            index_object_name(self.table_name, self.index.column_names),
            self.index.nbytes(),
        )
        rowids = self.index.lookup(self.key)
        table = ctx.catalog.table(self.table_name)
        names: list[str] = []
        cols: list[Column] = []
        for column_name, key, _ in self.columns:
            column = table.batch.column(column_name)
            ctx.touch(
                table_object_name(self.table_name, column_name), column.nbytes()
            )
            names.append(key)
            cols.append(column.take(rowids))
        batch = ColumnBatch(names, cols)
        ctx.stats.rows_scanned += batch.num_rows
        if self.residual is not None:
            mask = self.residual.evaluate(batch).values
            batch = batch.filter(mask)
        return batch


@dataclass
class PFilter(PhysicalOp):
    child: PhysicalOp
    predicate: Expr

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        batch = self.child.execute(ctx)
        mask = self.predicate.evaluate(batch).values
        return batch.filter(mask)


@dataclass
class PProject(PhysicalOp):
    child: PhysicalOp
    items: list[tuple[str, Expr]]

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        batch = self.child.execute(ctx)
        names = [name for name, _ in self.items]
        columns = [expr.evaluate(batch) for _, expr in self.items]
        return ColumnBatch(names, columns)


@dataclass
class PHashJoin(PhysicalOp):
    """Equi hash join; optional residual predicate for mixed conditions.

    ``index_sideload`` lists key indexes the engine consults for this join
    (MonetDB style: "the foreign key indexes in Ei have to be brought into
    main memory to compute the joins", §4). They are touched in the buffer
    manager — charging cold-run I/O — without changing the join result.
    """

    left: PhysicalOp
    right: PhysicalOp
    left_keys: list[str]
    right_keys: list[str]
    residual: Optional[Expr] = None
    index_sideload: list[HashIndex] = field(default_factory=list)

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        for index in self.index_sideload:
            ctx.touch(
                index_object_name(index.table_name, index.column_names),
                index.nbytes(),
            )
        left_batch = self.left.execute(ctx)
        right_batch = self.right.execute(ctx)
        left_cols = [left_batch.column(k) for k in self.left_keys]
        right_cols = [right_batch.column(k) for k in self.right_keys]
        left_codes, right_codes = join_codes(left_cols, right_cols)
        left_idx, right_idx = _match_codes(left_codes, right_codes)
        joined = ColumnBatch(
            left_batch.names + right_batch.names,
            [c.take(left_idx) for c in left_batch.columns]
            + [c.take(right_idx) for c in right_batch.columns],
        )
        if self.residual is not None:
            mask = self.residual.evaluate(joined).values
            joined = joined.filter(mask)
        ctx.stats.rows_joined += joined.num_rows
        return joined


def _match_codes(
    left_codes: np.ndarray, right_codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """All (left, right) index pairs with equal codes (inner-join core)."""
    order = np.argsort(right_codes, kind="stable")
    sorted_codes = right_codes[order]
    starts = np.searchsorted(sorted_codes, left_codes, side="left")
    ends = np.searchsorted(sorted_codes, left_codes, side="right")
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    left_idx = np.repeat(np.arange(len(left_codes)), counts)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    within = np.arange(total) - np.repeat(offsets, counts)
    right_idx = order[np.repeat(starts, counts) + within]
    return left_idx, right_idx


@dataclass
class PNestedLoopJoin(PhysicalOp):
    """Cartesian product with an optional filter (non-equi conditions)."""

    left: PhysicalOp
    right: PhysicalOp
    condition: Optional[Expr] = None

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        left_batch = self.left.execute(ctx)
        right_batch = self.right.execute(ctx)
        n_left, n_right = left_batch.num_rows, right_batch.num_rows
        left_idx = np.repeat(np.arange(n_left), n_right)
        right_idx = np.tile(np.arange(n_right), n_left)
        joined = ColumnBatch(
            left_batch.names + right_batch.names,
            [c.take(left_idx) for c in left_batch.columns]
            + [c.take(right_idx) for c in right_batch.columns],
        )
        if self.condition is not None:
            mask = self.condition.evaluate(joined).values
            joined = joined.filter(mask)
        ctx.stats.rows_joined += joined.num_rows
        return joined


@dataclass
class PIndexJoin(PhysicalOp):
    """Join by probing a pre-built key index of a stored table.

    This is how eager ingestion (Ei) pays for its indexes at query time: the
    index object is touched in the buffer manager, so a cold run charges its
    full size — the paper's "foreign key indexes have to be brought into main
    memory to compute the joins".
    """

    probe: PhysicalOp
    probe_keys: list[str]
    table_name: str
    alias: str
    stored_columns: list[tuple[str, str, DataType]]
    index: HashIndex
    stored_predicate: Optional[Expr] = None
    residual: Optional[Expr] = None
    probe_on_left: bool = True

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        probe_batch = self.probe.execute(ctx)
        ctx.touch(
            index_object_name(self.table_name, self.index.column_names),
            self.index.nbytes(),
        )
        key_arrays = [
            probe_batch.column(k).key_values() for k in self.probe_keys
        ]
        if len(key_arrays) == 1:
            probe_key_list: list[object] = list(key_arrays[0])
        else:
            probe_key_list = list(zip(*key_arrays))
        probe_idx, build_rowids = self.index.lookup_many(probe_key_list)

        table = ctx.catalog.table(self.table_name)
        names: list[str] = []
        cols: list[Column] = []
        for column_name, key, _ in self.stored_columns:
            column = table.batch.column(column_name)
            ctx.touch(
                table_object_name(self.table_name, column_name), column.nbytes()
            )
            names.append(key)
            cols.append(column.take(build_rowids))
        build_batch = ColumnBatch(names, cols)
        probe_side = probe_batch.take(probe_idx)
        if self.probe_on_left:
            joined = ColumnBatch(
                probe_side.names + build_batch.names,
                probe_side.columns + build_batch.columns,
            )
        else:
            joined = ColumnBatch(
                build_batch.names + probe_side.names,
                build_batch.columns + probe_side.columns,
            )
        if self.stored_predicate is not None:
            mask = self.stored_predicate.evaluate(joined).values
            joined = joined.filter(mask)
        if self.residual is not None:
            mask = self.residual.evaluate(joined).values
            joined = joined.filter(mask)
        ctx.stats.rows_joined += joined.num_rows
        return joined


@dataclass
class PSemiJoin(PhysicalOp):
    """Membership filter against an uncorrelated sub-plan's result."""

    child: PhysicalOp
    operand: Expr
    subplan: PhysicalOp
    negated: bool = False

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        batch = self.child.execute(ctx)
        sub_batch = self.subplan.execute(ctx)
        if sub_batch.num_columns != 1:
            raise ExecutionError(
                "IN subquery must produce exactly one column, got "
                f"{sub_batch.num_columns}"
            )
        member_values = np.unique(sub_batch.columns[0].key_values())
        probe = self.operand.evaluate(batch).key_values()
        mask = np.isin(probe, member_values)
        if self.negated:
            mask = ~mask
        return batch.filter(mask)


@dataclass
class PAggregate(PhysicalOp):
    child: PhysicalOp
    groups: list[tuple[str, Expr]]
    aggs: list[AggSpec]

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        batch = self.child.execute(ctx)
        n = batch.num_rows
        if self.groups:
            key_cols = [expr.evaluate(batch) for _, expr in self.groups]
            codes = combined_codes(key_cols)
            group_ids, representatives, ngroups = group_by_codes(codes)
            out_names = [name for name, _ in self.groups]
            out_cols = [col.take(representatives) for col in key_cols]
        else:
            group_ids = np.zeros(n, dtype=np.int64)
            ngroups = 1
            out_names, out_cols = [], []
        for spec in self.aggs:
            out_names.append(spec.out_name)
            out_cols.append(_aggregate(spec, batch, group_ids, ngroups))
        return ColumnBatch(out_names, out_cols)


def _aggregate(
    spec: AggSpec, batch: ColumnBatch, group_ids: np.ndarray, ngroups: int
) -> Column:
    """Compute one aggregate over grouped rows.

    The engine has no NULLs; over empty input a scalar aggregate yields 0 for
    COUNT/integer SUM and NaN for floating-point results (documented
    simplification).
    """
    if spec.arg is None:  # COUNT(*)
        counts = np.bincount(group_ids, minlength=ngroups)
        return Column(DataType.INT64, counts.astype(np.int64))

    arg_col = spec.arg.evaluate(batch)
    if spec.distinct and len(arg_col):
        value_codes, card = _codes_of(arg_col)
        pair_codes = group_ids * np.int64(max(card, 1)) + value_codes
        keep = first_occurrence_indices(pair_codes)
        group_ids = group_ids[keep]
        arg_col = arg_col.take(keep)

    if spec.func == "count":
        counts = np.bincount(group_ids, minlength=ngroups)
        return Column(DataType.INT64, counts.astype(np.int64))
    if spec.func in ("sum", "avg"):
        values = arg_col.values.astype(np.float64)
        sums = np.bincount(group_ids, weights=values, minlength=ngroups)
        if spec.func == "avg":
            counts = np.bincount(group_ids, minlength=ngroups)
            with np.errstate(invalid="ignore", divide="ignore"):
                result = sums / counts
            return Column(DataType.FLOAT64, result)
        if spec.dtype is DataType.INT64:
            return Column(DataType.INT64, sums.astype(np.int64))
        return Column(DataType.FLOAT64, sums)
    if spec.func in ("min", "max"):
        return _min_max(spec, arg_col, group_ids, ngroups)
    raise ExecutionError(f"unknown aggregate {spec.func!r}")


def _codes_of(column: Column) -> tuple[np.ndarray, int]:
    values = column.key_values()
    uniques, inverse = np.unique(values, return_inverse=True)
    return inverse.astype(np.int64), len(uniques)


def _min_max(
    spec: AggSpec, arg_col: Column, group_ids: np.ndarray, ngroups: int
) -> Column:
    if arg_col.dtype is DataType.STRING:
        codes, _ = _codes_of(arg_col)
        uniques = np.unique(arg_col.key_values())
        best = _extreme_per_group(codes, group_ids, ngroups, spec.func)
        values = [str(uniques[int(c)]) if c >= 0 else "" for c in best]
        return Column.from_pylist(DataType.STRING, values)
    values = arg_col.values
    if spec.func == "min":
        fill = np.inf if values.dtype.kind == "f" else np.iinfo(np.int64).max
        out = np.full(ngroups, fill, dtype=np.float64)
        np.minimum.at(out, group_ids, values.astype(np.float64))
    else:
        fill = -np.inf if values.dtype.kind == "f" else np.iinfo(np.int64).min
        out = np.full(ngroups, fill, dtype=np.float64)
        np.maximum.at(out, group_ids, values.astype(np.float64))
    counts = np.bincount(group_ids, minlength=ngroups)
    if spec.dtype in (DataType.INT64, DataType.TIMESTAMP):
        out = np.where(counts > 0, out, 0.0)
        return Column(spec.dtype, out.astype(np.int64))
    # Empty groups yield NaN for floating-point extremes (no-NULL engine).
    out = np.where(counts > 0, out, np.nan)
    return Column(DataType.FLOAT64, out)


def _extreme_per_group(
    codes: np.ndarray, group_ids: np.ndarray, ngroups: int, func: str
) -> np.ndarray:
    out = np.full(ngroups, -1, dtype=np.int64)
    if len(codes) == 0:
        return out
    if func == "min":
        big = codes.max() + 1
        tmp = np.full(ngroups, big, dtype=np.int64)
        np.minimum.at(tmp, group_ids, codes)
        counts = np.bincount(group_ids, minlength=ngroups)
        out = np.where(counts > 0, tmp, -1)
    else:
        tmp = np.full(ngroups, -1, dtype=np.int64)
        np.maximum.at(tmp, group_ids, codes)
        out = tmp
    return out


@dataclass
class PSort(PhysicalOp):
    child: PhysicalOp
    keys: list[tuple[Expr, bool]]

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        batch = self.child.execute(ctx)
        if batch.num_rows == 0:
            return batch
        key_cols = [expr.evaluate(batch) for expr, _ in self.keys]
        ascending = [asc for _, asc in self.keys]
        order = sort_indices(key_cols, ascending)
        return batch.take(order)


@dataclass
class PLimit(PhysicalOp):
    child: PhysicalOp
    count: int
    output_names: Optional[list[str]] = None
    output_dtypes: Optional[list[DataType]] = None

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        if (
            self.count <= 0
            and self.output_names is not None
            and self.output_dtypes is not None
        ):
            # LIMIT 0 is defined as the empty result with the child's schema;
            # short-circuit so nothing below it executes (or mounts).
            return ColumnBatch.empty_like(self.output_names, self.output_dtypes)
        batch = self.child.execute(ctx)
        return batch.slice(0, self.count)


@dataclass
class PTopN(PhysicalOp):
    """Fused Sort+Limit: the ``count`` first rows under the sort keys.

    Selection runs through :func:`top_n_indices` — a bounded candidate set
    folded chunk-at-a-time, never a full sort — and matches
    ``sort_indices(...)[:count]`` exactly (stable ties included).
    """

    child: PhysicalOp
    keys: list[tuple[Expr, bool]]
    count: int
    output_names: list[str]
    output_dtypes: list[DataType]

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        if self.count <= 0:
            return ColumnBatch.empty_like(self.output_names, self.output_dtypes)
        batch = self.child.execute(ctx)
        if batch.num_rows == 0:
            result = batch
        else:
            key_cols = [expr.evaluate(batch) for expr, _ in self.keys]
            ascending = [asc for _, asc in self.keys]
            keep = top_n_indices(key_cols, ascending, self.count)
            result = batch.take(keep)
        if ctx.branch_monitor is not None:
            # Report the emitted rows so branch skips can be audited against
            # the true threshold (the executor falls back to an exhaustive
            # run if any skip turns out unsound).
            ctx.branch_monitor.note_result(self.keys[0][0], result)
        return result


@dataclass
class PDistinct(PhysicalOp):
    child: PhysicalOp

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        batch = self.child.execute(ctx)
        if batch.num_rows == 0:
            return batch
        codes = combined_codes(batch.columns)
        keep = first_occurrence_indices(codes)
        return batch.take(keep)


@dataclass
class PUnionAll(PhysicalOp):
    children: list[PhysicalOp]
    output_names: list[str]
    output_dtypes: list[DataType]

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        monitor = ctx.branch_monitor
        order = list(range(len(self.children)))
        if monitor is not None:
            order = monitor.schedule(len(self.children))
        produced: dict[int, ColumnBatch] = {}
        for index in order:
            if monitor is not None and monitor.should_skip(index):
                # The branch provably cannot contribute to the Top-N answer;
                # the monitor has already released its outstanding mount.
                continue
            batch = self.children[index].execute(ctx)
            if monitor is not None:
                monitor.observe(index, batch)
            produced[index] = batch
        # Assemble in original branch order: consumption order is purely a
        # scheduling concern, and sort-tie resolution upstream must not
        # depend on it.
        batches = [
            produced[i] for i in sorted(produced) if produced[i].num_rows > 0
        ]
        if not batches:
            return ColumnBatch.empty_like(self.output_names, self.output_dtypes)
        # Normalize column order to the declared output layout.
        batches = [b.select(self.output_names) for b in batches]
        return concat_batches(batches)


@dataclass
class PResultScan(PhysicalOp):
    """Re-read a stored sub-plan result (stage-1 feed into stage 2)."""

    tag: str
    expected_keys: list[str]

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        batch = ctx.results.get(self.tag)
        if batch is None:
            raise ExecutionError(f"no stored result under tag {self.tag!r}")
        return batch.select(self.expected_keys)


@dataclass
class PMount(PhysicalOp):
    """ALi: extract–transform–ingest one external file on demand."""

    uri: str
    table_name: str
    alias: str
    predicate: Optional[Expr]
    output_names: list[str]

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        if ctx.mounter is None:
            raise ExecutionError(
                f"plan contains Mount({self.uri}) but no mounter is configured"
            )
        batch = ctx.mounter.mount_file(
            self.uri, self.table_name, self.alias, self.predicate
        )
        ctx.stats.files_mounted += 1
        return batch.select(self.output_names)


@dataclass
class PCacheScan(PhysicalOp):
    """Read one file's ingested tuples from the cache."""

    uri: str
    table_name: str
    alias: str
    predicate: Optional[Expr]
    output_names: list[str]

    def _run(self, ctx: ExecutionContext) -> ColumnBatch:
        if ctx.mounter is None:
            raise ExecutionError(
                f"plan contains CacheScan({self.uri}) but no mounter is configured"
            )
        batch = ctx.mounter.cache_scan(
            self.uri, self.table_name, self.alias, self.predicate
        )
        ctx.stats.cache_scans += 1
        return batch.select(self.output_names)
