"""Column-store tables and the batch type exchanged by operators.

A :class:`ColumnBatch` is a named collection of equal-length columns — the
unit of data flow in the operator-at-a-time execution model (each physical
operator materializes its full result, MonetDB style). A :class:`Table` is a
ColumnBatch with a schema, held by the catalog.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

import numpy as np

from .column import Column, concat_columns
from .errors import ExecutionError
from .schema import TableSchema
from .types import DataType


class ColumnBatch:
    """Equal-length named columns; the value every operator produces."""

    __slots__ = ("names", "columns")

    def __init__(self, names: Sequence[str], columns: Sequence[Column]) -> None:
        if len(names) != len(columns):
            raise ExecutionError("names and columns length mismatch")
        lengths = {len(col) for col in columns}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged batch: column lengths {sorted(lengths)}")
        self.names = list(names)
        self.columns = list(columns)

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:
        return f"ColumnBatch({self.names}, rows={self.num_rows})"

    def column(self, name: str) -> Column:
        lowered = name.lower()
        for cname, col in zip(self.names, self.columns):
            if cname.lower() == lowered:
                return col
        raise ExecutionError(f"batch has no column {name!r}; has {self.names}")

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, cname in enumerate(self.names):
            if cname.lower() == lowered:
                return i
        raise ExecutionError(f"batch has no column {name!r}; has {self.names}")

    def take(self, indices: np.ndarray) -> "ColumnBatch":
        return ColumnBatch(self.names, [c.take(indices) for c in self.columns])

    def filter(self, mask: np.ndarray) -> "ColumnBatch":
        return ColumnBatch(self.names, [c.filter(mask) for c in self.columns])

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        return ColumnBatch(self.names, [c.slice(start, stop) for c in self.columns])

    def select(self, names: Sequence[str]) -> "ColumnBatch":
        return ColumnBatch(list(names), [self.column(n) for n in names])

    def rows(self) -> list[tuple[Any, ...]]:
        """Materialize as Python row tuples (for results and tests)."""
        pylists = [col.to_pylist() for col in self.columns]
        return list(zip(*pylists)) if pylists else []

    def nbytes(self) -> int:
        return sum(col.nbytes() for col in self.columns)

    @classmethod
    def empty_like(cls, names: Sequence[str], dtypes: Sequence[DataType]) -> "ColumnBatch":
        return cls(list(names), [Column.empty(dt) for dt in dtypes])


def concat_batches(batches: Sequence[ColumnBatch]) -> ColumnBatch:
    """Vertically concatenate batches with identical column layout."""
    if not batches:
        raise ExecutionError("concat_batches requires at least one batch")
    names = batches[0].names
    for batch in batches[1:]:
        if [n.lower() for n in batch.names] != [n.lower() for n in names]:
            raise ExecutionError(
                f"batch layout mismatch: {batch.names} vs {names}"
            )
    columns = [
        concat_columns([b.columns[i] for b in batches]) for i in range(len(names))
    ]
    return ColumnBatch(names, columns)


class Table:
    """A schema-bearing column store table registered in the catalog."""

    def __init__(self, schema: TableSchema, batch: ColumnBatch | None = None) -> None:
        self.schema = schema
        if batch is None:
            batch = ColumnBatch.empty_like(
                schema.column_names, [c.dtype for c in schema.columns]
            )
        self._check_layout(batch)
        self.batch = batch

    def _check_layout(self, batch: ColumnBatch) -> None:
        expected = [c.name.lower() for c in self.schema.columns]
        actual = [n.lower() for n in batch.names]
        if expected != actual:
            raise ExecutionError(
                f"table {self.schema.name!r}: batch columns {actual} "
                f"do not match schema {expected}"
            )
        for col_def, col in zip(self.schema.columns, batch.columns):
            if col.dtype != col_def.dtype:
                raise ExecutionError(
                    f"table {self.schema.name!r} column {col_def.name!r}: "
                    f"expected {col_def.dtype.value}, got {col.dtype.value}"
                )

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_rows(self) -> int:
        return self.batch.num_rows

    def append(self, batch: ColumnBatch) -> None:
        """Append rows (used by ingestion); columns must match the schema."""
        self._check_layout(batch)
        if self.batch.num_rows == 0:
            self.batch = batch
        else:
            self.batch = concat_batches([self.batch, batch])

    def replace(self, batch: ColumnBatch) -> None:
        self._check_layout(batch)
        self.batch = batch

    def truncate(self) -> None:
        self.batch = ColumnBatch.empty_like(
            self.schema.column_names, [c.dtype for c in self.schema.columns]
        )

    def nbytes(self) -> int:
        return self.batch.nbytes()
