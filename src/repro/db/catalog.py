"""The system catalog: tables, their kinds, and key indexes."""

from __future__ import annotations

from .errors import CatalogError
from .index import HashIndex
from .schema import TableKind, TableSchema
from .table import Table


class Catalog:
    """Registry of tables and their indexes.

    The catalog also answers the planner's central question for two-stage
    execution: which tables are metadata (``M``) and which hold actual data
    (``A``).
    """

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._indexes: dict[tuple[str, tuple[str, ...]], HashIndex] = {}

    # -- tables --------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        key = schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        return table

    def register_table(self, table: Table) -> None:
        key = table.schema.name.lower()
        if key in self._tables:
            raise CatalogError(f"table {table.schema.name!r} already exists")
        self._tables[key] = table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"no table {name!r}")
        del self._tables[key]
        self._indexes = {
            ikey: idx for ikey, idx in self._indexes.items() if ikey[0] != key
        }

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table {name!r}") from None

    def table_names(self) -> list[str]:
        return [t.schema.name for t in self._tables.values()]

    def tables(self) -> list[Table]:
        return list(self._tables.values())

    # -- metadata vs actual (the paper's M and A) -----------------------------

    def is_metadata_table(self, name: str) -> bool:
        return self.table(name).schema.kind.counts_as_metadata

    def metadata_tables(self) -> list[Table]:
        return [t for t in self.tables() if t.schema.kind.counts_as_metadata]

    def actual_tables(self) -> list[Table]:
        return [t for t in self.tables() if t.schema.kind is TableKind.ACTUAL]

    # -- indexes ---------------------------------------------------------------

    def register_index(self, table: str, columns: tuple[str, ...], index: HashIndex) -> None:
        self._indexes[(table.lower(), tuple(c.lower() for c in columns))] = index

    def index_for(self, table: str, columns: tuple[str, ...]) -> HashIndex | None:
        return self._indexes.get(
            (table.lower(), tuple(c.lower() for c in columns))
        )

    def indexes(self) -> dict[tuple[str, tuple[str, ...]], HashIndex]:
        return dict(self._indexes)

    def index_nbytes(self) -> int:
        return sum(idx.nbytes() for idx in self._indexes.values())

    def data_nbytes(self) -> int:
        return sum(t.nbytes() for t in self.tables())
