"""Buffer manager with an explicit disk model for cold/hot experiments.

The paper reports "cold" runs (server restarted, all buffers flushed) and
"hot" runs (buffers pre-loaded). A portable reproduction cannot drop the OS
page cache, so residency is modeled explicitly: every base table column and
index is a *buffer object*; the first touch of an object in a connection
charges simulated disk time (seek latency + size/bandwidth) to an I/O clock,
later touches are free. A cold connection starts with nothing resident; a hot
one is pre-warmed.

Reported experiment times are ``wall-clock CPU + simulated I/O`` and the two
components are kept separate in :class:`IoStats` so results stay auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import _sync


@dataclass
class DiskModel:
    """A simple rotational-disk cost model (the paper used a 7200rpm HDD)."""

    seek_seconds: float = 0.008
    bandwidth_bytes_per_s: float = 120e6

    def read_seconds(self, nbytes: int) -> float:
        return self.seek_seconds + nbytes / self.bandwidth_bytes_per_s


@dataclass
class IoStats:
    """Accumulated I/O accounting for one connection."""

    objects_read: int = 0
    bytes_read: int = 0
    simulated_seconds: float = 0.0
    touched: set[str] = field(default_factory=set)

    def copy(self) -> "IoStats":
        return IoStats(
            self.objects_read,
            self.bytes_read,
            self.simulated_seconds,
            set(self.touched),
        )


@_sync.guarded
class BufferManager:
    """Tracks which buffer objects are resident and charges disk reads.

    Buffer objects are named ``table:<name>:<column>`` and
    ``index:<table>:<col,col>``; sizes are supplied by the caller at touch
    time so the manager stays decoupled from storage layout.
    """

    def __init__(self, disk: DiskModel | None = None) -> None:
        self.disk = disk or DiskModel()
        self._resident: set[str] = set()  # guarded-by: _lock
        self.stats = IoStats()  # guarded-by: _lock
        # touch() is a read-modify-write of residency + stats and is called
        # concurrently by mount-pool workers; it locks itself so callers
        # (e.g. MountService._extract) need not serialize around it. The
        # residency-control methods below take the same lock: a flush() or
        # warm() racing a worker's touch must not corrupt the set or lose
        # a charge.
        self._lock = _sync.create_lock("BufferManager._lock")

    # -- residency control (cold/hot switch) ---------------------------------

    def flush(self) -> None:
        """Evict everything — the 'restart the server' of the paper."""
        with self._lock:
            self._resident.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = IoStats()

    def is_resident(self, name: str) -> bool:
        with self._lock:
            return name in self._resident

    def warm(self, name: str, nbytes: int) -> None:
        """Mark an object resident without charging I/O (hot-run setup)."""
        with self._lock:
            self._resident.add(name)

    def resident_objects(self) -> set[str]:
        with self._lock:
            return set(self._resident)

    # -- the read path ---------------------------------------------------------

    def touch(self, name: str, nbytes: int) -> float:
        """Record an access; returns the simulated seconds charged (0 if hot)."""
        return self.touch_bytes(name, nbytes, full=True)

    def touch_bytes(self, name: str, nbytes: int, full: bool = True) -> float:
        """Record an access of ``nbytes`` of object ``name``.

        ``full=False`` models a partial (record-granular) read: the bytes
        are charged against the disk model unless the whole object is
        already resident, but the object is *not* marked resident — a later
        full read still pays. Residency stays object-granular (no byte-range
        tracking), which can only overcharge repeated partial reads of one
        file, never undercharge.
        """
        with self._lock:
            self.stats.touched.add(name)
            if name in self._resident:
                return 0.0
            if full:
                self._resident.add(name)
            seconds = self.disk.read_seconds(nbytes)
            self.stats.objects_read += 1
            self.stats.bytes_read += int(nbytes)
            self.stats.simulated_seconds += seconds
            return seconds


def table_object_name(table: str, column: str) -> str:
    return f"table:{table.lower()}:{column.lower()}"


def index_object_name(table: str, columns: tuple[str, ...]) -> str:
    return f"index:{table.lower()}:{','.join(c.lower() for c in columns)}"
