"""Key indexes over one or more table columns.

Eager ingestion (Ei) builds primary- and foreign-key indexes up-front, as the
paper does for MonetDB ("Ei creates primary and foreign key indexes before
querying starts", §4). The index is a sorted composite structure: the key
columns' physical vectors lexsorted together with the row ids, probed by
iteratively narrowing ``searchsorted`` ranges one key level at a time. Build
cost is a few vectorized sorts — intentionally proportional to table size,
which is what makes index construction the dominant share of Ei's up-front
cost (the paper observed it taking four times longer than loading).

The physical planner uses indexes for index joins, and the harness accounts
their bytes as the "+keys" column of Table 1.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .column import Column, StringDictionary
from .types import DataType


class HashIndex:
    """A sorted key index from key tuples to row-id ranges.

    (Named for its role — MonetDB's key indexes are hash-based — though the
    physical structure here is a sorted composite, which probes in
    ``O(k log n)`` per lookup and builds fully vectorized.)
    """

    def __init__(self, table_name: str, column_names: tuple[str, ...]) -> None:
        self.table_name = table_name
        self.column_names = column_names
        self._rowids = np.empty(0, dtype=np.int64)
        self._sorted_keys: list[np.ndarray] = []
        self._dictionaries: list[StringDictionary | None] = []
        self._dtypes: list[DataType] = []
        self.unique = True

    @classmethod
    def build(
        cls,
        table_name: str,
        column_names: Sequence[str],
        key_columns: Sequence[Column],
    ) -> "HashIndex":
        index = cls(table_name, tuple(c.lower() for c in column_names))
        index._build(key_columns)
        return index

    def _build(self, key_columns: Sequence[Column]) -> None:
        if not key_columns:
            raise ValueError("index requires at least one key column")
        self._dictionaries = [col.dictionary for col in key_columns]
        self._dtypes = [col.dtype for col in key_columns]
        n = len(key_columns[0])
        if n == 0:
            self._sorted_keys = [
                np.empty(0, dtype=col.values.dtype) for col in key_columns
            ]
            return
        # Sorting on the physical vectors (dictionary codes for strings) is
        # equality-consistent, which is all an exact-match index needs.
        arrays = [col.values for col in key_columns]
        order = np.lexsort(arrays[::-1])
        self._rowids = order.astype(np.int64)
        self._sorted_keys = [np.ascontiguousarray(arr[order]) for arr in arrays]
        duplicate = np.zeros(n - 1, dtype=bool) if n > 1 else np.zeros(0, bool)
        if n > 1:
            duplicate[:] = True
            for arr in self._sorted_keys:
                duplicate &= arr[1:] == arr[:-1]
        self.unique = not bool(duplicate.any())

    def __len__(self) -> int:
        if len(self._rowids) == 0:
            return 0
        distinct = np.zeros(len(self._rowids), dtype=bool)
        distinct[0] = True
        for arr in self._sorted_keys:
            distinct[1:] |= arr[1:] != arr[:-1]
        return int(distinct.sum())

    # -- probing ---------------------------------------------------------------

    def _encode_component(self, level: int, value: object) -> object | None:
        """Translate a logical key component to its physical representation.

        Returns None when the value cannot exist in the column (e.g. a
        string absent from the dictionary) — an automatic miss.
        """
        value = _normalize_scalar(value)
        dictionary = self._dictionaries[level]
        if dictionary is not None:
            if not isinstance(value, str):
                return None
            return dictionary.lookup(value)
        if self._dtypes[level] is DataType.FLOAT64:
            return float(value)  # type: ignore[arg-type]
        if isinstance(value, bool):
            return value
        try:
            return int(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None

    def _range_of(self, key: object) -> tuple[int, int]:
        components = key if isinstance(key, tuple) else (key,)
        if len(components) != len(self._sorted_keys):
            return 0, 0
        lo, hi = 0, len(self._rowids)
        for level, component in enumerate(components):
            encoded = self._encode_component(level, component)
            if encoded is None or lo >= hi:
                return 0, 0
            segment = self._sorted_keys[level][lo:hi]
            start = int(np.searchsorted(segment, encoded, side="left"))
            end = int(np.searchsorted(segment, encoded, side="right"))
            lo, hi = lo + start, lo + end
        return lo, hi

    def lookup(self, key: object) -> np.ndarray:
        """Row ids whose key columns equal ``key`` (empty when absent)."""
        lo, hi = self._range_of(key)
        return self._rowids[lo:hi]

    def lookup_many(
        self, probe_keys: Sequence[object]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Join probe keys against the index.

        Returns ``(probe_idx, build_rowids)`` — parallel arrays pairing each
        probe position with every matching indexed row.
        """
        probe_parts: list[np.ndarray] = []
        build_parts: list[np.ndarray] = []
        for i, key in enumerate(probe_keys):
            rowids = self.lookup(key)
            if len(rowids):
                probe_parts.append(np.full(len(rowids), i, dtype=np.int64))
                build_parts.append(rowids)
        if not probe_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(probe_parts), np.concatenate(build_parts)

    def nbytes(self) -> int:
        """Storage footprint: row ids plus the sorted key vectors.

        This is what Table 1's "+keys" column reports.
        """
        total = int(self._rowids.nbytes)
        for arr in self._sorted_keys:
            total += int(arr.nbytes)
        return total


def _normalize_scalar(value: object) -> object:
    if isinstance(value, np.generic):
        return value.item()
    return value
