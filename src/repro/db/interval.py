"""Closed time intervals — the unit of record-granular pruning.

A query's fused predicate implies a closed interval on the sample-time
column (:func:`interval_from_predicate`); rule (1) attaches that interval to
every ``Mount``/``CacheScan`` branch as the branch's *pruning interval*, the
ingestion cache keys tuple-granular entries by it, and selective extraction
uses it to skip whole records. The algebra lives here — below both the plan
layer and the mounting layer — so the plan verifier can check the covering
invariant without importing :mod:`repro.core`.

Conventions: intervals are closed ``[lo, hi]`` pairs of µs timestamps;
``(-INF, INF)`` means "the whole file"; ``lo > hi`` is the empty interval
(contradictory conjuncts), which prunes *everything*.
"""

from __future__ import annotations

from typing import Optional

from .expr import ColumnRef, Comparison, Expr, Literal, conjuncts
from .types import DataType

INF = 2**62
Interval = tuple[int, int]  # closed [lo, hi] in µs; (-INF, INF) = whole file

WHOLE_FILE: Interval = (-INF, INF)


def covers(entry: Interval, request: Interval) -> bool:
    """Whether ``entry`` is a superset of ``request`` (closed semantics)."""
    return entry[0] <= request[0] and entry[1] >= request[1]


def is_empty(interval: Interval) -> bool:
    """An inverted interval selects nothing (contradictory conjuncts)."""
    return interval[0] > interval[1]


def overlaps(interval: Interval, lo: int, hi: int) -> bool:
    """Whether the closed span ``[lo, hi]`` intersects ``interval``."""
    return lo <= interval[1] and hi >= interval[0]


def hull(a: Interval, b: Interval) -> Interval:
    """The smallest interval covering both ``a`` and ``b``."""
    return (min(a[0], b[0]), max(a[1], b[1]))


def intersect(a: Interval, b: Interval) -> Interval:
    """The overlap of ``a`` and ``b``; inverted (empty) when disjoint."""
    return (max(a[0], b[0]), min(a[1], b[1]))


def interval_from_predicate(
    predicate: Optional[Expr], time_key: str
) -> Interval:
    """The closed time interval implied by range conjuncts on ``time_key``.

    Only conjuncts of the form ``time <op> literal`` (or mirrored) narrow the
    interval; anything else — OR-of-ranges, non-TIMESTAMP literals,
    comparisons on other columns — leaves it unbounded on that side. The
    hull is closed even for strict comparisons: serving a superset and
    re-filtering is always correct. Contradictory conjuncts yield an empty
    (inverted) interval, the signal that the branch cannot produce rows.
    """
    lo, hi = -INF, INF
    if predicate is None:
        return lo, hi
    for conj in conjuncts(predicate):
        if not isinstance(conj, Comparison):
            continue
        column, literal, op = None, None, conj.op
        if isinstance(conj.left, ColumnRef) and isinstance(conj.right, Literal):
            column, literal = conj.left, conj.right
        elif isinstance(conj.right, ColumnRef) and isinstance(conj.left, Literal):
            column, literal = conj.right, conj.left
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if column is None or column.key != time_key:
            continue
        if literal.dtype is not DataType.TIMESTAMP:
            continue
        value = int(literal.value)
        if op in (">", ">="):
            lo = max(lo, value)
        elif op in ("<", "<="):
            hi = min(hi, value)
        elif op == "=":
            lo, hi = max(lo, value), min(hi, value)
    return lo, hi
