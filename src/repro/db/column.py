"""Columnar vectors.

A :class:`Column` is an immutable-by-convention wrapper around a numpy array.
String columns are dictionary encoded the way analytical column stores do it:
the physical vector holds int32 codes into a per-column :class:`StringDictionary`.

Columns are non-nullable; the scientific schemas this engine serves (file and
record headers, sample streams) have no missing values, and keeping validity
masks out of the hot path keeps every kernel a plain numpy operation. Aggregates
over empty inputs surface ``None`` at the result layer instead.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

from .errors import TypeError_
from .types import DataType, format_timestamp, parse_timestamp


class StringDictionary:
    """An append-only mapping between strings and dense int32 codes."""

    __slots__ = ("_values", "_codes")

    def __init__(self, values: Iterable[str] = ()) -> None:
        self._values: list[str] = []
        self._codes: dict[str, int] = {}
        for value in values:
            self.encode_one(value)

    def __len__(self) -> int:
        return len(self._values)

    def encode_one(self, value: str) -> int:
        """Return the code for ``value``, appending it if new."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._values.append(value)
            self._codes[value] = code
        return code

    def encode(self, values: Iterable[str]) -> np.ndarray:
        return np.fromiter(
            (self.encode_one(v) for v in values), dtype=np.int32, count=-1
        )

    def lookup(self, value: str) -> int | None:
        """The code for ``value``, or None when absent (useful for filters)."""
        return self._codes.get(value)

    def decode_one(self, code: int) -> str:
        return self._values[code]

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Decode a code vector into a numpy object array of strings."""
        table = np.asarray(self._values, dtype=object)
        if len(table) == 0:
            return np.empty(len(codes), dtype=object)
        return table[codes]

    @property
    def values(self) -> list[str]:
        return list(self._values)


class Column:
    """A typed columnar vector; the unit all physical operators exchange."""

    __slots__ = ("dtype", "values", "dictionary")

    def __init__(
        self,
        dtype: DataType,
        values: np.ndarray,
        dictionary: StringDictionary | None = None,
    ) -> None:
        expected = dtype.numpy_dtype
        if values.dtype != expected:
            values = values.astype(expected)
        if dtype is DataType.STRING and dictionary is None:
            raise TypeError_("string columns require a dictionary")
        self.dtype = dtype
        self.values = values
        self.dictionary = dictionary

    # -- construction -----------------------------------------------------

    @classmethod
    def from_pylist(cls, dtype: DataType, items: Sequence[Any]) -> "Column":
        """Build a column from Python values, coercing literals as SQL would."""
        if dtype is DataType.STRING:
            dictionary = StringDictionary()
            codes = dictionary.encode(str(item) for item in items)
            return cls(dtype, codes, dictionary)
        if dtype is DataType.TIMESTAMP:
            converted = [
                parse_timestamp(item) if isinstance(item, str) else int(item)
                for item in items
            ]
            return cls(dtype, np.asarray(converted, dtype=np.int64))
        return cls(dtype, np.asarray(items, dtype=dtype.numpy_dtype))

    @classmethod
    def empty(cls, dtype: DataType) -> "Column":
        dictionary = StringDictionary() if dtype is DataType.STRING else None
        return cls(dtype, np.empty(0, dtype=dtype.numpy_dtype), dictionary)

    @classmethod
    def constant(cls, dtype: DataType, value: Any, length: int) -> "Column":
        """A column repeating one value ``length`` times."""
        if dtype is DataType.STRING:
            dictionary = StringDictionary()
            code = dictionary.encode_one(str(value))
            return cls(dtype, np.full(length, code, dtype=np.int32), dictionary)
        if dtype is DataType.TIMESTAMP and isinstance(value, str):
            value = parse_timestamp(value)
        return cls(dtype, np.full(length, value, dtype=dtype.numpy_dtype))

    # -- basic properties --------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.dtype.value}, n={len(self)})"

    # -- vector operations ---------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Positional gather (shared dictionary — codes stay valid)."""
        return Column(self.dtype, self.values[indices], self.dictionary)

    def filter(self, mask: np.ndarray) -> "Column":
        return Column(self.dtype, self.values[mask], self.dictionary)

    def slice(self, start: int, stop: int) -> "Column":
        return Column(self.dtype, self.values[start:stop], self.dictionary)

    def decoded(self) -> np.ndarray:
        """The logical values as a numpy array (strings decoded to objects)."""
        if self.dtype is DataType.STRING:
            assert self.dictionary is not None
            return self.dictionary.decode(self.values)
        return self.values

    def key_values(self) -> np.ndarray:
        """Values suitable for grouping/joining across columns.

        Dictionary codes are column-local, so cross-column operations use the
        decoded strings; other types use the physical vector directly.
        """
        return self.decoded()

    def to_pylist(self) -> list[Any]:
        """The column as plain Python values (timestamps stay integers)."""
        if self.dtype is DataType.STRING:
            return list(self.decoded())
        if self.dtype is DataType.BOOL:
            return [bool(v) for v in self.values]
        if self.dtype is DataType.FLOAT64:
            return [float(v) for v in self.values]
        return [int(v) for v in self.values]

    def render(self) -> list[str]:
        """Human-readable rendering (timestamps formatted as ISO strings)."""
        if self.dtype is DataType.TIMESTAMP:
            return [format_timestamp(v) for v in self.values]
        return [str(v) for v in self.to_pylist()]

    def nbytes(self) -> int:
        """Approximate storage footprint of this column in bytes."""
        total = int(self.values.nbytes)
        if self.dictionary is not None:
            total += sum(len(s) + 8 for s in self.dictionary.values)
        return total


def concat_columns(columns: Sequence[Column]) -> Column:
    """Concatenate columns of identical type into one column.

    String columns are re-encoded into a fresh shared dictionary since each
    input dictionary assigns its own codes.
    """
    if not columns:
        raise TypeError_("concat_columns requires at least one column")
    dtype = columns[0].dtype
    for col in columns[1:]:
        if col.dtype != dtype:
            raise TypeError_(
                f"cannot concatenate {col.dtype.value} with {dtype.value}"
            )
    if dtype is DataType.STRING:
        dictionary = StringDictionary()
        parts = []
        for col in columns:
            assert col.dictionary is not None
            remap = np.asarray(
                [dictionary.encode_one(s) for s in col.dictionary.values],
                dtype=np.int32,
            )
            if len(remap):
                parts.append(remap[col.values])
            else:
                parts.append(np.empty(0, dtype=np.int32))
        return Column(dtype, np.concatenate(parts) if parts else
                      np.empty(0, dtype=np.int32), dictionary)
    return Column(dtype, np.concatenate([c.values for c in columns]))
