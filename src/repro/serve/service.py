"""The multi-query service: many sessions, one repository, shared work.

The paper frames ALi for the single scientist at a console; a facility
serves *many* scientists against one archive. :class:`QueryService` is that
deployment shape: one shared :class:`~repro.db.database.Database` (metadata
loaded once), one shared :class:`~repro.core.cache.IngestionCache`, and one
:class:`~repro.serve.scheduler.MountScheduler` — while every query still
runs the full two-stage pipeline with its own
:class:`~repro.core.executor.TwoStageExecutor` (the executor carries
per-query mutable state, so the service creates one per execution and plugs
the shared machinery in through the executor's service seams).

A query's life in the service:

1. **Admission** — the tenant's policy is consulted *before* any work:
   queue-depth shedding (too many in-flight queries for this tenant) and
   byte-ledger shedding (the tenant already consumed its total mount-byte
   allowance) both raise :class:`~repro.db.errors.QueryShedError`
   synchronously, on the submitting thread.
2. **Stage 1** — the query's own executor runs the metadata stage and
   reaches the stage-1/stage-2 breakpoint with its files of interest.
3. **Scheduling** — instead of a private :class:`~repro.core.mountpool.MountPool`,
   the executor's ``pool_factory`` hands stage 2 a
   :class:`~repro.serve.scheduler.SharedPoolClient`: the query's mount
   branches are registered with the shared scheduler (hull-merged with
   every other waiting query touching the same files) and the query parks
   until its files complete — each extraction feeding *every* waiter.
4. **Charging** — the query's governor is charged at consume time for the
   bytes it uses (same ledger as standalone), and the governor's
   ``on_charge`` hook feeds the tenant's running byte ledger.

Tenant isolation is deliberate where it matters and shared where that is
the point: every tenant gets its **own**
:class:`~repro.core.governor.CircuitBreaker` (one tenant hammering a broken
file trips only its own breaker; another tenant's queries still mount the
files *they* need), while the cache and scheduler are shared (their
concurrency story: cache stores are first-wins idempotent, scheduler tasks
single-flight per file). A shared extraction that genuinely fails surfaces
the same typed error to every query waiting on that file — each query then
applies its own ``on_mount_error`` policy and records the failure in its
own tenant's breaker.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Optional

from .. import _sync
from ..core.advisor import WorkloadPredictor
from ..core.cache import WHOLE_FILE, CachePolicy, CacheStats, IngestionCache
from ..core.executor import TwoStageExecutor, TwoStageResult
from ..core.governor import CancellationToken, CircuitBreaker, QueryBudget
from ..core.mounting import (
    FAIL_FAST,
    ON_ERROR_POLICIES,
    ExtractResult,
    MountService,
)
from ..db.interval import overlaps
from ..db.database import Database
from ..db.errors import QueryShedError
from ..ingest.formats import MountRequest, RecordSpan
from ..ingest.lazy import lazy_ingest_metadata
from ..ingest.schema import FILE_TABLE, RECORD_TABLE, BindingSet, RepositoryBinding
from ..mseed.repository import FileRepository
from .scheduler import MountKey, MountScheduler, SchedulerPolicy, SchedulerStats


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant admission control, built from the PR-5 governance pieces.

    ``query_budget`` is the per-query ceiling (every query this tenant
    submits runs under it unless the call passes its own);
    ``max_total_mount_bytes`` is the *tenant* ceiling — a running ledger
    across all of the tenant's queries, fed by each query's governor, that
    sheds new admissions once exhausted. ``max_queue_depth`` bounds the
    tenant's in-flight queries (submitted, not yet finished); exceeding it
    sheds instead of queueing, keeping one greedy tenant from occupying
    the service. ``on_mount_error`` is the tenant's degradation policy
    (:data:`~repro.core.mounting.FAIL_FAST` or
    :data:`~repro.core.mounting.SKIP_AND_REPORT`).
    """

    max_queue_depth: Optional[int] = None
    query_budget: Optional[QueryBudget] = None
    max_total_mount_bytes: Optional[int] = None
    on_mount_error: str = FAIL_FAST

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if (
            self.max_total_mount_bytes is not None
            and self.max_total_mount_bytes < 0
        ):
            raise ValueError("max_total_mount_bytes must be >= 0")
        if self.on_mount_error not in ON_ERROR_POLICIES:
            raise ValueError(
                f"on_mount_error must be one of {ON_ERROR_POLICIES}, "
                f"got {self.on_mount_error!r}"
            )


@dataclass
class TenantState:
    """One tenant's live accounting; mutated only under the service lock
    (except the breaker, which locks itself)."""

    name: str
    policy: TenantPolicy
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    in_flight: int = 0
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    bytes_charged: int = 0
    records_charged: int = 0
    # Per-tenant workload predictor (locks itself): each tenant's query
    # stream has its own sliding/zooming shape; mixing tenants' windows
    # would predict nobody's next query.
    predictor: WorkloadPredictor = field(default_factory=WorkloadPredictor)


@dataclass(frozen=True)
class TenantSnapshot:
    """Point-in-time copy of one tenant's counters (safe to hand out)."""

    name: str
    in_flight: int
    admitted: int
    completed: int
    failed: int
    shed: int
    bytes_charged: int
    records_charged: int


@dataclass(frozen=True)
class ServiceStats:
    """One service lifetime's shared-work and admission story.

    ``scheduler`` carries the sharing win (``shared_grants`` /
    ``bytes_shared``) and the fairness counters (``starved_grants``,
    ``max_wait_seconds``); ``tenants`` the per-tenant admission ledgers;
    ``total_mount_bytes`` the bytes actually pulled off disk service-wide —
    the number the bench compares against N independent sessions.
    """

    scheduler: SchedulerStats
    cache: CacheStats
    tenants: tuple[TenantSnapshot, ...]
    total_mount_bytes: int
    queries_completed: int
    queries_failed: int
    queries_shed: int

    def describe(self) -> str:
        lines = [
            f"queries: {self.queries_completed} completed, "
            f"{self.queries_failed} failed, {self.queries_shed} shed",
            f"mount bytes (actual disk): {self.total_mount_bytes}",
            f"shared grants: {self.scheduler.shared_grants} "
            f"(bytes re-served: {self.scheduler.bytes_shared})",
            f"starved grants: {self.scheduler.starved_grants}, "
            f"max wait: {self.scheduler.max_wait_seconds:.3f}s",
            f"cache: {self.cache.hits} hits, {self.cache.misses} misses "
            f"({self.cache.hit_rate():.1%} hit rate), "
            f"{self.cache.duplicate_stores} duplicate stores",
        ]
        for tenant in self.tenants:
            lines.append(
                f"tenant {tenant.name!r}: {tenant.completed} ok, "
                f"{tenant.failed} failed, {tenant.shed} shed, "
                f"{tenant.bytes_charged} bytes charged"
            )
        return "\n".join(lines)


@_sync.guarded
class QueryService:
    """Admits concurrent queries against one shared repository + database.

    ``db`` may be passed pre-loaded (metadata already ingested); otherwise
    the service builds one and runs
    :func:`~repro.ingest.lazy.lazy_ingest_metadata` once — the catalog is
    read-only afterwards, which is what makes concurrent executions against
    the one database safe. The default cache policy is UNBOUNDED, not the
    paper's DISCARD: retaining mounted data across queries is half the
    service's sharing story (the scheduler is the other half, for queries
    *in flight* together).

    ``mount_workers`` sizes the shared scheduler's extraction pool —
    service-wide, not per query (per-query executors run their plan on the
    submitting thread and consume from the shared scheduler).
    """

    def __init__(
        self,
        repository: FileRepository,
        db: Optional[Database] = None,
        cache: Optional[IngestionCache] = None,
        default_policy: Optional[TenantPolicy] = None,
        scheduler_policy: Optional[SchedulerPolicy] = None,
        mount_workers: int = 2,
        max_concurrent_queries: int = 8,
        selective_mounts: bool = True,
        verify_plans: Optional[bool] = None,
        prefetch: bool = False,
    ) -> None:
        if max_concurrent_queries < 1:
            raise ValueError("max_concurrent_queries must be >= 1")
        self.repository = repository
        if db is None:
            db = Database()
            lazy_ingest_metadata(db, repository)
        self.db = db
        self.cache = (
            cache
            if cache is not None
            else IngestionCache(policy=CachePolicy.UNBOUNDED)
        )
        self._binding = RepositoryBinding(repository)
        self.bindings = BindingSet.single(self._binding)
        self.default_policy = default_policy or TenantPolicy()
        self.selective_mounts = selective_mounts
        self.verify_plans = verify_plans
        self.max_concurrent_queries = max_concurrent_queries
        # The shared extraction path: a MountService with NO governor and NO
        # breaker. Scheduled extractions are charged to each consuming
        # query's governor by its SharedPoolClient (once per file it uses),
        # and failures are judged by each waiter's own tenant breaker — the
        # shared service only extracts, retries transients, and counts
        # service-wide bytes.
        self._shared_mounts = MountService(
            self.bindings,
            self.cache,
            buffers=db.buffers,
            selective=selective_mounts,
        )
        self._shared_mounts.record_map_provider = self._record_map
        # Predictive prefetch: after each completed query, the tenant's
        # predictor extrapolates the next window and the overlapping files
        # are registered as scheduler *hints* — waiter-less tasks run only
        # when no real query is waiting; their results land in the shared
        # cache via _store_hint.
        self.prefetch = prefetch
        self.scheduler = MountScheduler(
            self._shared_extract,
            policy=scheduler_policy,
            workers=mount_workers,
            on_hint_result=self._store_hint,
        )
        self._lock = _sync.create_lock("QueryService._lock")
        self._tenants: dict[str, TenantState] = {}  # guarded-by: _lock
        # Coverage-fallback extractions, query-side.
        self._inline_bytes = 0  # guarded-by: _lock
        self._completed = 0  # guarded-by: _lock
        self._failed = 0  # guarded-by: _lock
        self._record_spans: dict[str, tuple[RecordSpan, ...]] = {}  # guarded-by: _record_lock
        self._record_spans_source: Optional[object] = None  # guarded-by: _record_lock
        self._file_span_map: dict[str, tuple[int, int]] = {}  # guarded-by: _record_lock
        self._file_span_source: Optional[object] = None  # guarded-by: _record_lock
        self._record_lock = _sync.create_lock("QueryService._record_lock")
        self._pool: Optional[ThreadPoolExecutor] = None  # guarded-by: _lock
        self._closed = False  # guarded-by: _lock

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QueryService":
        """Start the shared scheduler workers (idempotent)."""
        self.scheduler.start()
        return self

    def close(self) -> None:
        """Drain submitted queries, then stop the scheduler."""
        with self._lock:
            self._closed = True
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)
        self.scheduler.close()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- tenants -------------------------------------------------------------

    def register_tenant(
        self, name: str, policy: Optional[TenantPolicy] = None
    ) -> TenantState:
        """Create (or fetch) a tenant; an explicit ``policy`` overrides the
        service default but never an existing registration."""
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = TenantState(
                    name=name, policy=policy or self.default_policy
                )
                self._tenants[name] = state
            return state

    def _admit(self, state: TenantState) -> None:
        """Admission control on the submitting thread; sheds synchronously."""
        policy = state.policy
        with self._lock:
            if self._closed:
                raise QueryShedError("service is closed", tenant=state.name)
            if (
                policy.max_queue_depth is not None
                and state.in_flight >= policy.max_queue_depth
            ):
                state.shed += 1
                raise QueryShedError(
                    f"queue depth {state.in_flight} at limit "
                    f"{policy.max_queue_depth}",
                    tenant=state.name,
                )
            if (
                policy.max_total_mount_bytes is not None
                and state.bytes_charged >= policy.max_total_mount_bytes
            ):
                state.shed += 1
                raise QueryShedError(
                    f"tenant mount-byte allowance exhausted "
                    f"({state.bytes_charged} >= "
                    f"{policy.max_total_mount_bytes})",
                    tenant=state.name,
                )
            state.in_flight += 1
            state.admitted += 1

    # -- execution -----------------------------------------------------------

    def execute(
        self,
        sql: str,
        tenant: str = "default",
        budget: Optional[QueryBudget] = None,
        cancellation: Optional[CancellationToken] = None,
    ) -> TwoStageResult:
        """Admit and run one query on the calling thread."""
        state = self.register_tenant(tenant)
        self._admit(state)
        return self._run_admitted(state, sql, budget, cancellation)

    def submit(
        self,
        sql: str,
        tenant: str = "default",
        budget: Optional[QueryBudget] = None,
        cancellation: Optional[CancellationToken] = None,
    ) -> "Future[TwoStageResult]":
        """Admit now (sheds raise here, synchronously), run on the service's
        worker pool; the returned future resolves to the
        :class:`~repro.core.executor.TwoStageResult` or the query's error."""
        state = self.register_tenant(tenant)
        self._admit(state)
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_concurrent_queries,
                    thread_name_prefix="serve-query",
                )
            pool = self._pool
        return pool.submit(
            self._run_admitted, state, sql, budget, cancellation
        )

    def client(self, tenant: str = "default") -> "TenantClient":
        """A session-compatible engine bound to one tenant."""
        self.register_tenant(tenant)
        return TenantClient(self, tenant)

    def _run_admitted(
        self,
        state: TenantState,
        sql: str,
        budget: Optional[QueryBudget],
        cancellation: Optional[CancellationToken],
    ) -> TwoStageResult:
        executor: Optional[TwoStageExecutor] = None
        try:
            executor = self._make_executor(state)
            result = executor.execute(
                sql, budget=budget, cancellation=cancellation
            )
        except BaseException:
            with self._lock:
                state.failed += 1
                self._failed += 1
            raise
        else:
            with self._lock:
                state.completed += 1
                self._completed += 1
            if self.prefetch:
                # After the answer is already delivered-able: feed the
                # tenant's predictor and register hints. Purely additive —
                # a wrong prediction costs idle-worker bytes, never answers.
                self._prefetch_for(state, executor)
            return result
        finally:
            with self._lock:
                state.in_flight -= 1
                # Coverage fallbacks extracted on the query's own thread are
                # real disk work the shared stats never saw; fold them in so
                # total_mount_bytes stays the true service-wide disk story.
                if executor is not None:
                    self._inline_bytes += executor.mounts.stats.bytes_read

    def _make_executor(self, state: TenantState) -> TwoStageExecutor:
        """One query's executor: private pipeline, shared backends.

        The executor is per-execution throwaway state; everything expensive
        or shared — database, cache, record maps, scheduler — is plugged in
        from the service. The ``pool_factory`` closure reads the executor's
        governor at stage-2 time (it is armed by then), so consumed shared
        results charge this query's budget exactly as standalone extraction
        would.
        """
        executor = TwoStageExecutor(
            self.db,
            self.bindings,
            cache=self.cache,
            mount_workers=1,
            on_mount_error=state.policy.on_mount_error,
            budget=state.policy.query_budget,
            breaker=state.breaker,
            selective_mounts=self.selective_mounts,
            verify_plans=self.verify_plans,
        )
        executor.mounts.record_map_provider = self._record_map

        def charge(bytes_read: int, records_decoded: int) -> None:
            with self._lock:
                state.bytes_charged += bytes_read
                state.records_charged += records_decoded

        executor.charge_hook = charge
        executor.pool_factory = lambda token: self.scheduler.client(
            token=token, governor=executor._governor
        )
        return executor

    # -- predictive prefetch ---------------------------------------------------

    def _prefetch_for(
        self, state: TenantState, executor: TwoStageExecutor
    ) -> int:
        """Extrapolate the tenant's next window; hint the overlapping files.

        Skips files the tenant's breaker distrusts and intervals the shared
        cache already covers; everything else becomes a waiter-less hint
        task the scheduler runs only when no real query waits. Returns the
        number of hints accepted (for tests and ops).
        """
        predicted = state.predictor.observe_and_predict(
            executor.last_query_interval
        )
        if predicted is None:
            return 0
        table = self._binding.actual_table
        hints: list[tuple[str, str, Optional[MountRequest]]] = []
        for uri, span in self._file_spans().items():
            if not overlaps(predicted.interval, span[0], span[1]):
                continue
            if state.breaker.likely_blocked(uri):
                continue
            if self.cache.contains(uri, predicted.interval):
                continue
            records = (
                self._record_map(uri, table) if self.selective_mounts else None
            )
            request = (
                MountRequest(interval=predicted.interval, records=records)
                if self.selective_mounts
                else None
            )
            hints.append((table, uri, request))
        if not hints:
            return 0
        return self.scheduler.hint(hints)

    def _file_spans(self) -> dict[str, tuple[int, int]]:
        """Service-wide memo of uri → (start, end) from the ``F`` table,
        batch-keyed like the record-map memo (rebuilt on metadata loads)."""
        if not self.db.catalog.has_table(FILE_TABLE):
            return {}
        batch = self.db.catalog.table(FILE_TABLE).batch
        with self._record_lock:
            if self._file_span_source is not batch:
                required = ("uri", "start_time", "end_time")
                if any(name not in batch.names for name in required):
                    return {}
                self._file_span_map = {
                    u: (int(s), int(e))
                    for u, s, e in zip(
                        batch.column("uri").to_pylist(),
                        batch.column("start_time").to_pylist(),
                        batch.column("end_time").to_pylist(),
                    )
                }
                self._file_span_source = batch
            return self._file_span_map

    def _store_hint(
        self,
        key: MountKey,
        request: Optional[MountRequest],
        result: ExtractResult,
    ) -> None:
        """Retain one completed hint extraction in the shared cache.

        The scheduler's extract function does not store (query-side takes
        store after consumption); hints have no consumer, so without this
        the speculative work would evaporate. A ``bytes_read == 0`` result
        was served *from* the cache — nothing new to store.
        """
        if result.bytes_read == 0 and result.io_seconds == 0.0:
            return
        _table_name, uri = key
        self.cache.store(
            uri, result.batch, result.coverage, signature=result.signature
        )

    # -- shared extraction ---------------------------------------------------

    def _shared_extract(
        self, uri: str, table_name: str, request: Optional[MountRequest]
    ) -> ExtractResult:
        """The scheduler's extraction function: cache first, then disk.

        A query's plan chooses mount vs cache-scan at *its* rewrite time;
        under concurrency another query's store often lands between one
        query's rewrite and its take. Re-checking the cache here — at the
        moment the work would actually run — is rule (1)'s cache preference
        applied late-bound, and it is what makes the service's byte savings
        robust to arrival order instead of depending on queries registering
        within one extraction's window. A cache-served result reports
        ``bytes_read=0``: no disk work happened, so neither the service
        total nor any consuming query's budget is charged for it.
        """
        interval = WHOLE_FILE if request is None else request.interval
        signature = (
            self._shared_mounts._current_signature(uri, table_name)
            if self._shared_mounts.validate_staleness
            else None
        )
        cached = self.cache.lookup(uri, interval, signature=signature)
        if cached is not None:
            return ExtractResult(
                batch=cached, io_seconds=0.0, coverage=interval
            )
        return self._shared_mounts._extract(uri, table_name, request)

    # -- shared record maps --------------------------------------------------

    def _record_map(
        self, uri: str, table_name: str
    ) -> Optional[tuple[RecordSpan, ...]]:
        """Service-wide memo of the ``R`` byte maps selective mounts seek by.

        The per-query executor builds this from the R table on first use;
        at N queries that is N identical rebuilds, so the service interposes
        one locked, batch-keyed copy shared by every query *and* by the
        shared extraction path. Rebuilt only if R's batch object changes
        (metadata loads replace it; the catalog is otherwise read-only).
        """
        if not self.db.catalog.has_table(RECORD_TABLE):
            return None
        batch = self.db.catalog.table(RECORD_TABLE).batch
        with self._record_lock:
            if self._record_spans_source is not batch:
                required = (
                    "uri", "record_id", "start_time", "end_time",
                    "byte_offset", "byte_length",
                )
                if any(name not in batch.names for name in required):
                    return None
                by_uri: dict[str, list[RecordSpan]] = {}
                for u, rid, st, et, off, ln in zip(
                    batch.column("uri").to_pylist(),
                    batch.column("record_id").to_pylist(),
                    batch.column("start_time").to_pylist(),
                    batch.column("end_time").to_pylist(),
                    batch.column("byte_offset").to_pylist(),
                    batch.column("byte_length").to_pylist(),
                ):
                    by_uri.setdefault(u, []).append(
                        RecordSpan(
                            record_id=int(rid),
                            byte_offset=int(off),
                            byte_length=int(ln),
                            start_time=int(st),
                            end_time=int(et),
                        )
                    )
                self._record_spans = {
                    u: tuple(sorted(spans, key=lambda s: s.record_id))
                    for u, spans in by_uri.items()
                }
                self._record_spans_source = batch
            return self._record_spans.get(uri)

    # -- introspection -------------------------------------------------------

    @property
    def total_mount_bytes(self) -> int:
        """Bytes actually pulled off disk, service-wide: every scheduled and
        unscheduled shared extraction plus every query-side coverage
        fallback. The N-independent-sessions comparison number."""
        with self._lock:
            return self._shared_mounts.stats.bytes_read + self._inline_bytes

    def stats(self) -> ServiceStats:
        with self._lock:
            tenants = tuple(
                TenantSnapshot(
                    name=t.name,
                    in_flight=t.in_flight,
                    admitted=t.admitted,
                    completed=t.completed,
                    failed=t.failed,
                    shed=t.shed,
                    bytes_charged=t.bytes_charged,
                    records_charged=t.records_charged,
                )
                for t in self._tenants.values()
            )
            shed = sum(t.shed for t in tenants)
            total_bytes = (
                self._shared_mounts.stats.bytes_read + self._inline_bytes
            )
            completed, failed = self._completed, self._failed
        return ServiceStats(
            scheduler=replace(self.scheduler.stats),
            cache=replace(self.cache.stats),
            tenants=tenants,
            total_mount_bytes=total_bytes,
            queries_completed=completed,
            queries_failed=failed,
            queries_shed=shed,
        )


@dataclass
class TenantClient:
    """One tenant's handle on the service — duck-compatible with the
    engines :class:`~repro.explore.session.ExplorationSession` accepts
    (``execute(sql) -> TwoStageResult`` plus a ``cancel`` passthrough)."""

    service: QueryService
    tenant: str

    def execute(
        self,
        sql: str,
        budget: Optional[QueryBudget] = None,
        cancellation: Optional[CancellationToken] = None,
    ) -> TwoStageResult:
        return self.service.execute(
            sql, tenant=self.tenant, budget=budget, cancellation=cancellation
        )

    def submit(
        self,
        sql: str,
        budget: Optional[QueryBudget] = None,
        cancellation: Optional[CancellationToken] = None,
    ) -> "Future[TwoStageResult]":
        return self.service.submit(
            sql, tenant=self.tenant, budget=budget, cancellation=cancellation
        )
