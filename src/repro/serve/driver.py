"""Simulated-clients driver: closed-loop load against a query service.

The paper's evaluation measures one scientist's console; a service is
justified by what happens when N scientists share the archive. This module
is the load harness behind ``repro serve`` and ``benchmarks/bench_serve.py``:

* :func:`build_workload` — N clients × Q queries over one repository, built
  so clients *overlap* on files (every client's q-th query touches the same
  station/channel/day, hence the same file) while their answers differ
  (each client asks a distinct nested time window). That is the service's
  target regime: shared files of interest, private answers.
* :func:`run_service_load` — one thread per client, closed loop (a client
  issues its next query when the previous one returns), all clients
  released together off a barrier; per-query wall-clock latencies recorded.
* :func:`run_standalone_baseline` — the comparison the acceptance criterion
  names: the same workload as N *independent* sessions, each with its own
  executor and its own cache, so nothing is shared and every client pays
  for every file it touches.
* :func:`run_comparison` — both, plus the answer-identity check: every
  client's every answer must be byte-identical between the two runs (same
  rows, same order), while the service's aggregate mounted bytes come in
  below the independent sessions' total.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.cache import CachePolicy, IngestionCache
from ..core.executor import TwoStageExecutor
from ..db.database import Database
from ..db.types import format_timestamp, parse_timestamp
from ..ingest.schema import RepositoryBinding
from ..mseed.repository import FileRepository
from ..mseed.synthesize import RepositorySpec
from .service import QueryService, ServiceStats

_DAY_US = 86_400 * 1_000_000

Rows = tuple[tuple[object, ...], ...]


def _rows_query(
    station: str,
    channel: str,
    day_start_us: int,
    window_start_us: int,
    window_end_us: int,
) -> str:
    """Query 1's join shape, returning the window's raw samples (row-level
    answers make the byte-identical comparison meaningful; an AVG would
    collapse every discrepancy into one float)."""
    day_end_us = day_start_us + _DAY_US - 1_000
    return (
        "SELECT D.sample_time, D.sample_value\n"
        "FROM F JOIN R ON F.uri = R.uri\n"
        "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id\n"
        f"WHERE F.station = '{station}' AND F.channel = '{channel}'\n"
        f"AND R.start_time > '{format_timestamp(day_start_us)}'\n"
        f"AND R.start_time < '{format_timestamp(day_end_us)}'\n"
        f"AND D.sample_time > '{format_timestamp(window_start_us)}'\n"
        f"AND D.sample_time < '{format_timestamp(window_end_us)}'"
    )


def build_workload(
    spec: RepositorySpec,
    clients: int,
    queries_per_client: int,
    window_minutes: int = 40,
    stagger_seconds: int = 30,
) -> list[list[str]]:
    """Per-client query lists with shared files and private windows.

    Every client's q-th query targets the same ``(station, channel, day)``
    — one file — so concurrent clients pile onto the scheduler's task for
    it; client ``c`` then asks the nested window
    ``[base + c·stagger, base + span − c·stagger]``, so no two clients'
    answers are equal (each is a strict subset of client 0's rows).
    """
    if clients < 1 or queries_per_client < 1:
        raise ValueError("clients and queries_per_client must be >= 1")
    span_us = window_minutes * 60 * 1_000_000
    stagger_us = stagger_seconds * 1_000_000
    if 2 * (clients - 1) * stagger_us >= span_us:
        raise ValueError(
            "window too narrow: the last client's nested window is empty"
        )
    start_us = parse_timestamp(spec.start_day)
    pairs = [(s, ch) for s in spec.stations for ch in spec.channels]
    workload: list[list[str]] = [[] for _ in range(clients)]
    for q in range(queries_per_client):
        station, channel = pairs[q % len(pairs)]
        day_start = start_us + (q % spec.days) * _DAY_US
        base = day_start + 6 * 3600 * 1_000_000
        for c in range(clients):
            workload[c].append(
                _rows_query(
                    station,
                    channel,
                    day_start,
                    base + c * stagger_us,
                    base + span_us - c * stagger_us,
                )
            )
    return workload


@dataclass(frozen=True)
class QueryOutcome:
    """One client query's fate under load."""

    client: int
    index: int
    latency_seconds: float
    rows: Optional[Rows]  # None when the query errored
    error: Optional[str] = None


@dataclass
class LoadResult:
    """One run of one workload (service or standalone)."""

    outcomes: list[QueryOutcome]
    wall_seconds: float
    mount_bytes: int

    @property
    def latencies(self) -> list[float]:
        return sorted(o.latency_seconds for o in self.outcomes)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of per-query latency, q in [0, 100]."""
        latencies = self.latencies
        if not latencies:
            return 0.0
        rank = max(0, min(len(latencies) - 1, round(q / 100 * len(latencies)) - 1))
        return latencies[rank]

    def answers(self) -> dict[tuple[int, int], Optional[Rows]]:
        return {(o.client, o.index): o.rows for o in self.outcomes}


def run_service_load(
    service: QueryService, workload: list[list[str]]
) -> LoadResult:
    """Drive the workload through the service, one closed-loop thread per
    client (client ``c`` runs as tenant ``client-c``)."""
    service.start()
    bytes_before = service.total_mount_bytes
    outcomes: list[QueryOutcome] = []
    outcome_lock = threading.Lock()
    barrier = threading.Barrier(len(workload) + 1)

    def run_client(client: int, queries: list[str]) -> None:
        tenant = f"client-{client}"
        barrier.wait()
        for index, sql in enumerate(queries):
            started = time.perf_counter()
            rows: Optional[Rows] = None
            error: Optional[str] = None
            try:
                result = service.execute(sql, tenant=tenant)
                rows = tuple(tuple(r) for r in result.rows)
            except Exception as exc:  # noqa: BLE001 - recorded per query
                error = f"{type(exc).__name__}: {exc}"
            latency = time.perf_counter() - started
            with outcome_lock:
                outcomes.append(
                    QueryOutcome(client, index, latency, rows, error)
                )

    threads = [
        threading.Thread(
            target=run_client, args=(c, queries), name=f"client-{c}"
        )
        for c, queries in enumerate(workload)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    return LoadResult(
        outcomes=outcomes,
        wall_seconds=wall,
        mount_bytes=service.total_mount_bytes - bytes_before,
    )


def run_standalone_baseline(
    db: Database,
    repository: FileRepository,
    workload: list[list[str]],
    mount_workers: int = 1,
) -> LoadResult:
    """The same workload as N truly independent sessions.

    Each client gets a fresh executor with its *own* unbounded cache —
    within one session repeated files are cached (a fair, competent
    baseline), but nothing crosses sessions, so every client pays the disk
    for every distinct file it touches. Clients run sequentially: the
    baseline's mounted-byte total is schedule-independent, and its
    latencies are each query's uncontended standalone cost.
    """
    outcomes: list[QueryOutcome] = []
    total_bytes = 0
    started_all = time.perf_counter()
    for client, queries in enumerate(workload):
        executor = TwoStageExecutor(
            db,
            RepositoryBinding(repository),
            cache=IngestionCache(policy=CachePolicy.UNBOUNDED),
            mount_workers=mount_workers,
        )
        for index, sql in enumerate(queries):
            started = time.perf_counter()
            rows: Optional[Rows] = None
            error: Optional[str] = None
            try:
                result = executor.execute(sql)
                rows = tuple(tuple(r) for r in result.rows)
            except Exception as exc:  # noqa: BLE001 - recorded per query
                error = f"{type(exc).__name__}: {exc}"
            outcomes.append(
                QueryOutcome(
                    client, index, time.perf_counter() - started, rows, error
                )
            )
        total_bytes += executor.mounts.stats.bytes_read
    return LoadResult(
        outcomes=outcomes,
        wall_seconds=time.perf_counter() - started_all,
        mount_bytes=total_bytes,
    )


@dataclass
class ComparisonReport:
    """Service run vs N independent sessions over one workload."""

    clients: int
    queries_per_client: int
    service: LoadResult
    baseline: LoadResult
    service_stats: ServiceStats
    mismatches: list[tuple[int, int]] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not self.mismatches

    @property
    def bytes_savings_ratio(self) -> float:
        """Independent-sessions bytes / service bytes (higher is better)."""
        if self.service.mount_bytes <= 0:
            return float(self.baseline.mount_bytes > 0) or 1.0
        return self.baseline.mount_bytes / self.service.mount_bytes

    def describe(self) -> str:
        lines = [
            f"{self.clients} clients x {self.queries_per_client} queries",
            (
                f"latency p50 {self.service.percentile(50) * 1e3:.1f} ms, "
                f"p99 {self.service.percentile(99) * 1e3:.1f} ms "
                f"(standalone p50 "
                f"{self.baseline.percentile(50) * 1e3:.1f} ms)"
            ),
            (
                f"mounted bytes: service {self.service.mount_bytes}, "
                f"independent sessions {self.baseline.mount_bytes} "
                f"({self.bytes_savings_ratio:.2f}x saved)"
            ),
            (
                "answers byte-identical to standalone"
                if self.identical
                else f"ANSWER MISMATCH on {len(self.mismatches)} queries: "
                f"{self.mismatches[:5]}"
            ),
        ]
        lines.append(self.service_stats.describe())
        return "\n".join(lines)


def run_comparison(
    repository: FileRepository,
    spec: RepositorySpec,
    clients: int = 4,
    queries_per_client: int = 3,
    service: Optional[QueryService] = None,
    mount_workers: int = 2,
) -> ComparisonReport:
    """Build the overlapping workload, run it both ways, diff the answers.

    The baseline reuses the service's (read-only once loaded) database, so
    the two runs see identical metadata; it runs *after* the service load,
    which only warms the OS page cache in the baseline's favour.
    """
    workload = build_workload(spec, clients, queries_per_client)
    owns_service = service is None
    if service is None:
        service = QueryService(
            repository, mount_workers=mount_workers
        )
    try:
        service_result = run_service_load(service, workload)
        stats = service.stats()
        baseline_result = run_standalone_baseline(
            service.db, repository, workload
        )
    finally:
        if owns_service:
            service.close()
    served = service_result.answers()
    standalone = baseline_result.answers()
    mismatches = [
        key
        for key in sorted(standalone)
        if served.get(key) != standalone[key]
    ]
    return ComparisonReport(
        clients=clients,
        queries_per_client=queries_per_client,
        service=service_result,
        baseline=baseline_result,
        service_stats=stats,
        mismatches=mismatches,
    )
