"""Cross-query shared-work mount scheduling — LifeRaft's move, generalized.

The per-query :class:`~repro.core.mountpool.MountPool` single-flights one
file *within* one query. The service layer needs the same guarantee *across*
queries: many concurrent sessions pause at the stage-1/stage-2 breakpoint
with overlapping files of interest, and each file should be extracted once
and its :class:`~repro.core.mounting.ExtractResult` fed to **every** waiting
query. That is LifeRaft's data-driven batching: group queries by the data
they wait on, serve the group with one pass.

Two classes implement it:

* :class:`MountScheduler` — the shared, service-lifetime object. It keeps one
  ``(table, uri)`` → :class:`_FileTask` table; each task accumulates waiters
  (one per paused query touching the file) and a hull-merged
  :class:`~repro.ingest.formats.MountRequest` (reusing the pool's
  :func:`~repro.core.mountpool.merge_requests`, so one extraction covers
  every waiter's interval). Worker threads repeatedly pick the
  highest-priority pending task, extract it, and publish the result to all
  waiters at once.
* :class:`SharedPoolClient` — the per-query facade. It speaks the MountPool
  interface (``prefetch`` / ``take`` / ``close`` / ``timings`` /
  ``cancel_outstanding``), so a :class:`~repro.core.executor.TwoStageExecutor`
  with a ``pool_factory`` drives the shared scheduler without changing a
  line of its stage-2 logic.

Scheduling policy
-----------------
:class:`SchedulerPolicy` is the LifeRaft-style throughput ↔ fairness knob.
A pending task's priority is::

    priority = throughput_bias * waiters + age_seconds / aging_seconds

``throughput_bias`` near 1.0 favours *popular* files — one extraction
retires many queries, maximizing aggregate throughput but starving
low-overlap queries while popular work keeps arriving. Bias near 0.0
degenerates to FIFO by age. The additive age term is the starvation-aging
guarantee: it grows without bound regardless of the bias, so every task's
priority eventually exceeds any fixed popularity — a lone low-overlap query
waits at most ``aging_seconds × (bias × max_waiters)`` behind the crowd,
never forever.

Task states
-----------
``pending → running → done | failed``. A task is *pending* from first
registration until a worker (or a stealing consumer) claims it, *running*
during extraction, then *done* (result published) or *failed* (exception
published). Completed tasks are retained only until their last registered
waiter consumes them; failed tasks are likewise drained and dropped, so the
next query registering the same file gets a fresh attempt (mirroring the
per-query quarantine's "fresh chance next query" semantics). Every waiter
of a failed task receives the same typed exception and applies its own
session policy — skip/fail, retry ladders, and per-tenant circuit breakers
all stay query-side.

Work conservation mirrors the pool: a consumer whose task is still pending
claims and extracts it inline instead of idling, so a scheduler with slow
(or zero) workers degrades to serial execution, never to a stall.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .. import _sync
from ..core.governor import CancellationToken
from ..core.mounting import ExtractResult
from ..core.mountpool import (
    ExtractFn,
    MountKey,
    MountPoolTimings,
    MountTaskTiming,
    merge_requests,
)
from ..ingest.formats import MountRequest
from ..remote.uris import endpoint_of

# Task lifecycle states (see module docstring).
TASK_PENDING = "pending"
TASK_RUNNING = "running"
TASK_DONE = "done"
TASK_FAILED = "failed"

_WAIT_POLL_SECONDS = 0.05  # waiter wake-up interval for cancellation checks


@dataclass(frozen=True)
class SchedulerPolicy:
    """The throughput ↔ fairness knob, with starvation aging.

    ``throughput_bias`` ∈ [0, 1] weights a task's waiter count; the age
    term ``age / aging_seconds`` is always added, so aging is unconditional
    (the starvation guarantee) and ``aging_seconds`` sets how long a wait
    counts as much as one extra waiter. ``starvation_threshold_seconds``
    only classifies grants for the ops counters: a grant whose waiter
    waited longer counts as *starved* in :class:`SchedulerStats`.

    ``batch_window_seconds`` is LifeRaft's batching delay: a pending task
    is not eligible to run (by a worker *or* a stealing consumer) until it
    has aged past the window, so queries arriving within a few
    milliseconds of each other hull-merge into one extraction instead of
    the first arriver racing off with its own narrow interval. It buys
    aggregate bytes with per-query latency — every cold file costs the
    window — and is measured against the real clock (an injected test
    clock drives priorities, not the batching wait), so tests using a fake
    clock should set it to 0.
    """

    throughput_bias: float = 0.7
    aging_seconds: float = 0.25
    starvation_threshold_seconds: float = 2.0
    batch_window_seconds: float = 0.02
    # Per-endpoint concurrency cap for *worker* picks: at most this many
    # remote tasks of one endpoint run at once, so a slow or flapping
    # endpoint cannot absorb the whole worker fleet. None disables the cap;
    # local files (no endpoint) are never capped, and the consumer steal
    # path is exempt — work conservation beats politeness when a query is
    # actually waiting.
    max_inflight_per_endpoint: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.throughput_bias <= 1.0:
            raise ValueError(
                f"throughput_bias must be in [0, 1], got {self.throughput_bias!r}"
            )
        if self.aging_seconds <= 0:
            raise ValueError(
                f"aging_seconds must be positive, got {self.aging_seconds!r}"
            )
        if self.starvation_threshold_seconds <= 0:
            raise ValueError(
                "starvation_threshold_seconds must be positive, "
                f"got {self.starvation_threshold_seconds!r}"
            )
        if self.batch_window_seconds < 0:
            raise ValueError(
                "batch_window_seconds must be >= 0, "
                f"got {self.batch_window_seconds!r}"
            )
        if (
            self.max_inflight_per_endpoint is not None
            and self.max_inflight_per_endpoint < 1
        ):
            raise ValueError(
                "max_inflight_per_endpoint must be >= 1, "
                f"got {self.max_inflight_per_endpoint!r}"
            )


@dataclass
class SchedulerStats:
    """Shared-work accounting for one scheduler lifetime.

    ``grants`` counts results delivered to waiting queries;
    ``shared_grants`` the grants beyond the first per extraction — the
    work-sharing win. ``bytes_shared`` is the byte volume those re-grants
    would have re-extracted in independent sessions. ``starved_grants``
    and ``max_wait_seconds`` are the fairness side of the ops story: a
    rising starved count under a high ``throughput_bias`` is the signal to
    turn the knob down.
    """

    tasks_created: int = 0
    tasks_extracted: int = 0
    tasks_failed: int = 0
    grants: int = 0
    shared_grants: int = 0
    inline_steals: int = 0
    unscheduled_mounts: int = 0  # client fallbacks that bypassed the table
    withdrawn: int = 0  # interests dropped by cancelled/closed queries
    starved_grants: int = 0
    bytes_extracted: int = 0
    bytes_shared: int = 0
    max_wait_seconds: float = 0.0
    hints_registered: int = 0  # speculative prefetch tasks accepted
    hint_extractions: int = 0  # hint tasks actually extracted by a worker
    endpoint_deferrals: int = 0  # picks skipped by the per-endpoint cap


@dataclass
class _FileTask:
    """One file's shared extraction: waiters, merged request, outcome."""

    key: MountKey
    request: Optional[MountRequest]
    seq: int  # arrival order, the deterministic tie-break
    enqueued_at: float  # injected-clock time, drives priority aging
    born_at: float = 0.0  # real (monotonic) time, drives the batch window
    state: str = TASK_PENDING
    waiters: dict[int, float] = field(default_factory=dict)  # client → t
    # Speculative prefetch task: no waiters of its own, runs only when no
    # real task pends, survives waiter-less reaping while pending. A real
    # query registering on the key joins it like any pending task.
    hint: bool = False
    consumers: int = 0
    result: Optional[ExtractResult] = None
    error: Optional[BaseException] = None
    extract_seconds: float = 0.0
    event: threading.Event = field(default_factory=threading.Event)


@_sync.guarded
class MountScheduler:
    """The shared files-of-interest scheduler behind a query service.

    ``extract`` is the service-owned extraction function (typically a
    dedicated :class:`~repro.core.mounting.MountService`'s ``_extract`` —
    *without* a per-query governor: queries are charged at consume time by
    their own :class:`SharedPoolClient`, so every query pays for the bytes
    it uses exactly as it would standalone, even when the extraction ran
    once for eight of them). ``clock`` is injectable so the aging math is
    testable without sleeping.
    """

    def __init__(
        self,
        extract: ExtractFn,
        policy: Optional[SchedulerPolicy] = None,
        workers: int = 2,
        clock: Callable[[], float] = time.monotonic,
        on_hint_result: Optional[
            Callable[[MountKey, Optional[MountRequest], ExtractResult], None]
        ] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers must be >= 0")
        self._extract = extract
        self.policy = policy or SchedulerPolicy()
        self.workers = workers
        # Called (outside the lock) with each completed hint task's key,
        # request and result — the service stores it into the shared cache.
        # unguarded-ok: set at construction, read-only afterwards.
        self._on_hint_result = on_hint_result
        self._clock = clock
        self._lock = _sync.create_lock("MountScheduler._lock")
        # The wakeup condition *shares* _lock: waiters and mutators
        # serialize on one mutex, so `with self._wakeup:` is `with
        # self._lock:` plus the ability to park.
        self._wakeup = _sync.create_condition(
            "MountScheduler._wakeup", self._lock
        )
        self._tasks: dict[MountKey, _FileTask] = {}  # guarded-by: _lock
        self._seq = itertools.count()  # guarded-by: _lock
        # unguarded-ok: itertools.count.__next__ is atomic in CPython; the
        # id handed out only needs uniqueness, not ordering.
        self._client_ids = itertools.count(1)
        self._threads: list[threading.Thread] = []  # guarded-by: _lock
        self._stop = False  # guarded-by: _lock
        self.stats = SchedulerStats()  # guarded-by: _lock

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (idempotent). ``workers=0`` is legal:
        consumers then run every extraction through the steal path, which
        is the deterministic single-threaded mode the tests use.

        The thread list is created *and registered* under the lock before
        anything starts: two concurrent ``start()`` calls used to both see
        an empty ``_threads`` (the check and the appends were in separate
        lock regions) and double-spawn the worker fleet.
        """
        with self._lock:
            if self._threads or self.workers == 0:
                return
            self._stop = False
            spawned = [
                threading.Thread(
                    target=self._worker_loop,
                    name=f"serve-mount-{index}",
                    daemon=True,
                )
                for index in range(self.workers)
            ]
            self._threads.extend(spawned)
        for thread in spawned:
            thread.start()

    def close(self) -> None:
        """Stop the workers. Pending tasks stay pending; clients still
        blocked on them complete through the steal path, so closing the
        scheduler can slow queries down but never wedge them."""
        with self._wakeup:
            self._stop = True
            self._wakeup.notify_all()
            # Snapshot + clear under the lock; joining happens outside it
            # (a worker may need the lock to observe _stop and exit).
            stopping = list(self._threads)
            self._threads.clear()
        for thread in stopping:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MountScheduler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def client(
        self,
        token: Optional[CancellationToken] = None,
        governor=None,  # Optional[QueryGovernor]; typed loosely, import cycle
    ) -> "SharedPoolClient":
        """A fresh per-query facade over this scheduler."""
        return SharedPoolClient(
            self, next(self._client_ids), token=token, governor=governor
        )

    # -- registration / consumption (client-facing) --------------------------

    def register(
        self, client_id: int, tasks: Sequence
    ) -> dict[MountKey, _FileTask]:
        """Register one query's mount branches; returns key → task.

        Joins an existing pending/running/done task when one is live for
        the key (widening a *pending* task's request by hull-merge);
        creates a fresh task otherwise — including when the live task
        already *failed*, so a new query never inherits a stale failure.
        """
        joined: dict[MountKey, _FileTask] = {}
        now = self._clock()
        with self._wakeup:
            for task_spec in tasks:
                table_name, uri = task_spec[0], task_spec[1]
                request = task_spec[2] if len(task_spec) > 2 else None
                key: MountKey = (table_name, uri)
                if key in joined:
                    continue  # one waiter entry per (query, key)
                task = self._tasks.get(key)
                if task is None or task.state == TASK_FAILED:
                    task = _FileTask(
                        key=key,
                        request=request,
                        seq=next(self._seq),
                        enqueued_at=now,
                        born_at=time.monotonic(),
                    )
                    self._tasks[key] = task
                    self.stats.tasks_created += 1
                elif task.state == TASK_PENDING:
                    task.request = merge_requests(task.request, request)
                # running/done: the request cannot widen any more; the
                # client's coverage check falls back inline if too narrow.
                task.waiters[client_id] = now
                joined[key] = task
            self._wakeup.notify_all()
        return joined

    def hint(self, tasks: Sequence) -> int:
        """Register speculative prefetch tasks; returns how many were accepted.

        Hints are the predictive-prefetch entry point: waiter-less tasks a
        worker extracts only when no *real* (waiter-having) task is pending,
        so speculation can never delay a query. Keys with a live task are
        skipped (the real task already covers them); a completed hint's
        result is handed to ``on_hint_result`` for cache storage. Task specs
        are the same ``(table_name, uri, request?)`` tuples ``register``
        takes.
        """
        accepted = 0
        now = self._clock()
        with self._wakeup:
            if self._stop:
                return 0
            for task_spec in tasks:
                table_name, uri = task_spec[0], task_spec[1]
                request = task_spec[2] if len(task_spec) > 2 else None
                key: MountKey = (table_name, uri)
                if key in self._tasks:
                    continue
                self._tasks[key] = _FileTask(
                    key=key,
                    request=request,
                    seq=next(self._seq),
                    enqueued_at=now,
                    born_at=time.monotonic(),
                    hint=True,
                )
                self.stats.tasks_created += 1
                self.stats.hints_registered += 1
                accepted += 1
            if accepted:
                self._wakeup.notify_all()
        return accepted

    def withdraw(self, client_id: int, tasks: Sequence[_FileTask]) -> None:
        """Drop a client's remaining interest (query done or cancelled).

        A pending task nobody waits for any more is removed outright — no
        worker will waste an extraction on it; a completed one is freed as
        soon as its last interested waiter is gone.
        """
        with self._lock:
            for task in tasks:
                if task.waiters.pop(client_id, None) is not None:
                    self.stats.withdrawn += 1
                self._reap_locked(task)

    def take(
        self,
        client_id: int,
        task: _FileTask,
        token: Optional[CancellationToken] = None,
    ) -> tuple[ExtractResult, float]:
        """Block until ``task`` completes; return (result, extract_seconds).

        Work conservation: a still-pending task is claimed and extracted
        inline on the consuming thread. The wait is cancellation-aware —
        a fired token withdraws this waiter and raises its typed
        interruption, leaving the task to its other waiters.
        """
        claimed = False
        while True:
            with self._lock:
                if task.state != TASK_PENDING:
                    break
                window_left = (
                    task.born_at
                    + self.policy.batch_window_seconds
                    - time.monotonic()
                )
                if window_left <= 0:
                    task.state = TASK_RUNNING
                    claimed = True
                    self.stats.inline_steals += 1
                    break
            # Inside the batch window: give co-arriving queries their few
            # milliseconds to hull-merge before anyone extracts.
            if token is not None and token.fired:
                self.withdraw(client_id, [task])
                interruption = token.interruption()
                assert interruption is not None
                raise interruption
            task.event.wait(min(_WAIT_POLL_SECONDS, max(window_left, 0.001)))
        if claimed:
            self._run_task(task)
        while not task.event.wait(_WAIT_POLL_SECONDS):
            if token is not None and token.fired:
                self.withdraw(client_id, [task])
                interruption = token.interruption()
                assert interruption is not None
                raise interruption
        return self._grant(client_id, task)

    def extract_now(
        self, uri: str, table_name: str, request: Optional[MountRequest]
    ) -> tuple[ExtractResult, float]:
        """One unscheduled extraction through the shared extract function.

        The client's fallback for keys it never prefetched (cache-scan
        misses that fell back to mounting) and for scheduled results whose
        coverage turned out too narrow. Bypasses the task table — callers
        need the result *now*, on their own thread.
        """
        started = time.perf_counter()
        result = self._extract(uri, table_name, request)
        elapsed = time.perf_counter() - started
        with self._lock:
            self.stats.unscheduled_mounts += 1
            self.stats.tasks_extracted += 1
            self.stats.bytes_extracted += result.bytes_read
        return result, elapsed

    # -- scheduling core -----------------------------------------------------

    def _priority(self, task: _FileTask, now: float) -> float:
        """LifeRaft knob: popularity weighted by the bias, plus raw age."""
        age = max(0.0, now - task.enqueued_at)
        return (
            self.policy.throughput_bias * len(task.waiters)
            + age / self.policy.aging_seconds
        )

    def peek_next(self) -> Optional[MountKey]:
        """The key the scheduler would run next (None when nothing pends).

        Exposed for tests and operators: deterministic given the injected
        clock — highest priority wins, earliest arrival breaks ties.
        """
        with self._lock:
            task = self._pick_locked()
            return task.key if task is not None else None

    def _pick_locked(self) -> Optional[_FileTask]:
        now = self._clock()
        window = self.policy.batch_window_seconds
        mature_before = time.monotonic() - window
        cap = self.policy.max_inflight_per_endpoint
        running_per_endpoint: dict[str, int] = {}
        if cap is not None:
            for task in self._tasks.values():
                if task.state == TASK_RUNNING:
                    endpoint = endpoint_of(task.key[1])
                    if endpoint is not None:
                        running_per_endpoint[endpoint] = (
                            running_per_endpoint.get(endpoint, 0) + 1
                        )
        best: Optional[_FileTask] = None
        best_rank: tuple[float, float] = (0.0, 0.0)
        best_hint: Optional[_FileTask] = None
        for task in self._tasks.values():
            if task.state != TASK_PENDING:
                continue
            if cap is not None:
                endpoint = endpoint_of(task.key[1])
                if (
                    endpoint is not None
                    and running_per_endpoint.get(endpoint, 0) >= cap
                ):
                    # The endpoint already saturates its worker allowance;
                    # leave the task pending so the fleet serves other
                    # sources. Consumers stealing their own task bypass
                    # this pick entirely.
                    self.stats.endpoint_deferrals += 1
                    continue
            if not task.waiters:
                # Waiter-less pending tasks are speculative hints (an
                # abandoned real task would have been reaped): lowest
                # priority class, oldest first, no batch window — nobody is
                # waiting, so there is nothing to hull-merge with.
                if task.hint and (
                    best_hint is None or task.seq < best_hint.seq
                ):
                    best_hint = task
                continue
            if window > 0 and task.born_at > mature_before:
                continue  # still inside its batch window
            rank = (self._priority(task, now), -task.seq)
            if best is None or rank > best_rank:
                best, best_rank = task, rank
        return best if best is not None else best_hint

    def _worker_loop(self) -> None:
        while True:
            with self._wakeup:
                task = None
                while not self._stop:
                    task = self._pick_locked()
                    if task is not None:
                        break
                    self._wakeup.wait(0.1)
                if self._stop:
                    return
                assert task is not None
                task.state = TASK_RUNNING
            self._run_task(task)

    def _run_task(self, task: _FileTask) -> None:
        """Extract one claimed task and publish the outcome to all waiters."""
        table_name, uri = task.key
        started = time.perf_counter()
        try:
            result = self._extract(uri, table_name, task.request)
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            if getattr(exc, "mount_uri", None) is None:
                try:
                    exc.mount_uri = uri  # type: ignore[attr-defined]
                except AttributeError:  # pragma: no cover - slotted exception
                    pass
            with self._wakeup:
                task.error = exc
                task.state = TASK_FAILED
                task.extract_seconds = time.perf_counter() - started
                self.stats.tasks_failed += 1
                self._reap_locked(task)
                self._wakeup.notify_all()
            task.event.set()
            return
        with self._wakeup:
            task.result = result
            task.state = TASK_DONE
            task.extract_seconds = time.perf_counter() - started
            self.stats.tasks_extracted += 1
            self.stats.bytes_extracted += result.bytes_read
            if task.hint:
                self.stats.hint_extractions += 1
            self._reap_locked(task)
            self._wakeup.notify_all()
        task.event.set()
        if task.hint and self._on_hint_result is not None:
            # Outside the lock: the callback stores into the shared cache
            # (which locks itself). A failing store only loses the
            # speculative benefit — it must never take down a worker.
            try:
                self._on_hint_result(task.key, task.request, result)
            except Exception:  # noqa: BLE001 - speculative, best-effort
                pass

    def _grant(
        self, client_id: int, task: _FileTask
    ) -> tuple[ExtractResult, float]:
        with self._lock:
            registered_at = task.waiters.pop(client_id, None)
            waited = (
                self._clock() - registered_at
                if registered_at is not None
                else 0.0
            )
            self.stats.grants += 1
            if task.consumers >= 1:
                self.stats.shared_grants += 1
                if task.result is not None:
                    self.stats.bytes_shared += task.result.bytes_read
            task.consumers += 1
            if waited > self.policy.starvation_threshold_seconds:
                self.stats.starved_grants += 1
            if waited > self.stats.max_wait_seconds:
                self.stats.max_wait_seconds = waited
            self._reap_locked(task)
        if task.error is not None:
            raise task.error
        assert task.result is not None
        return task.result, task.extract_seconds

    def _reap_locked(self, task: _FileTask) -> None:
        """Drop a finished (or abandoned-pending) task once nobody waits."""
        if task.waiters:
            return
        if task.hint and task.state == TASK_PENDING:
            return  # hints are waiter-less by design; keep until run
        if task.state in (TASK_DONE, TASK_FAILED, TASK_PENDING):
            if self._tasks.get(task.key) is task:
                del self._tasks[task.key]

    # -- introspection -------------------------------------------------------

    def pending_tasks(self) -> int:
        with self._lock:
            return sum(
                1 for t in self._tasks.values() if t.state == TASK_PENDING
            )


@_sync.guarded
class SharedPoolClient:
    """One query's MountPool-compatible view of the shared scheduler.

    Created per execution by the query service's ``pool_factory``; the
    executor and :class:`~repro.core.mounting.MountService` drive it exactly
    like a :class:`~repro.core.mountpool.MountPool`:

    * :meth:`prefetch` registers the query's mount branches with the
      scheduler (this is the query "entering the scheduler" at the
      stage-1/stage-2 breakpoint — registration is the pause; the plan's
      first :meth:`take` is the resume).
    * :meth:`take` blocks on the shared task, charges this query's governor
      once per distinct file consumed (so per-query and per-tenant budgets
      see the same bytes a standalone run would), and retains the batch for
      duplicate takes of one key (self-joins), mirroring pool single-flight.
    * :meth:`close` withdraws whatever the plan never consumed.

    ``timings`` reports the *consumed* extraction costs — what this query's
    mounts cost wherever they ran, which is what a per-query speedup or
    billing report wants; the scheduler's own stats carry the shared-work
    (bytes-saved) view.
    """

    def __init__(
        self,
        scheduler: MountScheduler,
        client_id: int,
        token: Optional[CancellationToken] = None,
        governor=None,  # Optional[QueryGovernor]
    ) -> None:
        self._scheduler = scheduler
        self._client_id = client_id
        self._token = token
        self._governor = governor
        self.timings = MountPoolTimings()  # guarded-by: _lock
        self._tasks: dict[MountKey, _FileTask] = {}  # guarded-by: _lock
        self._pending_takes: dict[MountKey, int] = {}  # guarded-by: _lock
        self._held: dict[MountKey, ExtractResult] = {}  # guarded-by: _lock
        self._charged: set[MountKey] = set()  # guarded-by: _lock
        self._lock = _sync.create_lock("SharedPoolClient._lock")
        if token is not None:
            token.on_cancel(self.cancel_outstanding)

    # -- MountPool interface -------------------------------------------------

    def prefetch(self, tasks: Sequence) -> None:
        """Register the plan's mount branches with the shared scheduler."""
        fresh = []
        with self._lock:
            for task in tasks:
                key: MountKey = (task[0], task[1])
                self._pending_takes[key] = self._pending_takes.get(key, 0) + 1
                if key not in self._tasks:
                    fresh.append(task)
        if fresh:
            joined = self._scheduler.register(self._client_id, fresh)
            with self._lock:
                self._tasks.update(joined)

    def take(
        self,
        uri: str,
        table_name: str,
        request: Optional[MountRequest] = None,
    ) -> ExtractResult:
        """This branch's extraction result, shared or inline."""
        key: MountKey = (table_name, uri)
        with self._lock:
            held = self._held.get(key)
            task = self._tasks.get(key)
        if held is not None:
            return self._consume(key, held)
        if task is None:
            # Never prefetched (a cache-scan miss falling back to mount):
            # extract inline through the shared service function.
            result, elapsed = self._scheduler.extract_now(
                uri, table_name, request
            )
            self._account(key, result, elapsed)
            return self._consume(key, result)
        result, extract_seconds = self._scheduler.take(
            self._client_id, task, token=self._token
        )
        self._account(key, result, extract_seconds)
        return self._consume(key, result)

    def release(self, table_name: str, uri: str) -> bool:
        """Renounce one expected take of a key (Top-N early termination).

        Mirrors :meth:`~repro.core.mountpool.MountPool.release`: the plan
        proved this branch cannot contribute, so one pending take is
        dropped; at zero this query's interest is withdrawn from the shared
        task (a pending task nobody else waits on is reaped before any
        worker spends an extraction on it). Returns True when this query
        will not pay for the extraction; the scheduler may still run it for
        other queries — that is shared-work, not waste.
        """
        key: MountKey = (table_name, uri)
        with self._lock:
            if key not in self._pending_takes:
                return False
            remaining = self._pending_takes[key] - 1
            if remaining > 0:
                self._pending_takes[key] = remaining
                return False
            self._pending_takes.pop(key, None)
            held = self._held.pop(key, None) is not None
            task = self._tasks.pop(key, None)
        if held or task is None:
            return False  # already extracted and consumed for this query
        self._scheduler.withdraw(self._client_id, [task])
        return True

    def close(self) -> None:
        """Withdraw un-consumed interest; the scheduler drops orphan tasks."""
        self.cancel_outstanding()

    def cancel_outstanding(self) -> None:
        with self._lock:
            leftovers = [
                task
                for key, task in self._tasks.items()
                if self._pending_takes.get(key, 0) > 0
                and key not in self._held
            ]
        if leftovers:
            self._scheduler.withdraw(self._client_id, leftovers)

    # -- internals -----------------------------------------------------------

    def _account(
        self, key: MountKey, result: ExtractResult, extract_seconds: float
    ) -> None:
        """Per-query cost attribution + budget charge, once per file."""
        with self._lock:
            first = key not in self._charged
            if first:
                self._charged.add(key)
                self.timings.tasks.append(
                    MountTaskTiming(
                        uri=key[1],
                        table_name=key[0],
                        worker=0,
                        extract_seconds=extract_seconds,
                        io_seconds=result.io_seconds,
                    )
                )
        if first and self._governor is not None:
            # Same ledger a standalone run would build: one charge per
            # distinct file this query consumed, for the bytes the shared
            # extraction actually read. Raise-mode exhaustion propagates
            # from here exactly like a pool-worker charge would.
            self._governor.charge_mount(
                result.bytes_read, result.records_decoded
            )

    def _consume(self, key: MountKey, result: ExtractResult) -> ExtractResult:
        """Single-flight bookkeeping for duplicate takes of one key."""
        with self._lock:
            remaining = self._pending_takes.get(key, 1) - 1
            if remaining > 0:
                self._pending_takes[key] = remaining
                self._held[key] = result
            else:
                self._pending_takes.pop(key, None)
                self._held.pop(key, None)
        return result
