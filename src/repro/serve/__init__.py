"""`repro.serve` — the multi-query service layer.

One shared Database + IngestionCache + MountScheduler serving many
concurrent sessions: queries pause at the stage-1/stage-2 breakpoint,
register their files of interest with a cross-query scheduler
(LifeRaft-style data-driven batching with a throughput ↔ fairness knob and
starvation aging), and every completed extraction feeds every waiting
query. Per-tenant admission control — queue-depth shedding, per-query
budgets, tenant byte ledgers, per-tenant circuit breakers — turns the
single-user governor machinery into a multi-user story.
"""

from .driver import (
    ComparisonReport,
    LoadResult,
    QueryOutcome,
    build_workload,
    run_comparison,
    run_service_load,
    run_standalone_baseline,
)
from .scheduler import (
    MountScheduler,
    SchedulerPolicy,
    SchedulerStats,
    SharedPoolClient,
)
from .service import (
    QueryService,
    ServiceStats,
    TenantClient,
    TenantPolicy,
    TenantSnapshot,
    TenantState,
)

__all__ = [
    "MountScheduler",
    "SchedulerPolicy",
    "SchedulerStats",
    "SharedPoolClient",
    "QueryService",
    "ServiceStats",
    "TenantClient",
    "TenantPolicy",
    "TenantSnapshot",
    "TenantState",
    "ComparisonReport",
    "LoadResult",
    "QueryOutcome",
    "build_workload",
    "run_comparison",
    "run_service_load",
    "run_standalone_baseline",
]
