"""Command-line interface: ``python -m repro <command>``.

Commands cover the whole zero-to-exploration path:

* ``generate`` — synthesize an xSEED repository,
* ``inspect``  — repository statistics from header-only scans,
* ``load``     — ingest (eagerly or metadata-only) and persist a database,
* ``query``    — run SQL: against a persisted database, or two-stage with
  automated lazy ingestion straight against a repository,
* ``bench``    — regenerate the paper's Table 1 / Figure 3 at a chosen scale,
* ``serve``    — stand up the multi-query service over a repository and
  drive N simulated clients through it, reporting per-query latency
  percentiles, aggregate bytes saved versus independent sessions, and the
  scheduler's sharing/fairness counters.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .core import QueryBudget, TwoStageExecutor
from .db import Database, DatabaseError
from .ingest import RepositoryBinding, eager_ingest, lazy_ingest_metadata
from .mseed import FileRepository, RepositorySpec, generate_repository


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Two-stage query execution with automated lazy ingestion",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    gen = commands.add_parser(
        "generate", help="synthesize an xSEED file repository"
    )
    gen.add_argument("--root", required=True, help="output directory")
    gen.add_argument("--stations", default="ISK,ANK,IZM")
    gen.add_argument("--channels", default="BHE,BHN,BHZ")
    gen.add_argument("--days", type=int, default=2)
    gen.add_argument("--start-day", default="2010-01-10")
    gen.add_argument("--sample-rate", type=float, default=0.1)
    gen.add_argument("--samples-per-record", type=int, default=1800)
    gen.add_argument("--seed", type=int, default=2013)

    inspect = commands.add_parser(
        "inspect", help="repository statistics (header-only)"
    )
    inspect.add_argument("--repo", required=True)

    load = commands.add_parser(
        "load", help="ingest a repository and persist the database"
    )
    load.add_argument("--repo", required=True)
    load.add_argument("--db", required=True, help="database directory to write")
    load.add_argument(
        "--mode", choices=("eager", "lazy"), default="lazy",
        help="eager = Ei (full load + indexes); lazy = ALi metadata only",
    )

    query = commands.add_parser("query", help="run one SQL query")
    query.add_argument("sql")
    source = query.add_mutually_exclusive_group(required=False)
    source.add_argument("--db", help="persisted database directory")
    source.add_argument(
        "--repo", help="repository: metadata loads on the fly, two-stage "
        "execution mounts files of interest",
    )
    query.add_argument(
        "--remote", action="append", default=[], metavar="ENDPOINT=DIR",
        help="serve DIR as the simulated remote endpoint ENDPOINT and "
        "federate it with --repo (repeatable; may also stand alone). "
        "Remote files mount through ranged GETs over the resilient "
        "transport; shape the link with the --endpoint-* knobs",
    )
    query.add_argument(
        "--endpoint-latency-ms", type=float, default=0.0, metavar="MS",
        help="simulated per-request latency for every --remote endpoint",
    )
    query.add_argument(
        "--endpoint-jitter", type=float, default=0.0, metavar="J",
        help="latency jitter fraction in [0, 1] for --remote endpoints",
    )
    query.add_argument(
        "--endpoint-bandwidth-mbps", type=float, default=None, metavar="MB",
        help="simulated bandwidth cap in MB/s (default: unlimited)",
    )
    query.add_argument(
        "--endpoint-loss", type=float, default=0.0, metavar="P",
        help="per-request loss probability in [0, 1) for --remote endpoints",
    )
    query.add_argument(
        "--endpoint-seed", type=int, default=0, metavar="N",
        help="seed of the deterministic network model (same seed = same "
        "latency/loss draws)",
    )
    query.add_argument(
        "--endpoint-timeout-ms", type=float, default=None, metavar="MS",
        help="per-request timeout; a request that outlives it is abandoned "
        "and retried (default: no timeout)",
    )
    query.add_argument(
        "--endpoint-retries", type=_positive_int, default=3, metavar="N",
        help="max attempts per remote request (default 3)",
    )
    query.add_argument(
        "--endpoint-retry-budget", type=int, default=64, metavar="N",
        help="per-query cap on retries + hedges across all remote requests "
        "(default 64)",
    )
    query.add_argument(
        "--endpoint-hedge-percentile", type=float, default=None, metavar="P",
        help="enable hedged backup requests: when a request outlives this "
        "latency percentile of recent requests, race a second one and take "
        "the first answer (e.g. 0.95; default: hedging off)",
    )
    query.add_argument(
        "--explain", action="store_true", help="print the plan instead"
    )
    query.add_argument(
        "--breakpoint", action="store_true",
        help="print what the system knew between the stages (repo mode)",
    )
    query.add_argument(
        "--mount-workers", type=_positive_int, default=1, metavar="N",
        help="stage-2 mount parallelism: fan files of interest out to N "
        "workers (1 = serial, the paper's behavior; repo mode only)",
    )
    query.add_argument(
        "--on-mount-error", choices=("fail", "skip"), default="fail",
        help="degradation policy for unreadable repository files: fail = "
        "abort on the first corrupt/truncated/stale file (default); skip = "
        "quarantine it, answer from the intact rest and report what was "
        "skipped (repo mode only)",
    )
    query.add_argument(
        "--no-selective-mounts", action="store_true",
        help="disable record-granular selective mounting: always read and "
        "decode whole files even when the fused predicate bounds the time "
        "interval (repo mode only)",
    )
    query.add_argument(
        "--deadline-seconds", type=float, default=None, metavar="S",
        help="wall-clock budget for the whole query: mounting, retries and "
        "the kernel loop all stop within milliseconds of the deadline "
        "(repo mode only)",
    )
    query.add_argument(
        "--max-mount-bytes", type=_positive_int, default=None, metavar="B",
        help="cap on bytes mounted off the repository by one query "
        "(repo mode only)",
    )
    query.add_argument(
        "--max-decoded-records", type=_positive_int, default=None,
        metavar="N",
        help="cap on records decoded by one query (repo mode only)",
    )
    query.add_argument(
        "--on-budget", choices=("raise", "partial"), default="raise",
        help="what exhausting a budget does: raise = abort with a typed "
        "error (default); partial = answer from the tuples produced so "
        "far and report the truncation",
    )
    query.add_argument(
        "--cache-policy",
        choices=("discard", "unbounded", "lru", "adaptive"),
        default="discard",
        help="ingestion-cache retention: discard = the paper's default "
        "(nothing survives the query); unbounded = retain everything; lru = "
        "byte-budgeted least-recently-used; adaptive = byte-budgeted with "
        "workload-learned (LRU-2) eviction and per-file whole-file "
        "promotion (repo mode only)",
    )
    query.add_argument(
        "--cache-bytes", type=_positive_int, default=256_000_000,
        metavar="B",
        help="cache capacity for --cache-policy lru/adaptive "
        "(default 256 MB)",
    )
    query.add_argument(
        "--metastore", action="store_true",
        help="persist derived metadata (record byte maps, time hulls, file "
        "signatures) to a sidecar in the repository root and reuse it on "
        "the next run: unchanged files skip the header walk entirely; "
        "changed files fall back to live extraction (repo mode only)",
    )
    query.add_argument(
        "--verify-plans", action="store_true",
        help="check structural plan invariants after every rewrite pass, "
        "the two-stage split, and the stage-2 rewrite; abort with the "
        "offending pass and node on a violation (REPRO_VERIFY_PLANS=1 "
        "makes this the default)",
    )
    query.add_argument("--limit", type=int, default=25,
                       help="rows to display")

    bench = commands.add_parser(
        "bench", help="regenerate Table 1 and Figure 3"
    )
    bench.add_argument(
        "--scale", choices=("tiny", "small", "default"), default="small"
    )
    bench.add_argument("--runs", type=int, default=3)

    serve = commands.add_parser(
        "serve",
        help="run the multi-query service with N simulated clients",
    )
    serve.add_argument(
        "--repo", default=None,
        help="repository to serve (default: a generated benchmark "
        "repository at --scale)",
    )
    serve.add_argument(
        "--scale", choices=("tiny", "small", "default"), default="small",
        help="benchmark repository scale when no --repo is given",
    )
    serve.add_argument(
        "--clients", type=_positive_int, default=8, metavar="N",
        help="simulated closed-loop clients (one tenant each)",
    )
    serve.add_argument(
        "--queries-per-client", type=_positive_int, default=3, metavar="Q",
        help="queries each client issues back-to-back",
    )
    serve.add_argument(
        "--mount-workers", type=_positive_int, default=2, metavar="W",
        help="shared scheduler extraction workers (service-wide)",
    )
    serve.add_argument(
        "--throughput-bias", type=float, default=0.7, metavar="B",
        help="scheduler knob in [0,1]: 1.0 = serve the most-waited-on "
        "files first (throughput), 0.0 = strict arrival order (fairness); "
        "starvation aging applies at every setting",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=20.0, metavar="MS",
        help="batching delay before a cold file is extracted, letting "
        "co-arriving queries merge into one extraction (0 disables)",
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="D",
        help="per-tenant admission limit on in-flight queries; beyond it "
        "submissions are shed with a typed error instead of queued",
    )
    serve.add_argument(
        "--prefetch", action="store_true",
        help="predictive prefetch: after each query, extrapolate the "
        "tenant's next time window (sliding/zooming patterns) and warm the "
        "shared cache through low-priority scheduler hints that run only "
        "when no real query is waiting",
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = RepositorySpec(
        stations=tuple(s for s in args.stations.split(",") if s),
        channels=tuple(c for c in args.channels.split(",") if c),
        days=args.days,
        start_day=args.start_day,
        sample_rate=args.sample_rate,
        samples_per_record=args.samples_per_record,
        seed=args.seed,
    )
    started = time.perf_counter()
    uris = generate_repository(args.root, spec)
    repo = FileRepository(args.root)
    print(
        f"generated {len(uris)} files ({repo.total_bytes():,} bytes) "
        f"under {args.root} in {time.perf_counter() - started:.2f}s"
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    repo = FileRepository(args.repo, suffix=(".xseed", ".tscsv"))
    db = Database()
    report = lazy_ingest_metadata(db, repo)
    print(f"repository : {repo.root}")
    print(f"files      : {report.files}")
    print(f"records    : {report.records}")
    print(f"samples    : {report.samples:,} (described, not loaded)")
    print(f"bytes      : {repo.total_bytes():,}")
    print(f"header scan: {report.load_seconds * 1000:.1f} ms")
    summary = db.execute(
        "SELECT station, channel, COUNT(*) AS files, SUM(nsamples) AS samples "
        "FROM F GROUP BY station, channel ORDER BY station, channel"
    )
    print(summary.pretty(limit=50))
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    repo = FileRepository(args.repo, suffix=(".xseed", ".tscsv"))
    db = Database()
    if args.mode == "eager":
        report = eager_ingest(db, repo)
        print(
            f"eager load: {report.files} files / {report.samples:,} samples "
            f"in {report.load_seconds:.2f}s + {report.index_seconds:.2f}s "
            f"indexes"
        )
    else:
        lazy_report = lazy_ingest_metadata(db, repo)
        print(
            f"metadata load: {lazy_report.files} files / "
            f"{lazy_report.records} records in "
            f"{lazy_report.load_seconds * 1000:.1f} ms"
        )
    written = db.save(args.db)
    print(f"persisted {written:,} bytes to {args.db}")
    return 0


def _parse_remote_spec(spec: str) -> tuple[str, str]:
    endpoint, sep, directory = spec.partition("=")
    if not endpoint or not sep or not directory:
        raise SystemExit(f"--remote expects ENDPOINT=DIR, got {spec!r}")
    return endpoint, directory


def _build_query_repository(args: argparse.Namespace):
    """The query's repository: local, remote, or a federation of both.

    Returns ``(repository, remote_members)`` — the members list is what the
    per-endpoint transport statistics are reported from afterwards.
    """
    members: list[object] = []
    if args.repo:
        members.append(FileRepository(args.repo, suffix=(".xseed", ".tscsv")))
    remotes = []
    if args.remote:
        import tempfile

        from .remote import (
            NetworkProfile,
            RemoteRepository,
            SimulatedObjectStore,
            TransportPolicy,
        )

        profile = NetworkProfile(
            latency_seconds=args.endpoint_latency_ms / 1000.0,
            jitter=args.endpoint_jitter,
            bandwidth_bytes_per_second=(
                None
                if args.endpoint_bandwidth_mbps is None
                else args.endpoint_bandwidth_mbps * 1_000_000.0
            ),
            loss_probability=args.endpoint_loss,
        )
        policy = TransportPolicy(
            request_timeout_seconds=(
                None
                if args.endpoint_timeout_ms is None
                else args.endpoint_timeout_ms / 1000.0
            ),
            max_attempts=args.endpoint_retries,
            retry_budget_attempts=args.endpoint_retry_budget,
            hedge_enabled=args.endpoint_hedge_percentile is not None,
            hedge_percentile=args.endpoint_hedge_percentile or 0.95,
        )
        staging_root = Path(tempfile.mkdtemp(prefix="repro-remote-staging-"))
        for spec in args.remote:
            endpoint, directory = _parse_remote_spec(spec)
            store = SimulatedObjectStore(
                endpoint, directory, profile, seed=args.endpoint_seed
            )
            remote = RemoteRepository(
                store, staging_root / endpoint, policy=policy
            )
            members.append(remote)
            remotes.append(remote)
    if not members:
        raise SystemExit("query needs --db, --repo, or --remote")
    if len(members) == 1:
        return members[0], remotes
    from .remote import FederatedRepository

    return FederatedRepository(members), remotes


def _print_remote_stats(remotes) -> None:
    for remote in remotes:
        stats = remote.stats
        transport = remote.transport.stats
        print(
            f"(endpoint {remote.endpoint}: {stats.remote_bytes} remote "
            f"byte(s) in {stats.ranged_gets} ranged / "
            f"{stats.whole_fetches} whole GET(s), "
            f"{stats.staged_reuses} staging reuse(s); "
            f"{transport.retries} retry(ies), {transport.hedges} hedge(s) "
            f"({transport.hedge_wins} won), "
            f"{transport.breaker_refusals} breaker refusal(s))",
            file=sys.stderr,
        )


def _cmd_query(args: argparse.Namespace) -> int:
    if args.db and args.remote:
        raise SystemExit("--remote applies to repository mode, not --db")
    if args.db:
        db = Database.open(args.db)
        if args.verify_plans:
            db.verify_plans = True
        if args.explain:
            print(db.explain(args.sql))
            return 0
        result = db.execute(args.sql)
        print(result.pretty(limit=args.limit))
        print(f"({result.num_rows} rows in {result.total_seconds:.4f}s)")
        return 0

    repo, remotes = _build_query_repository(args)
    db = Database(verify_plans=True if args.verify_plans else None)
    metastore = None
    if args.metastore:
        if getattr(repo, "root", None) is None:
            print(
                "warning: --metastore needs a local repository root; "
                "ignored for remote-only sources",
                file=sys.stderr,
            )
        else:
            from .core.metastore import MetadataStore

            metastore = MetadataStore.for_repository(repo.root)
            metastore.load()
    report = lazy_ingest_metadata(db, repo, metastore=metastore)
    if metastore is not None and report.files_reused:
        print(
            f"(metastore: {report.files_reused}/{report.files} files "
            f"reused, no header walk)",
            file=sys.stderr,
        )
    cache = None
    if args.cache_policy != "discard":
        from .core.cache import CacheGranularity, CachePolicy, IngestionCache

        policy = CachePolicy(args.cache_policy)
        capacity = (
            args.cache_bytes
            if policy in (CachePolicy.LRU, CachePolicy.ADAPTIVE)
            else None
        )
        cache = IngestionCache(
            policy, CacheGranularity.TUPLE, capacity_bytes=capacity
        )
    budget = None
    if (
        args.deadline_seconds is not None
        or args.max_mount_bytes is not None
        or args.max_decoded_records is not None
    ):
        budget = QueryBudget(
            deadline_seconds=args.deadline_seconds,
            max_mount_bytes=args.max_mount_bytes,
            max_decoded_records=args.max_decoded_records,
            on_budget=args.on_budget,
        )
    executor = TwoStageExecutor(
        db,
        RepositoryBinding(repo),
        cache=cache,
        mount_workers=args.mount_workers,
        on_mount_error=args.on_mount_error,
        selective_mounts=not args.no_selective_mounts,
        budget=budget,
    )
    if args.explain:
        print(executor.explain(args.sql))
        return 0
    outcome = executor.execute(args.sql)
    if args.breakpoint:
        print("-- breakpoint --")
        print(outcome.breakpoint.summary())
        print("-- result --")
    print(outcome.result.pretty(limit=args.limit))
    timings = outcome.timings
    print(
        f"({outcome.result.num_rows} rows; stage 1 "
        f"{timings.stage1_seconds * 1000:.1f} ms, stage 2 "
        f"{timings.stage2_seconds * 1000:.1f} ms, "
        f"{outcome.result.stats.files_mounted} file(s) mounted)"
    )
    if timings.mount_workers > 1 and timings.mount_files:
        print(
            f"(mounts: {timings.mount_files} file(s) on "
            f"{timings.mount_workers} workers; serialized "
            f"{timings.mount_serial_seconds * 1000:.1f} ms, critical path "
            f"{timings.mount_wall_seconds * 1000:.1f} ms, "
            f"{timings.mount_speedup:.1f}x)"
        )
    if timings.mount_failures:
        print(f"warning: {timings.mount_failures.describe()}", file=sys.stderr)
        for endpoint in timings.mount_failures.endpoints():
            print(
                f"warning: endpoint {endpoint} degraded — its files were "
                "skipped, surviving sources answered",
                file=sys.stderr,
            )
    if outcome.truncation is not None:
        print(f"warning: {outcome.truncation.describe()}", file=sys.stderr)
    _print_remote_stats(remotes)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .harness import (
        build_environment,
        default_spec,
        run_figure3,
        run_table1,
        render_figure3,
        render_table1,
        small_spec,
        tiny_spec,
    )
    from .harness.reporting import render_figure3_chart

    spec = {"tiny": tiny_spec, "small": small_spec, "default": default_spec}[
        args.scale
    ]()
    env = build_environment(spec)
    print(render_table1(run_table1(env)))
    print()
    entries = run_figure3(env, runs=args.runs)
    print(render_figure3(entries, len(env.repository)))
    print()
    print(render_figure3_chart(entries, len(env.repository)))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .harness.setup import (
        default_spec,
        materialize_repository,
        small_spec,
        tiny_spec,
    )
    from .serve import QueryService, SchedulerPolicy, TenantPolicy, run_comparison

    if args.repo is not None:
        repo = FileRepository(args.repo, suffix=(".xseed", ".tscsv"))
        db = Database()
        lazy_ingest_metadata(db, repo)
        spec = _spec_from_metadata(db)
    else:
        spec = {
            "tiny": tiny_spec, "small": small_spec, "default": default_spec
        }[args.scale]()
        repo = materialize_repository(spec)
        db = None

    policy = SchedulerPolicy(
        throughput_bias=args.throughput_bias,
        batch_window_seconds=args.batch_window_ms / 1000.0,
    )
    service = QueryService(
        repo,
        db=db,
        scheduler_policy=policy,
        mount_workers=args.mount_workers,
        default_policy=TenantPolicy(max_queue_depth=args.max_queue_depth),
        prefetch=args.prefetch,
    )
    try:
        report = run_comparison(
            repo,
            spec,
            clients=args.clients,
            queries_per_client=args.queries_per_client,
            service=service,
        )
    finally:
        service.close()
    print(report.describe())
    if not report.identical:
        print("error: service answers diverged from standalone",
              file=sys.stderr)
        return 1
    return 0


def _spec_from_metadata(db: Database) -> RepositorySpec:
    """A workload-shaped spec for an arbitrary repository, read from ``F``.

    The simulated-clients workload only needs stations, channels, and the
    day range; everything else keeps its defaults. Works best on
    day-aligned repositories (the generated benchmark kind).
    """
    from .db.types import format_timestamp

    summary = db.execute(
        "SELECT station, channel, MIN(start_time) AS lo, MAX(end_time) AS hi "
        "FROM F GROUP BY station, channel ORDER BY station, channel"
    )
    rows = summary.rows()
    if not rows:
        raise DatabaseError("repository has no files to build a workload from")
    stations = tuple(dict.fromkeys(r[0] for r in rows))
    channels = tuple(dict.fromkeys(r[1] for r in rows))
    lo = min(int(r[2]) for r in rows)
    hi = max(int(r[3]) for r in rows)
    day_us = 86_400 * 1_000_000
    days = max(1, (hi - lo) // day_us)
    return RepositorySpec(
        stations=stations,
        channels=channels,
        days=int(days),
        start_day=format_timestamp(lo)[:10],
    )


_COMMANDS = {
    "generate": _cmd_generate,
    "inspect": _cmd_inspect,
    "load": _cmd_load,
    "query": _cmd_query,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except DatabaseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
