"""Seeded, replayable fault injection on the volume I/O path.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers installed as
the :mod:`repro.mseed.iohooks` hook. Each spec names a URI (by suffix), a
fault kind, and *which read* of that URI it fires on — reads are counted
per URI across the whole plan lifetime, so a retry's re-reads see fresh
indices and a ``times=1`` transient fault recovers on the retry, exactly
the shape the retry ladder exists for.

Kinds
-----
``transient-oserror``
    The read raises ``OSError`` (the extraction guard maps it to a
    *transient* ``FileIngestError``, so the retry ladder absorbs it).
``read-latency``
    The read stalls ``delay_seconds`` first. The wait runs on
    ``plan.interrupt`` (an Event, e.g. a cancellation token's) when one is
    wired, so a deadline cuts injected latency short exactly like it cuts
    retry backoff short.
``short-read``
    The read returns fewer bytes than asked (``short_by`` fewer) — the
    classic torn read. Surfaces as a corrupt/truncated file downstream.
``stale-flip``
    The read succeeds, then the file's mtime is bumped — a mid-extraction
    rewrite. The post-extraction signature check turns it into a transient
    ``StaleFileError``, and the retry re-reads a now-stable file.
``connection-refused`` / ``mid-stream-disconnect`` / ``stall``
    Network-shaped kinds for the remote backend: the first two raise
    ``ConnectionRefusedError`` / ``ConnectionResetError`` (OSError
    subclasses, hence transient downstream), a stall hangs the read for
    ``stall_seconds`` before serving — the shape per-request timeouts and
    hedged backup requests exist to beat.

Determinism
-----------
:meth:`FaultPlan.seeded` derives the spec list from ``(seed, uris)`` alone,
and every injected fault is appended to :attr:`FaultPlan.log` under the
plan lock with its per-URI read index. :meth:`signature` is the
order-independent digest (sorted tuples) that must be identical across
same-seed runs regardless of mount-worker interleaving.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Iterator, Optional, Sequence

from ..mseed.iohooks import set_volume_io_hook

TRANSIENT_OSERROR = "transient-oserror"
READ_LATENCY = "read-latency"
SHORT_READ = "short-read"
STALE_FLIP = "stale-flip"

# Network-shaped kinds, for the remote backend (the simulated object store
# reads its objects through this same hook, so one plan chaoses both tiers):
CONNECTION_REFUSED = "connection-refused"  # raises ConnectionRefusedError
MID_STREAM_DISCONNECT = "mid-stream-disconnect"  # raises ConnectionResetError
STALL = "stall"  # the read hangs `stall_seconds`, then serves

NETWORK_KINDS = (CONNECTION_REFUSED, MID_STREAM_DISCONNECT, STALL)

FAULT_KINDS = (
    TRANSIENT_OSERROR,
    READ_LATENCY,
    SHORT_READ,
    STALE_FLIP,
) + NETWORK_KINDS

# The fault kinds the resilience machinery fully absorbs: a run injecting
# only these must produce byte-identical answers to a fault-free run (the
# chaos grid's core assertion). Short reads are excluded — they surface as
# corrupt/truncated files, i.e. as *failures*, not as absorbed noise.
RECOVERABLE_KINDS = (TRANSIENT_OSERROR, READ_LATENCY, STALE_FLIP)

# Likewise for the network kinds: refusals and resets are OSError subclasses
# (transient through the extraction guard / transport wrap), stalls are pure
# latency — the remote chaos grid injects exactly these and asserts
# byte-identical answers against the fault-free local baseline.
RECOVERABLE_NETWORK_KINDS = NETWORK_KINDS

# Waits fall back to this never-set event when no interrupt is wired: same
# timing as a sleep, but the code path stays identical either way.
_NEVER = threading.Event()


@dataclass(frozen=True)
class FaultSpec:
    """One trigger: fire ``kind`` on reads [at_read, at_read+times) of a URI.

    ``uri_suffix`` matches ``uri.endswith(...)`` so tests can name files
    without caring about repository roots. ``times=-1`` means every read
    from ``at_read`` on (a persistently bad file). Read indices are global
    per URI — attempt 2's first read continues the count, so consecutive
    indices model "fails N times, then recovers".
    """

    uri_suffix: str
    kind: str
    at_read: int = 0
    times: int = 1
    delay_seconds: float = 0.01  # read-latency only
    short_by: int = 32  # short-read only: bytes withheld
    stall_seconds: float = 0.05  # stall only: how long the read hangs

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at_read < 0:
            raise ValueError("at_read must be >= 0")
        if self.times == 0 or self.times < -1:
            raise ValueError("times must be positive or -1 (forever)")
        if self.short_by < 1:
            raise ValueError("short_by must be >= 1")
        if self.stall_seconds < 0:
            raise ValueError("stall_seconds must be >= 0")

    def fires_at(self, index: int) -> bool:
        if index < self.at_read:
            return False
        return self.times == -1 or index < self.at_read + self.times


@dataclass(frozen=True)
class InjectedFault:
    """One fault that actually fired (the replay/determinism record)."""

    uri: str
    kind: str
    read_index: int


class FaultPlan:
    """A set of specs plus the live injection state and log."""

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        interrupt: Optional[threading.Event] = None,
    ) -> None:
        self.specs = list(specs)
        # Wire a cancellation token's event here so injected latency is
        # interruptible exactly like production waits.
        self.interrupt = interrupt
        self.log: list[InjectedFault] = []  # guarded-by: _lock
        self._lock = threading.Lock()
        self._read_counts: dict[str, int] = {}  # guarded-by: _lock

    @classmethod
    def seeded(
        cls,
        seed: int,
        uris: Sequence[str],
        kinds: Sequence[str] = RECOVERABLE_KINDS,
        fault_rate: float = 0.5,
        max_read: int = 4,
        times: int = 1,
        delay_seconds: float = 0.002,
        short_by: int = 32,
        stall_seconds: float = 0.02,
    ) -> "FaultPlan":
        """A plan derived entirely from ``(seed, sorted(uris))``.

        Each URI independently gets a fault with probability ``fault_rate``;
        kind and trigger read are drawn from the same stream. Two plans
        seeded identically over the same URI set are equal spec-for-spec.
        """
        rng = random.Random(seed)
        specs: list[FaultSpec] = []
        for uri in sorted(uris):
            roll = rng.random()
            kind = rng.choice(list(kinds))
            at_read = rng.randrange(max_read)
            if roll >= fault_rate:
                continue  # draws above keep the stream position uniform
            specs.append(
                FaultSpec(
                    uri_suffix=uri,
                    kind=kind,
                    at_read=at_read,
                    times=times,
                    delay_seconds=delay_seconds,
                    short_by=short_by,
                    stall_seconds=stall_seconds,
                )
            )
        return cls(specs)

    # -- hook protocol -------------------------------------------------------

    def wrap(self, path: Path, uri: str, handle: BinaryIO) -> BinaryIO:
        return _FaultyHandle(self, path, uri, handle)

    @contextmanager
    def install(self) -> Iterator["FaultPlan"]:
        """Install as the volume I/O hook for the duration of the block."""
        previous = set_volume_io_hook(self)
        try:
            yield self
        finally:
            set_volume_io_hook(previous)

    # -- injection internals -------------------------------------------------

    def _before_read(self, uri: str) -> Optional[tuple[FaultSpec, int]]:
        """Advance the URI's read counter; return the spec to fire, if any."""
        with self._lock:
            index = self._read_counts.get(uri, 0)
            self._read_counts[uri] = index + 1
            for spec in self.specs:
                if uri.endswith(spec.uri_suffix) and spec.fires_at(index):
                    self.log.append(InjectedFault(uri, spec.kind, index))
                    return spec, index
        return None

    def _wait(self, seconds: float) -> None:
        event = self.interrupt if self.interrupt is not None else _NEVER
        event.wait(seconds)

    @staticmethod
    def _flip_mtime(path: Path) -> None:
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))

    # -- determinism ---------------------------------------------------------

    def signature(self) -> tuple[tuple[str, str, int], ...]:
        """Order-independent digest of every fault that fired.

        Worker interleaving may reorder the log across runs; the sorted
        digest must still be identical for identical ``(seed, workload)``.
        """
        with self._lock:
            return tuple(
                sorted((f.uri, f.kind, f.read_index) for f in self.log)
            )


class _FaultyHandle:
    """A binary file handle that consults the plan before every read."""

    def __init__(
        self, plan: FaultPlan, path: Path, uri: str, handle: BinaryIO
    ) -> None:
        self._plan = plan
        self._path = path
        self._uri = uri
        self._handle = handle

    def read(self, n: int = -1) -> bytes:
        fired = self._plan._before_read(self._uri)
        if fired is None:
            return self._handle.read(n)
        spec, index = fired
        if spec.kind == TRANSIENT_OSERROR:
            raise OSError(
                f"injected transient I/O error "
                f"({self._uri}, read #{index})"
            )
        if spec.kind == READ_LATENCY:
            self._plan._wait(spec.delay_seconds)
            return self._handle.read(n)
        if spec.kind == SHORT_READ:
            data = self._handle.read(n)
            return data[: max(0, len(data) - spec.short_by)]
        if spec.kind == CONNECTION_REFUSED:
            raise ConnectionRefusedError(
                f"injected connection refused ({self._uri}, read #{index})"
            )
        if spec.kind == MID_STREAM_DISCONNECT:
            raise ConnectionResetError(
                f"injected mid-stream disconnect "
                f"({self._uri}, read #{index})"
            )
        if spec.kind == STALL:
            # A hung connection: the read eventually serves, but only after
            # a wait long enough for timeouts/hedging to beat it. The wait
            # runs on the plan's interrupt event, so cancellation cuts it.
            self._plan._wait(spec.stall_seconds)
            return self._handle.read(n)
        # stale-flip: serve the bytes, then mutate the file's signature so
        # the post-extraction re-stat sees a different (mtime, size).
        data = self._handle.read(n)
        self._plan._flip_mtime(self._path)
        return data

    # Everything else passes straight through to the real handle.

    def seek(self, offset: int, whence: int = 0) -> int:
        return self._handle.seek(offset, whence)

    def tell(self) -> int:
        return self._handle.tell()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "_FaultyHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "CONNECTION_REFUSED",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "MID_STREAM_DISCONNECT",
    "NETWORK_KINDS",
    "READ_LATENCY",
    "RECOVERABLE_KINDS",
    "RECOVERABLE_NETWORK_KINDS",
    "SHORT_READ",
    "STALE_FLIP",
    "STALL",
    "TRANSIENT_OSERROR",
]
