"""Runtime lock-order and guarded-attribute tracing.

The dynamic half of the concurrency toolchain (the static half is
``tools/lint/concurrency.py``). When ``REPRO_LOCK_TRACE=1`` — or inside the
:func:`tracing` context manager — the :mod:`repro._sync` factories hand out
:class:`TracedLock` / :class:`TracedRLock` / :class:`TracedCondition`
instead of the plain :mod:`threading` primitives. The wrappers:

* maintain a per-thread stack of held locks and a process-global
  acquisition-order graph keyed by lock *name* (``ClassName._attr``), so
  ordering discipline is checked at the class level — exactly the lock
  hierarchy documented in ``docs/architecture.md``;
* raise :class:`LockOrderError` *before* blocking on an acquisition that
  would close a cycle in that graph (A-then-B on one thread, B-then-A on
  another deadlocks only under an unlucky interleaving; the graph check
  fires deterministically on the second ordering no matter the timing);
* detect non-reentrant self-deadlock (a thread re-acquiring a plain
  ``Lock`` it already holds) instead of hanging;
* accumulate per-lock-name :class:`~repro._sync.LockStats`
  (acquisitions, contended acquisitions, wait time, hold time) that
  :func:`repro._sync.lock_snapshot` exports onto ``StageTimings``;
* optionally enforce ``# guarded-by:`` declarations: rebinding an
  annotated attribute without holding its declared lock raises
  :class:`GuardViolation` (see :func:`guard_class`).

Like everything in ``repro.testing`` this module is never imported by the
engine itself — ``repro._sync`` lazy-imports it only when tracing is on.
"""

from __future__ import annotations

import inspect
import re
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Iterator, Optional

from .. import _sync
from .._sync import LockStats


class LockOrderError(RuntimeError):
    """A lock acquisition that would close a cycle in the global
    acquisition-order graph (or re-acquire a non-reentrant lock).

    ``cycle`` is the established path ``[attempted, ..., held]`` whose
    reversal the offending acquisition attempted.
    """

    def __init__(self, message: str, cycle: list[str]):
        super().__init__(message)
        self.cycle = cycle


class GuardViolation(RuntimeError):
    """A ``# guarded-by:`` annotated attribute was rebound without the
    declared lock held."""


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.stack: list[object] = []  # TracedLock/TracedRLock, outermost first


_thread_state = _ThreadState()


class LockRegistry:
    """Process-global acquisition-order graph + per-lock-name counters.

    Edges mean "was held while acquiring": ``A -> B`` records that some
    thread acquired B with A held. A path ``B -> ... -> A`` existing when a
    thread holding A asks for B is a lock-order inversion.
    """

    def __init__(self) -> None:
        # Deliberately a *plain* lock: the registry must never trace itself.
        self._mutex = threading.Lock()
        self._edges: dict[str, set[str]] = {}  # guarded-by: _mutex
        self._stats: dict[str, LockStats] = {}  # guarded-by: _mutex

    # -- order graph ----------------------------------------------------

    def check_order(self, acquiring: str, held: list[str]) -> None:
        """Raise :class:`LockOrderError` if acquiring ``acquiring`` with
        ``held`` held would close a cycle; otherwise record the new edges."""
        with self._mutex:
            for holder in held:
                if holder == acquiring:
                    # Same class-level name on a *different* instance (the
                    # instance-level self-deadlock case is caught by the
                    # lock itself before calling here). Two instances of
                    # one class nested is outside the class-level
                    # hierarchy model; skip rather than false-positive.
                    continue
                path = self._find_path_locked(acquiring, holder)
                if path is not None:
                    cycle = path + [acquiring]
                    raise LockOrderError(
                        "lock-order inversion: acquiring "
                        f"'{acquiring}' while holding '{holder}', but the "
                        "established acquisition order is "
                        + " -> ".join(path)
                        + f" (so '{holder}' must never be held when taking "
                        f"'{acquiring}')",
                        cycle,
                    )
            for holder in held:
                if holder != acquiring:
                    self._edges.setdefault(holder, set()).add(acquiring)

    def _find_path_locked(self, start: str, goal: str) -> Optional[list[str]]:
        """BFS for an established path ``start -> ... -> goal``."""
        if start == goal:
            return None
        parents: dict[str, str] = {}
        frontier = [start]
        seen = {start}
        while frontier:
            nxt: list[str] = []
            for node in frontier:
                for succ in self._edges.get(node, ()):
                    if succ in seen:
                        continue
                    parents[succ] = node
                    if succ == goal:
                        path = [goal]
                        while path[-1] != start:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    seen.add(succ)
                    nxt.append(succ)
            frontier = nxt
        return None

    # -- counters -------------------------------------------------------

    def note_acquired(self, name: str, contended: bool, waited: float) -> None:
        with self._mutex:
            stats = self._stats.setdefault(name, LockStats())
            stats.acquisitions += 1
            if contended:
                stats.contended += 1
                stats.wait_seconds += waited
    def note_released(self, name: str, held_for: float) -> None:
        with self._mutex:
            stats = self._stats.setdefault(name, LockStats())
            stats.hold_seconds += held_for
            if held_for > stats.max_hold_seconds:
                stats.max_hold_seconds = held_for

    def snapshot(self) -> dict[str, LockStats]:
        with self._mutex:
            return {
                name: LockStats(
                    acquisitions=s.acquisitions,
                    contended=s.contended,
                    wait_seconds=s.wait_seconds,
                    hold_seconds=s.hold_seconds,
                    max_hold_seconds=s.max_hold_seconds,
                )
                for name, s in self._stats.items()
            }

    def edges(self) -> dict[str, set[str]]:
        with self._mutex:
            return {a: set(bs) for a, bs in self._edges.items()}

    def reset(self) -> None:
        """Clear the graph and counters (between tests, with no locks held)."""
        with self._mutex:
            self._edges.clear()
            self._stats.clear()


registry = LockRegistry()


def current_held() -> list[str]:
    """Names of traced locks held by the calling thread, outermost first."""
    return [lock.name for lock in _thread_state.stack]  # type: ignore[attr-defined]


class TracedLock:
    """A named, order-checked ``threading.Lock``."""

    reentrant = False

    def __init__(self, name: str):
        self.name = name
        self._inner = threading.Lock()
        self._owner: Optional[int] = None
        self._acquired_at = 0.0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            raise LockOrderError(
                f"self-deadlock: thread already holds non-reentrant lock "
                f"'{self.name}' and tried to acquire it again",
                [self.name, self.name],
            )
        registry.check_order(self.name, current_held())
        start = perf_counter()
        got = self._inner.acquire(False)
        contended = not got
        if not got:
            if not blocking:
                return False
            got = self._inner.acquire(True, timeout)
            if not got:
                return False
        self._note_acquired(contended, perf_counter() - start)
        return True

    def release(self) -> None:
        self._note_released()
        self._inner.release()

    __enter__ = acquire

    def __exit__(self, *exc: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    # Bookkeeping split out so TracedCondition.wait() can bracket the
    # release/reacquire that happens inside threading.Condition.
    def _note_acquired(self, contended: bool, waited: float) -> None:
        self._owner = threading.get_ident()
        self._acquired_at = perf_counter()
        _thread_state.stack.append(self)
        registry.note_acquired(self.name, contended, waited)

    def _note_released(self) -> object:
        if self._owner != threading.get_ident():
            raise RuntimeError(
                f"release of '{self.name}' by a thread that does not hold it"
            )
        registry.note_released(self.name, perf_counter() - self._acquired_at)
        self._owner = None
        stack = _thread_state.stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<TracedLock {self.name!r} {state}>"


class TracedRLock:
    """A named, order-checked ``threading.RLock``.

    Re-entrant acquisitions by the owning thread skip the order check and
    the held-stack push (depth is tracked in ``_count``), matching RLock
    semantics: only the outermost acquire/release pair participates in the
    ordering graph and the hold-time accounting.
    """

    reentrant = True

    def __init__(self, name: str):
        self.name = name
        self._inner = threading.RLock()
        self._owner: Optional[int] = None
        self._count = 0
        self._acquired_at = 0.0

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._owner == me:
            self._inner.acquire()
            self._count += 1
            return True
        registry.check_order(self.name, current_held())
        start = perf_counter()
        got = self._inner.acquire(False)
        contended = not got
        if not got:
            if not blocking:
                return False
            got = self._inner.acquire(True, timeout)
            if not got:
                return False
        self._note_acquired(contended, perf_counter() - start)
        return True

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise RuntimeError(
                f"release of '{self.name}' by a thread that does not hold it"
            )
        self._count -= 1
        if self._count == 0:
            self._note_released()
        self._inner.release()

    __enter__ = acquire

    def __exit__(self, *exc: object) -> None:
        self.release()

    def held_by_current_thread(self) -> bool:
        return self._owner == threading.get_ident()

    def _note_acquired(self, contended: bool, waited: float) -> None:
        self._owner = threading.get_ident()
        self._count = 1
        self._acquired_at = perf_counter()
        _thread_state.stack.append(self)
        registry.note_acquired(self.name, contended, waited)

    def _note_released(self) -> object:
        registry.note_released(self.name, perf_counter() - self._acquired_at)
        self._owner = None
        stack = _thread_state.stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TracedRLock {self.name!r} count={self._count}>"


class TracedCondition:
    """A condition variable over a :class:`TracedLock` (or its own).

    The real waiting machinery is an inner ``threading.Condition`` bound to
    the traced lock's *raw* primitive, so wait/notify semantics are exactly
    stdlib. ``wait()`` brackets the inner release/reacquire with the traced
    lock's bookkeeping so hold times and the held-stack stay truthful while
    the thread is parked.
    """

    def __init__(self, name: str, lock: Optional[TracedLock] = None):
        self.name = name
        self._lock = lock if lock is not None else TracedLock(name + ".lock")
        self._inner = threading.Condition(self._lock._inner)  # type: ignore[arg-type]

    # Context-manager / lock surface delegates to the traced lock so every
    # `with condition:` participates in order checking and stats.
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._lock.acquire(blocking, timeout)

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> bool:
        return self._lock.acquire()

    def __exit__(self, *exc: object) -> None:
        self._lock.release()

    def wait(self, timeout: Optional[float] = None) -> bool:
        if not self._lock.held_by_current_thread():
            raise RuntimeError(f"wait on '{self.name}' without its lock held")
        self._lock._note_released()
        try:
            # The predicate loop is the *caller's* obligation — this is the
            # wrapper primitive itself.
            return self._inner.wait(timeout)  # lint: allow-wait-outside-loop
        finally:
            # The inner condition has already reacquired the raw lock;
            # restore bookkeeping. Wakeup latency is not lock contention,
            # so it is not counted as a contended acquisition.
            self._lock._note_acquired(contended=False, waited=0.0)

    def wait_for(self, predicate, timeout: Optional[float] = None):
        # Mirror threading.Condition.wait_for, but through our wait() so
        # every park/unpark keeps the traced bookkeeping consistent.
        endtime = None
        result = predicate()
        while not result:
            if timeout is not None:
                if endtime is None:
                    endtime = perf_counter() + timeout
                remaining = endtime - perf_counter()
                if remaining <= 0:
                    break
                self.wait(remaining)
            else:
                self.wait()
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        if not self._lock.held_by_current_thread():
            raise RuntimeError(f"notify on '{self.name}' without its lock held")
        self._inner.notify(n)

    def notify_all(self) -> None:
        if not self._lock.held_by_current_thread():
            raise RuntimeError(
                f"notify_all on '{self.name}' without its lock held"
            )
        self._inner.notify_all()


@contextmanager
def tracing(reset: bool = True) -> Iterator[LockRegistry]:
    """Enable traced-lock construction for the enclosed block.

    Objects built inside the block get traced locks; the registry is
    yielded for assertions. With ``reset`` (default) the global graph and
    counters are cleared on entry so tests start from a clean slate.
    """
    previous = _sync.set_tracing(True)
    if reset:
        registry.reset()
    try:
        yield registry
    finally:
        _sync.set_tracing(previous)


# --------------------------------------------------------------------------
# Guarded-attribute enforcement
# --------------------------------------------------------------------------

# Declaration-site annotation on a self-assignment, e.g.
#   self._entries = {}  # guarded-by: _lock
_DECL_RE = re.compile(
    r"^\s*self\.(?P<attr>\w+)\s*(?::[^=]+)?=.*#\s*guarded-by:\s*(?P<lock>[\w.]+)"
)


def parse_guard_declarations(cls: type) -> dict[str, str]:
    """Map attribute name -> lock attribute name from ``# guarded-by:``
    comments in ``cls``'s source.

    Cross-class declarations (``# guarded-by: OtherClass._lock``) document
    fields mutated under *another* object's lock; they cannot be enforced
    from inside this object's ``__setattr__`` and are skipped. A qualified
    name matching this class (``ThisClass._lock``) is accepted.
    """
    try:
        source = inspect.getsource(cls)
    except (OSError, TypeError):  # no source (REPL, frozen) — nothing to do
        return {}
    guards: dict[str, str] = {}
    for line in source.splitlines():
        match = _DECL_RE.match(line)
        if not match:
            continue
        lock = match.group("lock")
        if "." in lock:
            owner, _, lock_attr = lock.partition(".")
            if owner != cls.__name__:
                continue
            lock = lock_attr
        guards[match.group("attr")] = lock
    return guards


def install_guards(cls: type) -> type:
    """Return a subclass of ``cls`` whose ``__setattr__`` enforces the
    class's ``# guarded-by:`` declarations.

    Enforcement covers attribute *rebinds* after ``__init__`` completes
    (in-place container mutation is the static analyzer's job) and only
    when the declared lock is a traced lock — plain locks cannot answer
    "does this thread hold me", so plain-lock objects pass through.
    """
    guards = parse_guard_declarations(cls)
    if not guards:
        return cls

    init = cls.__init__

    def guarded_init(self, *args: object, **kwargs: object) -> None:
        init(self, *args, **kwargs)
        object.__setattr__(self, "_guards_armed", True)

    def guarded_setattr(self, name: str, value: object) -> None:
        if name in guards and getattr(self, "_guards_armed", False):
            lock = getattr(self, guards[name], None)
            held = getattr(lock, "held_by_current_thread", None)
            if held is not None and not held():
                raise GuardViolation(
                    f"{cls.__name__}.{name} is declared "
                    f"'# guarded-by: {guards[name]}' but was rebound "
                    f"without that lock held"
                )
        object.__setattr__(self, name, value)

    namespace = {
        "__init__": guarded_init,
        "__setattr__": guarded_setattr,
        "__doc__": cls.__doc__,
        "_guard_declarations": dict(guards),
    }
    wrapped = type(cls.__name__, (cls,), namespace)
    wrapped.__module__ = cls.__module__
    wrapped.__qualname__ = cls.__qualname__
    return wrapped


def guard_class(cls: type) -> type:
    """Explicitly guarded variant of ``cls`` for tests, independent of the
    ``REPRO_LOCK_TRACE`` switch (the production classes use
    :func:`repro._sync.guarded`, which is identity unless tracing was on at
    import)."""
    return install_guards(cls)


__all__ = [
    "GuardViolation",
    "LockOrderError",
    "LockRegistry",
    "TracedCondition",
    "TracedLock",
    "TracedRLock",
    "current_held",
    "guard_class",
    "install_guards",
    "parse_guard_declarations",
    "registry",
    "tracing",
]
