"""`repro.testing` — deterministic fault injection for chaos testing.

Importable by tests and benchmarks (it lives in the package so the chaos
suite, the CLI, and external harnesses share one implementation), but never
imported by the engine itself: production code only ever sees the hook slot
in :mod:`repro.mseed.iohooks`.
"""

from .faults import (
    CONNECTION_REFUSED,
    FAULT_KINDS,
    MID_STREAM_DISCONNECT,
    NETWORK_KINDS,
    READ_LATENCY,
    RECOVERABLE_KINDS,
    RECOVERABLE_NETWORK_KINDS,
    SHORT_READ,
    STALE_FLIP,
    STALL,
    TRANSIENT_OSERROR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)

__all__ = [
    "CONNECTION_REFUSED",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "MID_STREAM_DISCONNECT",
    "NETWORK_KINDS",
    "READ_LATENCY",
    "RECOVERABLE_KINDS",
    "RECOVERABLE_NETWORK_KINDS",
    "SHORT_READ",
    "STALE_FLIP",
    "STALL",
    "TRANSIENT_OSERROR",
]
