"""`repro.testing` — deterministic fault injection for chaos testing.

Importable by tests and benchmarks (it lives in the package so the chaos
suite, the CLI, and external harnesses share one implementation), but never
imported by the engine itself: production code only ever sees the hook slot
in :mod:`repro.mseed.iohooks`.
"""

from .faults import (
    FAULT_KINDS,
    READ_LATENCY,
    RECOVERABLE_KINDS,
    SHORT_READ,
    STALE_FLIP,
    TRANSIENT_OSERROR,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "READ_LATENCY",
    "RECOVERABLE_KINDS",
    "SHORT_READ",
    "STALE_FLIP",
    "TRANSIENT_OSERROR",
]
