"""`repro.harness` — experiment setup and runners for the paper's evaluation."""

from .setup import (
    BenchEnvironment,
    StandardQueries,
    build_environment,
    default_spec,
    small_spec,
    tiny_spec,
)
from .experiments import (
    Fig3Entry,
    Table1Row,
    ingestion_report,
    interest_sweep,
    run_cold,
    run_figure3,
    run_hot,
    run_table1,
)
from .reporting import render_figure3, render_table1

__all__ = [
    "BenchEnvironment",
    "StandardQueries",
    "build_environment",
    "default_spec",
    "small_spec",
    "tiny_spec",
    "Table1Row",
    "Fig3Entry",
    "run_table1",
    "run_figure3",
    "run_cold",
    "run_hot",
    "ingestion_report",
    "interest_sweep",
    "render_table1",
    "render_figure3",
]
