"""Benchmark environment construction.

Builds (and caches on disk) a synthetic repository at a chosen scale, then
stands up the two systems under comparison exactly as §4 describes:

* **Ei** — a database eagerly loaded with the whole repository, with primary
  and foreign key indexes built before querying starts;
* **ALi** — a database loaded with metadata only, queried through the
  two-stage executor; no indexes.

Repositories are deterministic functions of their spec, so the on-disk cache
(keyed by a spec hash) is safe to reuse across benchmark processes.
"""

from __future__ import annotations

import hashlib
import json
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..core.cache import IngestionCache
from ..core.executor import TwoStageExecutor
from ..db.buffer import DiskModel
from ..db.database import Database
from ..db.types import format_timestamp, parse_timestamp
from ..ingest.eager import EagerLoadReport, eager_ingest
from ..ingest.lazy import LazyLoadReport, lazy_ingest_metadata
from ..ingest.schema import RepositoryBinding
from ..mseed.repository import FileRepository
from ..mseed.synthesize import RepositorySpec, generate_repository
from ..explore.workload import make_query1


def default_spec() -> RepositorySpec:
    """The headline benchmark scale: 120 files, ~5.2M samples.

    The paper used 5,000 files / 660M samples on a 2011 desktop; this keeps
    the same metadata:data ratio at laptop-benchmark runtimes. Scale up with
    a custom spec to chase the paper's absolute numbers.
    """
    return RepositorySpec(
        stations=("ISK", "ANK", "IZM", "EDC", "KDZ"),
        channels=("BHE", "BHN", "BHZ"),
        days=8,
        sample_rate=0.5,
        samples_per_record=3600,
    )


def small_spec() -> RepositorySpec:
    """A quicker scale for ablation benchmarks: 27 files, ~700k samples."""
    return RepositorySpec(
        stations=("ISK", "ANK", "IZM"),
        channels=("BHE", "BHN", "BHZ"),
        days=3,
        sample_rate=0.1,
        samples_per_record=1800,
    )


def tiny_spec() -> RepositorySpec:
    """Integration-test scale: 8 files, ~70k samples."""
    return RepositorySpec(
        stations=("ISK", "ANK"),
        channels=("BHE", "BHZ"),
        days=2,
        sample_rate=0.05,
        samples_per_record=1000,
    )


def _spec_digest(spec: RepositorySpec) -> str:
    payload = json.dumps(
        {
            "stations": spec.stations,
            "network": spec.network,
            "channels": spec.channels,
            "start_day": spec.start_day,
            "days": spec.days,
            "sample_rate": spec.sample_rate,
            "samples_per_record": spec.samples_per_record,
            "seed": spec.seed,
            "waveform": vars(spec.waveform),
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def materialize_repository(
    spec: RepositorySpec, cache_root: Optional[Path] = None
) -> FileRepository:
    """Generate the repository, reusing a cached copy when present."""
    root = cache_root or Path(tempfile.gettempdir()) / "repro_bench_repos"
    target = root / _spec_digest(spec)
    marker = target / ".complete"
    if not marker.exists():
        generate_repository(target, spec)
        marker.write_text("ok")
    return FileRepository(target)


@dataclass
class StandardQueries:
    """The paper's Query 1 and Query 2, instantiated for a repository spec."""

    query1: str
    query2: str
    station: str
    channel: str
    day: str
    q1_window: tuple[str, str]
    q2_window: tuple[str, str]

    @classmethod
    def for_spec(cls, spec: RepositorySpec) -> "StandardQueries":
        """Instantiate the paper's Query 1 and Query 2 for this repository.

        Query 1 touches one channel of one station on one day (files of
        interest: 1 file). Query 2 keeps Query 1's FROM clause but asks for
        all channels at the station over a multi-day record window — making
        its data of interest "a lot larger than that of Query 1" (§4), which
        is what puts hot ALi slightly behind hot Ei in Figure 3.
        """
        day_us = parse_timestamp(spec.start_day) + 2 * 86_400 * 1_000_000
        day = format_timestamp(day_us)[:10]
        q1_start = format_timestamp(day_us + (22 * 3600 + 15 * 60) * 1_000_000)
        q1_end = format_timestamp(day_us + (22 * 3600 + 18 * 60) * 1_000_000)
        q2_days = min(6, max(spec.days - 1, 1))
        q2_rec_start = parse_timestamp(spec.start_day) + 86_400 * 1_000_000
        q2_rec_end = q2_rec_start + q2_days * 86_400 * 1_000_000 - 1_000
        q2_start = format_timestamp(day_us + 22 * 3600 * 1_000_000)
        q2_end = format_timestamp(day_us + (22 * 3600 + 30 * 60) * 1_000_000)
        query2 = (
            "SELECT D.sample_time, D.sample_value\n"
            "FROM F JOIN R ON F.uri = R.uri\n"
            "JOIN D ON R.uri = D.uri AND R.record_id = D.record_id\n"
            "WHERE F.station = 'ISK'\n"
            f"AND R.start_time > '{format_timestamp(q2_rec_start)}'\n"
            f"AND R.start_time < '{format_timestamp(q2_rec_end)}'\n"
            f"AND D.sample_time > '{q2_start}'\n"
            f"AND D.sample_time < '{q2_end}'"
        )
        return cls(
            query1=make_query1("ISK", "BHE", day, q1_start, q1_end),
            query2=query2,
            station="ISK",
            channel="BHE",
            day=day,
            q1_window=(q1_start, q1_end),
            q2_window=(q2_start, q2_end),
        )


@dataclass
class BenchEnvironment:
    """Everything one experiment needs: repository, Ei, ALi, queries."""

    spec: RepositorySpec
    repository: FileRepository
    ei: Database
    ei_report: EagerLoadReport
    ali: Database
    ali_report: LazyLoadReport
    executor: TwoStageExecutor
    queries: StandardQueries = field(init=False)

    def __post_init__(self) -> None:
        self.queries = StandardQueries.for_spec(self.spec)

    def fresh_executor(
        self, cache: Optional[IngestionCache] = None, **kwargs
    ) -> TwoStageExecutor:
        """A new two-stage executor over the ALi database (own cache)."""
        return TwoStageExecutor(
            self.ali,
            RepositoryBinding(self.repository),
            cache=cache,
            **kwargs,
        )


def build_environment(
    spec: Optional[RepositorySpec] = None,
    disk_model: Optional[DiskModel] = None,
    cache_root: Optional[Path] = None,
) -> BenchEnvironment:
    """Stand up the full §4 experimental setup for one repository scale."""
    spec = spec or default_spec()
    repository = materialize_repository(spec, cache_root)
    disk = disk_model or DiskModel()

    ei = Database(disk)
    ei_report = eager_ingest(ei, repository)
    ali = Database(disk)
    ali_report = lazy_ingest_metadata(ali, repository)
    executor = TwoStageExecutor(ali, RepositoryBinding(repository))
    return BenchEnvironment(
        spec=spec,
        repository=repository,
        ei=ei,
        ei_report=ei_report,
        ali=ali,
        ali_report=ali_report,
        executor=executor,
    )
